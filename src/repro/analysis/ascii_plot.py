"""ASCII box plots and line series.

The paper's figures are box-and-whisker distributions (footnote 8)
and line plots; these renderers let the benchmark harness show the
same shapes directly in a terminal.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

from ..characterization.stats import DistributionSummary

_PLOT_WIDTH = 60


def _scale(value: float, lo: float, hi: float, width: int) -> int:
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(width - 1, max(0, round(position * (width - 1))))


def ascii_boxplot(
    rows: Mapping[str, DistributionSummary],
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    width: int = _PLOT_WIDTH,
) -> str:
    """Render labelled distributions as horizontal box plots.

    ``|`` marks whiskers (min/max), ``=`` the inter-quartile box, and
    ``#`` the median.
    """
    if not rows:
        return "(no data)"
    values = list(rows.values())
    lo = min(v.minimum for v in values) if lo is None else lo
    hi = max(v.maximum for v in values) if hi is None else hi
    label_width = max(len(str(k)) for k in rows) + 1
    lines = []
    for label, summary in rows.items():
        canvas = [" "] * width
        left = _scale(summary.minimum, lo, hi, width)
        right = _scale(summary.maximum, lo, hi, width)
        q1 = _scale(summary.q1, lo, hi, width)
        q3 = _scale(summary.q3, lo, hi, width)
        med = _scale(summary.median, lo, hi, width)
        for i in range(left, right + 1):
            canvas[i] = "-"
        for i in range(q1, q3 + 1):
            canvas[i] = "="
        canvas[left] = "|"
        canvas[right] = "|"
        canvas[med] = "#"
        lines.append(f"{str(label):<{label_width}}[{''.join(canvas)}]")
    lines.append(
        f"{'':<{label_width}} {lo:<10.4g}{'':^{max(0, width - 20)}}{hi:>10.4g}"
    )
    return "\n".join(lines)


def ascii_series(
    series: Mapping[str, Mapping[float, float]],
    height: int = 12,
    width: int = _PLOT_WIDTH,
) -> str:
    """Render one or more (x -> y) series as a scatter of glyphs."""
    if not series:
        return "(no data)"
    points: Sequence[Tuple[float, float]] = [
        (float(x), float(y)) for values in series.values() for x, y in values.items()
    ]
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    glyphs = "ox+*%@&$"
    canvas = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        for x, y in values.items():
            col = _scale(float(x), x_lo, x_hi, width)
            row = height - 1 - _scale(float(y), y_lo, y_hi, height)
            canvas[row][col] = glyph
    lines = [f"{y_hi:>10.4g} |{''.join(canvas[0])}"]
    for row in canvas[1:-1]:
        lines.append(f"{'':>10} |{''.join(row)}")
    lines.append(f"{y_lo:>10.4g} |{''.join(canvas[-1])}")
    lines.append(f"{'':>10}  {x_lo:<10.4g}{'':^{max(0, width - 20)}}{x_hi:>10.4g}")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} = {label}" for i, label in enumerate(series)
    )
    lines.append(f"{'':>10}  {legend}")
    return "\n".join(lines)
