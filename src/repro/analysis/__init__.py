"""Plain-terminal rendering of figure data.

Small helpers turning :class:`~repro.characterization.stats.
DistributionSummary` grids and line series into ASCII art, so the
benchmark harness output visually mirrors the paper's box-and-whisker
and line plots.
"""

from .ascii_plot import ascii_boxplot, ascii_series

__all__ = ["ascii_boxplot", "ascii_series"]
