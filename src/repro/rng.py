"""Deterministic random-number utilities.

Every stochastic quantity in the simulator (per-column sense thresholds,
per-row-group offsets, per-trial noise) is derived from a *stable hash*
of the entity's identity plus the simulation seed.  This makes whole
experiments reproducible bit-for-bit across processes and Python
versions, and means two experiments that touch the same cell observe
the same process variation -- exactly like real silicon.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable, Union

import numpy as np

Token = Union[int, float, str, bytes]


def encode_token(token: Token) -> bytes:
    """The canonical byte encoding of one seed token (incl. separator).

    This is the single definition of the token wire format; both
    :func:`stable_seed` and :class:`SeedPrefix` hash exactly these
    bytes, which is what keeps prefix-cached seeding bit-identical to
    the one-shot path.
    """
    if isinstance(token, bytes):
        return b"b" + token + b"\x00"
    if isinstance(token, str):
        return b"s" + token.encode("utf-8") + b"\x00"
    if isinstance(token, bool):
        return b"i" + struct.pack("<q", int(token)) + b"\x00"
    if isinstance(token, int):
        payload = token.to_bytes(
            (token.bit_length() + 16) // 8, "little", signed=True
        )
        return b"i" + struct.pack("<I", len(payload)) + payload + b"\x00"
    if isinstance(token, float):
        return b"f" + struct.pack("<d", token) + b"\x00"
    raise TypeError(f"unsupported seed token type: {type(token)!r}")


def encode_tokens(tokens: Iterable[Token]) -> bytes:
    """Concatenated canonical encoding of a token sequence."""
    return b"".join(encode_token(token) for token in tokens)


def stable_seed(*tokens: Token) -> int:
    """Derive a 64-bit seed from an ordered sequence of identity tokens.

    Uses BLAKE2b, which is stable across platforms and Python versions,
    unlike the builtin ``hash``.
    """
    digest = hashlib.blake2b(digest_size=8)
    for token in tokens:
        digest.update(encode_token(token))
    return int.from_bytes(digest.digest(), "little")


class TokenEncoder:
    """Memoizing :func:`encode_token` for bulk seed derivation.

    Block entry points derive thousands of seeds whose token tuples
    differ only in a fast-moving suffix; caching each distinct token's
    encoding (keyed by type *and* value, so ``1``/``1.0``/``True``
    stay distinct) keeps per-seed cost well under a microsecond.
    """

    def __init__(self) -> None:
        self._cache: dict = {}

    def __call__(self, token: Token) -> bytes:
        key = (token.__class__, token)
        cached = self._cache.get(key)
        if cached is None:
            cached = encode_token(token)
            self._cache[key] = cached
        return cached


class SeedPrefix:
    """Prefix-cached seed derivation for bulk keyed draws.

    Hashing the full token tuple costs ~5 us per seed; block entry
    points that need thousands of seeds per plan (fused executors)
    amortize the shared leading tokens by hashing them once and
    cloning the partial BLAKE2b state per suffix (~0.6 us).  The
    result is bit-identical to ``stable_seed(*prefix, *suffix)``
    because both hash exactly the same :func:`encode_token` bytes.
    """

    def __init__(self, *prefix: Token):
        self._digest = hashlib.blake2b(digest_size=8)
        self._digest.update(encode_tokens(prefix))

    def seed(self, *suffix: Token) -> int:
        """stable_seed(*prefix, *suffix) via the cached prefix state."""
        return self.seed_bytes(encode_tokens(suffix))

    def seed_bytes(self, suffix: bytes) -> int:
        """Like :meth:`seed` with the suffix already token-encoded."""
        digest = self._digest.copy()
        digest.update(suffix)
        return int.from_bytes(digest.digest(), "little")


def generator(*tokens: Token) -> np.random.Generator:
    """Create a numpy Generator keyed by identity tokens."""
    return np.random.default_rng(stable_seed(*tokens))


def standard_normal(shape: Union[int, Iterable[int]], *tokens: Token) -> np.ndarray:
    """Deterministic standard-normal draws keyed by identity tokens."""
    return generator(*tokens).standard_normal(shape)


def uniform_bits(n_bits: int, *tokens: Token) -> np.ndarray:
    """Deterministic uniform random bits (uint8 array of 0/1)."""
    return (generator(*tokens).random(n_bits) < 0.5).astype(np.uint8)
