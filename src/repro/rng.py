"""Deterministic random-number utilities.

Every stochastic quantity in the simulator (per-column sense thresholds,
per-row-group offsets, per-trial noise) is derived from a *stable hash*
of the entity's identity plus the simulation seed.  This makes whole
experiments reproducible bit-for-bit across processes and Python
versions, and means two experiments that touch the same cell observe
the same process variation -- exactly like real silicon.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable, Union

import numpy as np

Token = Union[int, float, str, bytes]


def stable_seed(*tokens: Token) -> int:
    """Derive a 64-bit seed from an ordered sequence of identity tokens.

    Uses BLAKE2b, which is stable across platforms and Python versions,
    unlike the builtin ``hash``.
    """
    digest = hashlib.blake2b(digest_size=8)
    for token in tokens:
        if isinstance(token, bytes):
            digest.update(b"b" + token)
        elif isinstance(token, str):
            digest.update(b"s" + token.encode("utf-8"))
        elif isinstance(token, bool):
            digest.update(b"i" + struct.pack("<q", int(token)))
        elif isinstance(token, int):
            payload = token.to_bytes(
                (token.bit_length() + 16) // 8, "little", signed=True
            )
            digest.update(b"i" + struct.pack("<I", len(payload)) + payload)
        elif isinstance(token, float):
            digest.update(b"f" + struct.pack("<d", token))
        else:
            raise TypeError(f"unsupported seed token type: {type(token)!r}")
        digest.update(b"\x00")
    return int.from_bytes(digest.digest(), "little")


def generator(*tokens: Token) -> np.random.Generator:
    """Create a numpy Generator keyed by identity tokens."""
    return np.random.default_rng(stable_seed(*tokens))


def standard_normal(shape: Union[int, Iterable[int]], *tokens: Token) -> np.ndarray:
    """Deterministic standard-normal draws keyed by identity tokens."""
    return generator(*tokens).standard_normal(shape)


def uniform_bits(n_bits: int, *tokens: Token) -> np.ndarray:
    """Deterministic uniform random bits (uint8 array of 0/1)."""
    return (generator(*tokens).random(n_bits) < 0.5).astype(np.uint8)
