"""Simulation-wide configuration.

:class:`SimulationConfig` bundles the knobs that trade fidelity for
speed.  Real DDR4 modules expose 8 KiB rows (65536 bits across the
rank); simulating full geometry for every experiment is possible but
slow, so experiments default to a narrower column count.  Narrowing
columns shrinks the sample size per row group (wider confidence
intervals) without moving the mean success rates, because the
reliability model draws each column independently.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .errors import ConfigurationError

FULL_COLUMNS_PER_ROW = 65536
"""Bits per module-level DRAM row on a 64-bit rank (8 KiB)."""


@dataclass(frozen=True)
class SimulationConfig:
    """Global fidelity / reproducibility knobs.

    Parameters
    ----------
    seed:
        Master seed; all process variation derives from it.
    columns_per_row:
        Number of bitline columns simulated per row.  The paper's rows
        hold 65536 bits; smaller values subsample the bitlines.
    trials_per_test:
        How many repetitions a characterization experiment runs per row
        group.  The paper uses large trial counts (section 9 mentions
        10000 for the disturbance check); the success-rate metric needs
        enough trials that unstable cells almost surely fail once.
    functional_only:
        If True, the device behaves ideally (no unstable cells).  Used
        by the functional bit-serial ALU tests where we verify logic,
        not reliability.
    """

    seed: int = 2024
    columns_per_row: int = 4096
    trials_per_test: int = 16
    functional_only: bool = False

    def __post_init__(self) -> None:
        if self.columns_per_row < 8:
            raise ConfigurationError("columns_per_row must be at least 8")
        if self.columns_per_row > FULL_COLUMNS_PER_ROW:
            raise ConfigurationError(
                f"columns_per_row cannot exceed {FULL_COLUMNS_PER_ROW}"
            )
        if self.trials_per_test < 1:
            raise ConfigurationError("trials_per_test must be positive")
        if self.seed < 0:
            raise ConfigurationError("seed must be non-negative")

    @classmethod
    def quick(cls, seed: int = 2024) -> "SimulationConfig":
        """A configuration sized for unit tests and smoke benchmarks."""
        return cls(seed=seed, columns_per_row=512, trials_per_test=8)

    @classmethod
    def full_fidelity(cls, seed: int = 2024) -> "SimulationConfig":
        """Full 8 KiB rows and paper-scale trial counts (slow)."""
        return cls(
            seed=seed, columns_per_row=FULL_COLUMNS_PER_ROW, trials_per_test=64
        )

    @classmethod
    def ideal(cls, seed: int = 2024) -> "SimulationConfig":
        """Functional-only device: every cell computes perfectly."""
        return cls(seed=seed, columns_per_row=512, functional_only=True)

    def fingerprint(self) -> dict:
        """Stable identity of this configuration.

        Campaign manifests store this so a ``--resume`` run can refuse
        to mix results produced under a different seed or scale.
        """
        return {
            "seed": self.seed,
            "columns_per_row": self.columns_per_row,
            "trials_per_test": self.trials_per_test,
            "functional_only": self.functional_only,
        }

    def with_seed(self, seed: int) -> "SimulationConfig":
        """Return a copy with a different master seed."""
        return replace(self, seed=seed)

    def with_columns(self, columns_per_row: int) -> "SimulationConfig":
        """Return a copy with a different simulated row width."""
        return replace(self, columns_per_row=columns_per_row)


DEFAULT_CONFIG = SimulationConfig()
