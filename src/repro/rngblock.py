"""Vectorized keyed uniform-bit generation.

:func:`repro.rng.uniform_bits` derives every draw from
``numpy.random.default_rng(stable_seed(...))`` -- one SeedSequence
pool mix, one PCG64 construction, and one ``random(n) < 0.5`` per
keyed draw (~28 us each).  A fused plan evaluates thousands of keyed
draws at once, so this module reproduces that exact pipeline as
vectorized numpy over a whole *block* of seeds:

- the SeedSequence entropy pool mix and ``generate_state`` hash
  (uint32 arithmetic, data-independent hash-constant schedule);
- the PCG64 seeding recipe (``state = (inc + initstate) * MULT + inc``
  over 128-bit integers, carried as hi/lo uint64 limb pairs);
- the PCG64 XSL-RR output stream, of which ``random() < 0.5`` only
  ever observes the top bit (``random(n) = (u >> 11) * 2**-53``, so
  ``< 0.5`` iff bit 63 of the raw output is clear).

Bit-identity with ``default_rng`` is the contract, not an aspiration:
the constants below are frozen by numpy's stream-compatibility
guarantee, and a startup self-check compares the vectorized path
against ``default_rng`` on a spread of seeds.  If the self-check ever
fails (an exotic numpy build), the block API silently falls back to
the per-seed reference path -- slower, never wrong.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

# SeedSequence hash constants (numpy/random/bit_generator.pyx; frozen
# by numpy's reproducibility guarantee since 1.17).
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = 0xCA01F9DD
_MIX_MULT_R = 0x4973F715
_XSHIFT = 16
_POOL_SIZE = 4

# PCG64 128-bit LCG multiplier (pcg64.h PCG_DEFAULT_MULTIPLIER).
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_MULT_HI = np.uint64(_PCG_MULT >> 64)
_MULT_LO = np.uint64(_PCG_MULT & 0xFFFFFFFFFFFFFFFF)

_M32 = np.uint64(0xFFFFFFFF)
_U0 = np.uint64(0)
_U1 = np.uint64(1)
_U16 = np.uint64(_XSHIFT)
_U32 = np.uint64(32)
_U58 = np.uint64(58)
_U63 = np.uint64(63)


def _hash_schedule(init: int, count: int) -> np.ndarray:
    """The (xor-const, mult-const) pairs of ``count`` hashmix calls.

    The SeedSequence hash constant evolves independently of the data
    (``value ^= hc; hc *= MULT; value *= hc``), so the whole schedule
    is precomputable: row k holds the hc value XORed into call k and
    the advanced hc it multiplies by.
    """
    pairs = np.empty((count, 2), dtype=np.uint64)
    hc = init
    for k in range(count):
        pairs[k, 0] = hc
        hc = (hc * _MULT_A) & 0xFFFFFFFF
        pairs[k, 1] = hc
    return pairs


_MIX_SCHEDULE = _hash_schedule(_INIT_A, _POOL_SIZE + _POOL_SIZE * (_POOL_SIZE - 1))
_GEN_SCHEDULE = np.empty((8, 2), dtype=np.uint64)
_hc = _INIT_B
for _k in range(8):
    _GEN_SCHEDULE[_k, 0] = _hc
    _hc = (_hc * _MULT_B) & 0xFFFFFFFF
    _GEN_SCHEDULE[_k, 1] = _hc
del _hc, _k

_MIX_L = np.uint64(_MIX_MULT_L)
_MIX_R = np.uint64(_MIX_MULT_R)


def _hashmix(value: np.ndarray, schedule: np.ndarray, k: int) -> np.ndarray:
    value = (value ^ schedule[k, 0]) * schedule[k, 1] & _M32
    return value ^ (value >> _U16)


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    # uint64 wraparound then & M32 == the uint32 wraparound difference.
    result = (x * _MIX_L - y * _MIX_R) & _M32
    return result ^ (result >> _U16)


def _seed_pools(seeds: np.ndarray) -> list:
    """SeedSequence(seed).pool for every seed, as four uint64 columns.

    A 64-bit integer seed always assembles to its uint32 words
    ``[lo, hi]`` zero-padded to the pool size; a seed below 2**32
    assembles to ``[lo]`` only, but the missing words enter the mix as
    zeros either way, so the padded form is identical for all of them.
    """
    entropy = [seeds & _M32, seeds >> _U32, None, None]
    pool = []
    k = 0
    for i in range(_POOL_SIZE):
        word = entropy[i]
        if word is None:
            word = np.zeros(seeds.shape, dtype=np.uint64)
        pool.append(_hashmix(word, _MIX_SCHEDULE, k))
        k += 1
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                pool[i_dst] = _mix(pool[i_dst], _hashmix(pool[i_src], _MIX_SCHEDULE, k))
                k += 1
    return pool


def _mulhi64(a: np.ndarray, b_lo32: np.uint64, b_hi32: np.uint64) -> np.ndarray:
    """High 64 bits of a 64x64 product with a constant multiplier."""
    a0 = a & _M32
    a1 = a >> _U32
    p00 = a0 * b_lo32
    mid = a1 * b_lo32 + (p00 >> _U32)
    mid2 = a0 * b_hi32 + (mid & _M32)
    return a1 * b_hi32 + (mid >> _U32) + (mid2 >> _U32)


_MULT_LO_LO = np.uint64(int(_MULT_LO) & 0xFFFFFFFF)
_MULT_LO_HI = np.uint64(int(_MULT_LO) >> 32)


def _pcg_states(seeds: np.ndarray) -> tuple:
    """PCG64 post-seeding (state, inc) hi/lo limbs for every seed.

    Mirrors ``pcg64_srandom_r``: ``inc = (initseq << 1) | 1;
    state = ((inc + initstate) * MULT + inc) mod 2**128`` where
    ``initstate``/``initseq`` come from ``generate_state(4, uint64)``
    with word pairs viewed little-endian.
    """
    pool = _seed_pools(seeds)
    words = [_hashmix(pool[i % _POOL_SIZE], _GEN_SCHEDULE, i) for i in range(8)]
    val = [words[2 * j] | (words[2 * j + 1] << _U32) for j in range(4)]
    st_hi, st_lo = val[0], val[1]
    iq_hi, iq_lo = val[2], val[3]
    inc_hi = (iq_hi << _U1) | (iq_lo >> _U63)
    inc_lo = (iq_lo << _U1) | _U1
    # t = inc + initstate (mod 2**128)
    t_lo = inc_lo + st_lo
    t_hi = inc_hi + st_hi + (t_lo < inc_lo).astype(np.uint64)
    # state = t * MULT + inc (mod 2**128)
    lo = t_lo * _MULT_LO
    hi = _mulhi64(t_lo, _MULT_LO_LO, _MULT_LO_HI) + t_lo * _MULT_HI + t_hi * _MULT_LO
    s_lo = lo + inc_lo
    s_hi = hi + inc_hi + (s_lo < lo).astype(np.uint64)
    return s_hi, s_lo, inc_hi, inc_lo


_STEP_CACHE: dict = {}


def _step_constants(n_bits: int) -> tuple:
    """``(A**j, sum A**i for i<j)`` limb arrays for j = 1..n_bits.

    The LCG has the closed form ``state_j = A**j * state_0 + c_j * inc
    (mod 2**128)`` with ``c_j = A*c_{j-1} + 1`` -- so all per-step
    multipliers are data-independent and cacheable per block width,
    letting a whole (seeds x bits) block evaluate as one broadcast
    expression instead of a sequential per-bit loop.
    """
    cached = _STEP_CACHE.get(n_bits)
    if cached is not None:
        return cached
    mask = (1 << 128) - 1
    m64 = (1 << 64) - 1
    a_hi = np.empty(n_bits, dtype=np.uint64)
    a_lo = np.empty(n_bits, dtype=np.uint64)
    c_hi = np.empty(n_bits, dtype=np.uint64)
    c_lo = np.empty(n_bits, dtype=np.uint64)
    a, c = _PCG_MULT, 1
    for k in range(n_bits):
        a_hi[k] = a >> 64
        a_lo[k] = a & m64
        c_hi[k] = c >> 64
        c_lo[k] = c & m64
        a = (a * _PCG_MULT) & mask
        c = (c * _PCG_MULT + 1) & mask
    cached = (a_hi, a_lo, c_hi, c_lo)
    _STEP_CACHE[n_bits] = cached
    return cached


def _mul128(x_hi, x_lo, y_hi, y_lo) -> tuple:
    """Broadcast 128x128 -> low-128 product over hi/lo uint64 limbs."""
    lo = x_lo * y_lo
    x0 = x_lo & _M32
    x1 = x_lo >> _U32
    y0 = y_lo & _M32
    y1 = y_lo >> _U32
    p00 = x0 * y0
    mid = x1 * y0 + (p00 >> _U32)
    mid2 = x0 * y1 + (mid & _M32)
    hi = (
        x1 * y1 + (mid >> _U32) + (mid2 >> _U32)
        + x_lo * y_hi + x_hi * y_lo
    )
    return hi, lo


_SEED_CHUNK = 256
"""Seeds per block evaluation: keeps the (chunk x bit-block) uint64
temporaries inside the cache hierarchy instead of streaming
multi-megabyte arrays through DRAM."""

_BIT_BLOCK = 64
"""Columns evaluated per closed-form/advance step (see below)."""


def _mul128_const(x_hi, x_lo, b_hi, b_lo, b0, b1) -> tuple:
    """Like :func:`_mul128` with a scalar constant, limbs pre-split."""
    lo = x_lo * b_lo
    x0 = x_lo & _M32
    x1 = x_lo >> _U32
    p00 = x0 * b0
    mid = x1 * b0 + (p00 >> _U32)
    mid2 = x0 * b1 + (mid & _M32)
    hi = x1 * b1 + (mid >> _U32) + (mid2 >> _U32) + x_lo * b_hi + x_hi * b_lo
    return hi, lo


def _split_const(value: int) -> tuple:
    m64 = (1 << 64) - 1
    lo = value & m64
    return (
        np.uint64(value >> 64),
        np.uint64(lo),
        np.uint64(lo & 0xFFFFFFFF),
        np.uint64(lo >> 32),
    )


def _advance_constants(steps: int) -> tuple:
    """``(A**steps, sum A**i for i < steps)`` as pre-split scalars."""
    mask = (1 << 128) - 1
    a, c = 1, 0
    for _ in range(steps):
        a = (a * _PCG_MULT) & mask
        c = (c * _PCG_MULT + 1) & mask
    return _split_const(a), _split_const(c)


_ADV_A, _ADV_C = _advance_constants(_BIT_BLOCK)


def _emit_bits(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    # XSL-RR output: rotr64(hi ^ lo, state >> 122).  ``random()`` is
    # ``(u >> 11) * 2**-53`` so ``< 0.5`` only reads bit 63 of u,
    # which sits at bit (63 + rot) mod 64 of hi ^ lo.
    xored = hi ^ lo
    position = (_U63 + (hi >> _U58)) & _U63
    return (((xored >> position) & _U1) ^ _U1).astype(np.uint8)


def _uniform_bit_chunk(s_hi, s_lo, inc_hi, inc_lo, n_bits: int) -> np.ndarray:
    # The first _BIT_BLOCK columns come from the closed form
    # ``state_j = A**j * state_0 + c_j * inc`` (two full products per
    # column); every later block reuses the previous block's states
    # through ``state_{j+K} = A**K * state_j + c_K * inc`` -- one
    # constant product plus one add, roughly half the element work.
    head = min(n_bits, _BIT_BLOCK)
    a_hi, a_lo, c_hi, c_lo = _step_constants(head)
    t1_hi, t1_lo = _mul128(s_hi[:, None], s_lo[:, None], a_hi, a_lo)
    t2_hi, t2_lo = _mul128(inc_hi[:, None], inc_lo[:, None], c_hi, c_lo)
    st_lo = t1_lo + t2_lo
    st_hi = t1_hi + t2_hi + (st_lo < t1_lo).astype(np.uint64)
    out = np.empty((s_hi.shape[0], n_bits), dtype=np.uint8)
    out[:, :head] = _emit_bits(st_hi, st_lo)
    if n_bits > head:
        add_hi, add_lo = _mul128_const(inc_hi, inc_lo, *_ADV_C)
        add_hi = add_hi[:, None]
        add_lo = add_lo[:, None]
        for j in range(head, n_bits, head):
            width = min(head, n_bits - j)
            if width < st_hi.shape[1]:
                st_hi = st_hi[:, :width]
                st_lo = st_lo[:, :width]
            m_hi, m_lo = _mul128_const(st_hi, st_lo, *_ADV_A)
            st_lo = m_lo + add_lo
            st_hi = m_hi + add_hi + (st_lo < m_lo).astype(np.uint64)
            out[:, j:j + width] = _emit_bits(st_hi, st_lo)
    return out


def _uniform_bit_block_fast(seeds: np.ndarray, n_bits: int) -> np.ndarray:
    s_hi, s_lo, inc_hi, inc_lo = _pcg_states(seeds)
    n = seeds.shape[0]
    if n <= _SEED_CHUNK:
        return _uniform_bit_chunk(s_hi, s_lo, inc_hi, inc_lo, n_bits)
    out = np.empty((n, n_bits), dtype=np.uint8)
    for i in range(0, n, _SEED_CHUNK):
        j = i + _SEED_CHUNK
        out[i:j] = _uniform_bit_chunk(
            s_hi[i:j], s_lo[i:j], inc_hi[i:j], inc_lo[i:j], n_bits
        )
    return out


def _uniform_bit_block_reference(seeds: np.ndarray, n_bits: int) -> np.ndarray:
    out = np.empty((seeds.shape[0], n_bits), dtype=np.uint8)
    for i, seed in enumerate(seeds):
        out[i] = np.random.default_rng(int(seed)).random(n_bits) < 0.5
    return out


def _self_check() -> bool:
    probes = np.array(
        [0, 1, 12345, 2**32 - 1, 2**32, 2**31, 2**63 + 12345, 2**64 - 1],
        dtype=np.uint64,
    )
    try:
        fast = _uniform_bit_block_fast(probes, 67)
    except Exception:  # pragma: no cover - exotic numpy only
        return False
    return bool(np.array_equal(fast, _uniform_bit_block_reference(probes, 67)))


_FAST_PATH_OK = _self_check()


def fast_path_enabled() -> bool:
    """Whether the vectorized path survived the startup self-check."""
    return _FAST_PATH_OK


def uniform_bit_block(
    seeds: Union[Sequence[int], np.ndarray], n_bits: int
) -> np.ndarray:
    """Uniform bits for many keyed seeds at once.

    Row ``i`` is bit-identical to
    ``(np.random.default_rng(seeds[i]).random(n_bits) < 0.5)`` --
    i.e. to :func:`repro.rng.uniform_bits` when ``seeds[i]`` is that
    call's ``stable_seed``.  Returns a ``(len(seeds), n_bits)`` uint8
    array of 0/1.
    """
    seeds = np.asarray(seeds, dtype=np.uint64)
    if seeds.ndim != 1:
        raise ValueError(f"seeds must be one-dimensional, got {seeds.shape}")
    if seeds.shape[0] == 0:
        return np.empty((0, n_bits), dtype=np.uint8)
    if not _FAST_PATH_OK:
        return _uniform_bit_block_reference(seeds, n_bits)
    return _uniform_bit_block_fast(seeds, n_bits)
