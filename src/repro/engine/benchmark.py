"""Executor benchmark: one representative figure sweep per executor.

Times the same declarative plans (a section 4 activation sweep, a
section 5 MAJ3 sweep, and a section 6 Multi-RowCopy sweep) on each
requested executor, verifies the determinism contract (identical
success rates everywhere), and reports wall-times plus speedups over
the serial reference.  ``simra-dram bench`` and
``benchmarks/run_benchmarks.py`` both land here; the JSON report is
written as ``BENCH_engine.json`` at the repository root by default.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..characterization.experiment import CharacterizationScope, OperatingPoint
from ..config import SimulationConfig
from ..dram.vendor import TESTED_MODULES
from .executors import available_cpu_count, make_executor
from .kernels import ActivationKernel, MajXKernel, MultiRowCopyKernel
from .plan import TrialPlan, tasks_for_scope
from .scheduler import CampaignScheduler

DEFAULT_CAMPAIGN_FIGURES = ("fig4a", "fig9", "fig11")
"""Figures timed by the whole-campaign benchmark: one sweep from each
characterization family, dozens of small plans each -- the shape where
per-plan pool spin-up dominates and pipelining pays."""

DEFAULT_FLEET_FIGURES = (
    "fig3", "fig4a", "fig6", "fig7", "fig8", "fig9",
)
"""Figures for the fleet benchmark: a >= 6-figure campaign, enough
independent programs for two workers to stay saturated."""

DEFAULT_CAMPAIGN_JOBS = max(1, min(4, available_cpu_count()))
"""Workers for the campaign benchmark when the caller passes no jobs.

A campaign-scale pool is wider than the two-worker executor headline
-- every extra worker multiplies the per-plan spin-up the sequential
baseline pays and the persistent pool amortizes -- but it is capped at
the *usable* CPU count (cgroup/affinity aware), so a container CI
runner with a small quota measures a pool it can actually schedule
instead of oversubscribing."""


DEFAULT_EXECUTORS = (
    "serial",
    "parallel",
    "batched",
    "fused",
    "fused-parallel",
)
_PARALLEL_EXECUTORS = ("parallel", "fused-parallel")
DEFAULT_BENCH_JOBS = max(1, min(2, available_cpu_count()))
"""Workers for the parallel executors when the caller passes no jobs.

Capped at the usable CPU count (``available_cpu_count`` consults
``os.process_cpu_count`` / the scheduler affinity mask, not the bare
host core count), so a 1-CPU container measures a one-worker pool it
can actually run rather than an oversubscribed two-worker one; the
worker-scaling curve still records the 2- and 4-worker points
explicitly, labeled with their worker counts."""


@dataclass
class BenchmarkReport:
    """Wall-times, metrics, and speedups of one benchmark run."""

    scale: Dict[str, int]
    plans: List[str]
    wall_s: Dict[str, float] = field(default_factory=dict)
    speedup: Dict[str, float] = field(default_factory=dict)
    """Serial wall-time divided by this executor's wall-time."""
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)
    worker_scaling: Dict[str, float] = field(default_factory=dict)
    """Wall-times of the parallel executor at 1/2/4... workers
    (keys like ``parallel@2``)."""
    identical: bool = True
    """Whether every executor produced bit-identical success rates."""
    campaign: Optional[Dict[str, object]] = None
    """Whole-campaign pipelining benchmark (see
    :func:`run_campaign_benchmark`), when requested."""
    fleet: Optional[Dict[str, object]] = None
    """Multi-worker fleet campaign benchmark (see
    :func:`run_fleet_benchmark`), when requested."""
    planner: Optional[Dict[str, object]] = None
    """Adaptive-planner benchmark (see :func:`run_planner_benchmark`),
    when requested."""

    def as_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "scale": self.scale,
            "cpus": available_cpu_count(),
            "plans": self.plans,
            "wall_s": self.wall_s,
            "speedup": self.speedup,
            "worker_scaling": self.worker_scaling,
            "identical": self.identical,
            "metrics": self.metrics,
        }
        if self.campaign is not None:
            document["campaign"] = self.campaign
        if self.fleet is not None:
            document["fleet"] = self.fleet
        if self.planner is not None:
            document["planner"] = self.planner
        return document

    def summary_lines(self) -> List[str]:
        lines = [
            "engine benchmark "
            + ", ".join(f"{k}={v}" for k, v in self.scale.items()),
            f"  plans: {', '.join(self.plans)}",
        ]
        baseline = self.wall_s.get("serial")
        for name, wall in self.wall_s.items():
            speedup = self.speedup.get(name, 1.0)
            lines.append(
                f"  {name:<15} {wall:8.3f} s   ({speedup:5.2f}x vs serial)"
            )
        for name, wall in self.worker_scaling.items():
            speedup = baseline / wall if baseline and wall > 0 else 1.0
            lines.append(
                f"  {name:<15} {wall:8.3f} s   ({speedup:5.2f}x vs serial)"
            )
        lines.append(
            "  results bit-identical across executors: "
            + ("yes" if self.identical else "NO (DETERMINISM VIOLATION)")
        )
        if self.campaign is not None:
            lines.append(
                "campaign benchmark "
                + ", ".join(f"{k}={v}" for k, v in self.campaign["scale"].items())
            )
            lines.append(f"  figures: {', '.join(self.campaign['figures'])}")
            walls = self.campaign["wall_s"]
            for mode in ("sequential", "pipelined"):
                lines.append(f"  {mode:<15} {walls[mode]:8.3f} s")
            lines.append(
                f"  pipelining speedup: {self.campaign['speedup']:.2f}x "
                f"(occupancy {self.campaign['pipeline_occupancy']:.2f})"
            )
            lines.append(
                "  campaign results bit-identical: "
                + (
                    "yes"
                    if self.campaign["identical"]
                    else "NO (DETERMINISM VIOLATION)"
                )
            )
        if self.fleet is not None:
            lines.append(
                "fleet benchmark "
                + ", ".join(
                    f"{k}={v}" for k, v in self.fleet["scale"].items()
                )
            )
            lines.append(f"  figures: {', '.join(self.fleet['figures'])}")
            walls = self.fleet["wall_s"]
            for mode in ("pipelined", "fleet"):
                lines.append(f"  {mode:<15} {walls[mode]:8.3f} s")
            lines.append(
                f"  fleet speedup over single-pool pipelining: "
                f"{self.fleet['speedup']:.2f}x"
            )
            lines.append(
                "  fleet artifacts byte-equal to single-host store: "
                + ("yes" if self.fleet["identical"] else "NO")
            )
            lines.append(
                "  fleet store audit: "
                + ("PASS" if self.fleet["audit_passed"] else "FAIL")
            )
        if self.planner is not None:
            lines.append(
                "planner benchmark "
                + ", ".join(
                    f"{k}={v}" for k, v in self.planner["scale"].items()
                )
            )
            lines.append(f"  figure: {self.planner['figure']}")
            trials = self.planner["trials"]
            lines.append(
                f"  trials: fixed {trials['fixed']}, adaptive "
                f"{trials['adaptive']} "
                f"({self.planner['trial_reduction']:.2f}x reduction)"
            )
            lines.append(
                f"  rounds: {self.planner['rounds']}, cells converged: "
                f"{self.planner['cells_converged']}/{self.planner['cells']} "
                f"(max CI halfwidth {self.planner['max_halfwidth']:.4f} "
                f"vs target {self.planner['ci_target']:.4f})"
            )
            walls = self.planner["wall_s"]
            lines.append(
                f"  wall: fixed {walls['fixed']:.3f} s, adaptive "
                f"{walls['adaptive']:.3f} s "
                f"({self.planner['speedup']:.2f}x)"
            )
            lines.append(
                "  every cell at target CI: "
                + ("yes" if self.planner["converged"] else "NO")
            )
            lines.append(
                "  adaptive re-run bit-identical: "
                + (
                    "yes"
                    if self.planner["identical"]
                    else "NO (DETERMINISM VIOLATION)"
                )
            )
        return lines


def _representative_plans(scope: CharacterizationScope) -> List[TrialPlan]:
    """A slice of each characterization family at its best timings."""
    act_point = OperatingPoint(t1_ns=1.5, t2_ns=3.0)
    maj_point = OperatingPoint(t1_ns=1.5, t2_ns=3.0)
    copy_point = OperatingPoint(t1_ns=36.0, t2_ns=3.0)
    benches = list(scope.benches)
    plans = [
        TrialPlan(
            name="activation-32",
            kernel=ActivationKernel(),
            point=act_point,
            tasks=tasks_for_scope(
                scope, 32, lambda b: 32 * b.module.config.columns_per_row
            ),
            benches=benches,
        ),
        TrialPlan(
            name="maj3-32",
            kernel=MajXKernel(3),
            point=maj_point,
            tasks=tasks_for_scope(
                scope,
                32,
                lambda b: b.module.config.columns_per_row,
                bench_predicate=lambda b: b.module.profile.max_reliable_majx >= 3,
            ),
            benches=benches,
        ),
        TrialPlan(
            name="mrc-7",
            kernel=MultiRowCopyKernel(),
            point=copy_point,
            tasks=tasks_for_scope(
                scope, 8, lambda b: 7 * b.module.config.columns_per_row
            ),
            benches=benches,
        ),
    ]
    return plans


def run_engine_benchmark(
    columns: int = 256,
    groups_per_size: int = 2,
    trials: int = 32,
    seed: int = 2024,
    executors: Sequence[str] = DEFAULT_EXECUTORS,
    jobs: Optional[int] = None,
    scaling_jobs: Sequence[int] = (1, 2, 4),
) -> BenchmarkReport:
    """Time the representative sweep on each executor and compare.

    Besides the headline per-executor wall-times, the report carries a
    worker-scaling curve: the parallel executor re-timed at each count
    in ``scaling_jobs`` (``parallel@N`` keys), so a stored benchmark
    shows how sharding amortizes rather than a single opaque number.
    """
    report = BenchmarkReport(
        scale={
            "columns": columns,
            "groups_per_size": groups_per_size,
            "trials": trials,
            "seed": seed,
        },
        plans=[],
    )
    reference_rates: Optional[List[List[float]]] = None

    def timed_run(name: str, run_jobs: Optional[int]):
        # A fresh scope per executor: every strategy starts from an
        # identical cold rig, so no executor inherits warmed-up state.
        scope = CharacterizationScope.build(
            config=SimulationConfig(seed=seed, columns_per_row=columns),
            specs=TESTED_MODULES,
            modules_per_spec=1,
            groups_per_size=groups_per_size,
            trials=trials,
        )
        plans = _representative_plans(scope)
        report.plans = [plan.name for plan in plans]
        executor = make_executor(name, jobs=run_jobs)
        with executor:
            started = time.perf_counter()
            rates = [executor.run(plan).rates() for plan in plans]
            wall = time.perf_counter() - started
        return wall, rates, executor

    def check_rates(rates: List[List[float]]) -> None:
        nonlocal reference_rates
        if reference_rates is None:
            reference_rates = rates
        elif rates != reference_rates:
            report.identical = False

    for name in executors:
        run_jobs = jobs
        if run_jobs is None and name in _PARALLEL_EXECUTORS:
            run_jobs = DEFAULT_BENCH_JOBS
        wall, rates, executor = timed_run(name, run_jobs)
        report.wall_s[name] = wall
        report.metrics[name] = executor.metrics.as_dict()
        check_rates(rates)
    if "parallel" in executors:
        for count in scaling_jobs:
            wall, rates, _ = timed_run("parallel", count)
            report.worker_scaling[f"parallel@{count}"] = wall
            check_rates(rates)
    baseline = report.wall_s.get("serial")
    for name, wall in report.wall_s.items():
        report.speedup[name] = (
            baseline / wall if baseline and wall > 0 else 1.0
        )
    return report


def run_campaign_benchmark(
    columns: int = 256,
    groups_per_size: int = 2,
    trials: int = 16,
    seed: int = 2024,
    jobs: Optional[int] = None,
    figures: Sequence[str] = DEFAULT_CAMPAIGN_FIGURES,
) -> Dict[str, object]:
    """Time a multi-figure campaign sequentially versus pipelined.

    Both runs use the fused-parallel executor on identical fresh
    scopes.  The sequential baseline reproduces the pre-scheduler
    behavior -- every plan spins up (and tears down) its own worker
    pool -- while the pipelined run keeps one persistent pool saturated
    across all figures through :class:`CampaignScheduler`.  Figure
    payloads must match exactly; the speedup is what the campaign
    floor in ``benchmarks/perf_floors.json`` gates on.
    """
    from ..characterization.campaign import EXPERIMENT_PROGRAMS

    run_jobs = DEFAULT_CAMPAIGN_JOBS if jobs is None else jobs

    def build_programs():
        scope = CharacterizationScope.build(
            config=SimulationConfig(seed=seed, columns_per_row=columns),
            specs=TESTED_MODULES,
            modules_per_spec=1,
            groups_per_size=groups_per_size,
            trials=trials,
        )
        return [EXPERIMENT_PROGRAMS[name](scope) for name in figures]

    # Sequential baseline: close() after every plan, so each one pays
    # the pool spin-up the persistent pool amortizes away.  Each
    # measured run gets its own executor, and its metrics are
    # snapshotted per run -- the stored report shows what *that* run
    # cost, not counters accumulated across the comparison.
    programs = build_programs()
    sequential_executor = make_executor("fused-parallel", jobs=run_jobs)
    sequential: Dict[str, object] = {}
    started = time.perf_counter()
    try:
        for program in programs:
            values = []
            for step in program.steps:
                values.append(
                    step.reduce(sequential_executor.run(step.plan))
                )
                sequential_executor.close()
            sequential[program.name] = program.assemble(values)
    finally:
        sequential_executor.close()
    sequential_wall = time.perf_counter() - started

    programs = build_programs()
    pipelined_executor = make_executor("fused-parallel", jobs=run_jobs)
    started = time.perf_counter()
    with pipelined_executor:
        outcome = CampaignScheduler(pipelined_executor).run(programs)
    pipelined_wall = time.perf_counter() - started
    for name, (status, value) in outcome.items():
        if status != "ok":
            raise value
    pipelined = {name: value for name, (_, value) in outcome.items()}

    return {
        "scale": {
            "columns": columns,
            "groups_per_size": groups_per_size,
            "trials": trials,
            "seed": seed,
            "jobs": run_jobs,
        },
        "figures": list(figures),
        "wall_s": {"sequential": sequential_wall, "pipelined": pipelined_wall},
        "speedup": (
            sequential_wall / pipelined_wall if pipelined_wall > 0 else 1.0
        ),
        "identical": pipelined == sequential,
        "pipeline_occupancy": pipelined_executor.metrics.pipeline_occupancy,
        "metrics": {
            "sequential": sequential_executor.metrics.as_dict(),
            "pipelined": pipelined_executor.metrics.as_dict(),
        },
    }


def run_fleet_benchmark(
    columns: int = 128,
    groups_per_size: int = 2,
    trials: int = 8,
    seed: int = 2024,
    jobs: Optional[int] = None,
    workers: int = 2,
    figures: Sequence[str] = DEFAULT_FLEET_FIGURES,
) -> Dict[str, object]:
    """Time a campaign on one pipelined pool versus a worker fleet.

    The baseline is the strongest single-host configuration: a
    :class:`~repro.characterization.campaign.Campaign` on a pipelined
    fused-parallel pool, committing to a store.  The challenger runs
    the same figures through :class:`~repro.engine.fleet.LocalFleet`
    worker subprocesses via :func:`~repro.engine.fleet.run_fleet_campaign`,
    committing to its own store.  Beyond wall-time, the comparison
    checks the fleet's two supervision invariants: every stored
    artifact byte-equal to the single-host store, and ``audit``
    passing on the fleet store with no fleet-specific handling.
    """
    import tempfile

    from ..characterization.campaign import Campaign
    from ..characterization.store import ResultStore
    from ..health import audit_store
    from .fleet import LocalFleet, run_fleet_campaign

    run_jobs = DEFAULT_CAMPAIGN_JOBS if jobs is None else jobs

    def build_scope() -> CharacterizationScope:
        return CharacterizationScope.build(
            config=SimulationConfig(seed=seed, columns_per_row=columns),
            specs=TESTED_MODULES,
            modules_per_spec=1,
            groups_per_size=groups_per_size,
            trials=trials,
        )

    with tempfile.TemporaryDirectory() as tmp:
        baseline_store = ResultStore(Path(tmp) / "pipelined")
        executor = make_executor("fused-parallel", jobs=run_jobs)
        campaign = Campaign(
            build_scope(), store=baseline_store, executor=executor
        )
        started = time.perf_counter()
        with executor:
            baseline = campaign.run(list(figures))
        pipelined_wall = time.perf_counter() - started
        if not baseline.succeeded:
            raise RuntimeError(
                f"baseline campaign failed: {baseline.failures}"
            )

        fleet_store = ResultStore(Path(tmp) / "fleet")
        with LocalFleet(workers=workers, executor_name="fused") as fleet:
            dispatcher = fleet.dispatcher()
            started = time.perf_counter()
            result = run_fleet_campaign(
                build_scope(), list(figures), dispatcher, store=fleet_store
            )
            fleet_wall = time.perf_counter() - started
        if not result.succeeded:
            raise RuntimeError(f"fleet campaign failed: {result.failures}")

        identical = all(
            (Path(tmp) / "fleet" / f"{name}.json").read_bytes()
            == (Path(tmp) / "pipelined" / f"{name}.json").read_bytes()
            for name in figures
        )
        audit_passed = audit_store(fleet_store, sample=2, seed=0).passed

    return {
        "scale": {
            "columns": columns,
            "groups_per_size": groups_per_size,
            "trials": trials,
            "seed": seed,
            "jobs": run_jobs,
            "workers": workers,
        },
        "figures": list(figures),
        "wall_s": {"pipelined": pipelined_wall, "fleet": fleet_wall},
        "speedup": pipelined_wall / fleet_wall if fleet_wall > 0 else 1.0,
        "identical": identical,
        "audit_passed": audit_passed,
        "metrics": result.engine_stats,
    }


def run_planner_benchmark(
    columns: int = 128,
    groups_per_size: int = 2,
    seed: int = 2024,
    figure: str = "fig9",
    ci_target: float = 0.02,
    round_trials: int = 4,
    max_trials: int = 32,
) -> Dict[str, object]:
    """Fixed-budget versus adaptive planning on a cliff sweep.

    The baseline runs ``figure`` (default fig9, the MAJX voltage sweep
    whose corner matrix mixes saturated corners with success-rate
    cliffs) at a fixed ``max_trials`` budget per cell; the challenger
    runs the same corner matrix through the
    :class:`~repro.engine.planner.AdaptivePlanner` with the same
    ceiling.  The headline number is the *trial reduction* -- fixed
    trials executed over adaptive trials executed -- which the
    ``planner`` floor in ``benchmarks/perf_floors.json`` gates on;
    the run only counts if every cell actually reached the target CI
    half-width (``converged``) and a second adaptive run reproduces
    the first bit-for-bit (``identical``).  Both runs use the serial
    reference executor: the comparison measures planning, not
    execution strategy.
    """
    from ..characterization.campaign import EXPERIMENT_PROGRAMS
    from .planner import AdaptivePlanner

    def build_program():
        scope = CharacterizationScope.build(
            config=SimulationConfig(seed=seed, columns_per_row=columns),
            specs=TESTED_MODULES,
            modules_per_spec=1,
            groups_per_size=groups_per_size,
            trials=max_trials,
        )
        return EXPERIMENT_PROGRAMS[figure](scope)

    # Fixed-budget baseline: every cell runs its whole built budget.
    program = build_program()
    fixed_executor = make_executor("serial")
    started = time.perf_counter()
    with fixed_executor:
        values = [
            step.reduce(fixed_executor.run(step.plan))
            for step in program.steps
        ]
        program.assemble(values)
    fixed_wall = time.perf_counter() - started
    fixed_trials = sum(
        task.trials for step in program.steps for task in step.plan.tasks
    )

    def adaptive_run():
        program = build_program()
        executor = make_executor("serial")
        planner = AdaptivePlanner(
            executor,
            ci_target=ci_target,
            round_trials=round_trials,
            max_trials=max_trials,
            seed=seed,
        )
        with executor:
            started = time.perf_counter()
            outcome = planner.run_program(program)
            wall = time.perf_counter() - started
        return outcome, wall, executor

    outcome, adaptive_wall, adaptive_executor = adaptive_run()
    rerun, _, _ = adaptive_run()
    identical = (
        rerun.value == outcome.value
        and rerun.planner_dict() == outcome.planner_dict()
    )
    converged = all(
        cell.stop_reason in ("converged", "empty") for cell in outcome.cells
    )
    halfwidths = [
        cell.ci.halfwidth for cell in outcome.cells if cell.ci is not None
    ]

    return {
        "scale": {
            "columns": columns,
            "groups_per_size": groups_per_size,
            "seed": seed,
            "ci_target": ci_target,
            "round_trials": round_trials,
            "max_trials": max_trials,
        },
        "figure": figure,
        "wall_s": {"fixed": fixed_wall, "adaptive": adaptive_wall},
        "speedup": fixed_wall / adaptive_wall if adaptive_wall > 0 else 1.0,
        "trials": {"fixed": fixed_trials, "adaptive": outcome.trials_run},
        "trial_reduction": (
            fixed_trials / outcome.trials_run if outcome.trials_run else 1.0
        ),
        "rounds": outcome.rounds,
        "cells": len(outcome.cells),
        "cells_converged": outcome.cells_converged,
        "max_halfwidth": max(halfwidths) if halfwidths else 0.0,
        "ci_target": ci_target,
        "converged": converged,
        "identical": identical,
        "metrics": adaptive_executor.metrics.as_dict(),
    }


def write_benchmark_json(report: BenchmarkReport, path: Path) -> Path:
    """Persist the report (the CI artifact)."""
    path = Path(path)
    path.write_text(json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n")
    return path
