"""Adaptive corner-matrix planning: CI-targeted early stopping.

A figure sweep is a corner matrix -- each
:class:`~repro.engine.scheduler.PlanStep` of an
:class:`~repro.engine.scheduler.ExperimentProgram` is one cell
(vendor x temperature x VPP x data-pattern x timing corner).  The
fixed-budget path runs every cell for the same trial count, so most
compute re-confirms corners that are already statistically settled
(0% or 100% success) while the interesting success-rate cliffs stay
under-sampled.

:class:`AdaptivePlanner` runs the matrix in *rounds* instead:

1. every live cell gets a slice of trials
   (:func:`~repro.engine.plan.slice_plan` offsets the slice so the
   noise stream is bit-identical to a one-shot run of the same total
   count), executed through the existing executors' ``run_many``
   pipeline;
2. after each round every cell's per-trial success rates feed a
   seeded incremental bootstrap
   (:class:`~repro.characterization.stats.StreamingBootstrap` --
   round N+1 never re-resamples round N's observations), and a cell
   whose CI half-width reaches the target stops early
   (``stop_reason="converged"``);
3. the trial budget converged cells free is reallocated to the
   surviving high-variance cells -- the ones sitting on the success
   cliffs -- proportionally to their observed per-trial variance,
   with a per-cell floor of the base round size, a cap at the cell's
   remaining budget, and deterministic seeded tie-breaking, so a
   re-run allocates identically.

Cells that never converge stop at ``max_trials``
(``stop_reason="budget"``).  Checkpointed plans cannot be sliced
(their running-AND checkpoint schedule spans the whole trial
sequence) and run once at their built budget
(``stop_reason="fixed"``).

Reproducibility guarantees: trial slicing is bit-identical by the
trial-index keying of all measurement noise, the bootstrap is seeded,
and the allocation policy is a pure function of (observations, seed)
-- so an adaptive campaign is as deterministic as a fixed one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from .. import rng
from ..errors import ExperimentError
from .executors import ExecutorBase
from .metrics import EngineMetrics
from .plan import PlanResult, TaskOutcome, TrialPlan, merge_outcomes, slice_plan
from .scheduler import ExperimentProgram

if TYPE_CHECKING:  # characterization imports the engine; avoid the cycle
    from ..characterization.stats import BootstrapCI


@dataclass(frozen=True)
class AdaptiveConfig:
    """The adaptive-planning knobs, as one fingerprintable value.

    A campaign run with these knobs produces different data than a
    fixed-budget run (fewer trials per converged cell), so the whole
    config rides in the campaign manifest's fingerprint: resume
    refuses to mix budgets, and ``simra-dram audit`` rebuilds the
    exact planner for its recompute cross-check.
    """

    ci_target: float = 0.02
    round_trials: int = 4
    max_trials: int = 32
    confidence: float = 0.95
    resamples: int = 2000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.ci_target <= 0.0:
            raise ExperimentError(
                f"ci_target must be positive, got {self.ci_target}"
            )
        if self.round_trials < 1:
            raise ExperimentError(
                f"round_trials must be >= 1, got {self.round_trials}"
            )
        if self.max_trials < self.round_trials:
            raise ExperimentError(
                f"max_trials ({self.max_trials}) must be >= round_trials "
                f"({self.round_trials})"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ExperimentError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.resamples < 1:
            raise ExperimentError(
                f"need at least one resample, got {self.resamples}"
            )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ci_target": self.ci_target,
            "round_trials": self.round_trials,
            "max_trials": self.max_trials,
            "confidence": self.confidence,
            "resamples": self.resamples,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AdaptiveConfig":
        return cls(
            ci_target=float(payload["ci_target"]),
            round_trials=int(payload["round_trials"]),
            max_trials=int(payload["max_trials"]),
            confidence=float(payload.get("confidence", 0.95)),
            resamples=int(payload.get("resamples", 2000)),
            seed=int(payload.get("seed", 0)),
        )

    def planner(
        self,
        executor: ExecutorBase,
        on_round: Optional[Callable[[str, int, Dict[int, int]], None]] = None,
    ) -> "AdaptivePlanner":
        """An :class:`AdaptivePlanner` bound to ``executor``."""
        return AdaptivePlanner(
            executor,
            ci_target=self.ci_target,
            round_trials=self.round_trials,
            max_trials=self.max_trials,
            confidence=self.confidence,
            resamples=self.resamples,
            seed=self.seed,
            on_round=on_round,
        )


@dataclass
class CellReport:
    """Per-cell planner record, persisted with adaptive artifacts."""

    step: int
    """Step index of this cell within its program."""
    plan: str
    """The cell's plan name (its corner label)."""
    tasks: int
    trials_planned: int
    """Per-task trial budget the planner would spend at worst."""
    trials_run: int
    """Per-task trials actually executed."""
    rounds: int
    stop_reason: str
    """``converged`` / ``budget`` / ``fixed`` / ``empty``."""
    ci: Optional["BootstrapCI"] = None

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "step": self.step,
            "plan": self.plan,
            "tasks": self.tasks,
            "trials_planned": self.trials_planned,
            "trials_run": self.trials_run,
            "rounds": self.rounds,
            "stop_reason": self.stop_reason,
        }
        if self.ci is not None:
            payload["ci"] = {
                "mean": self.ci.mean,
                "low": self.ci.low,
                "high": self.ci.high,
                "halfwidth": self.ci.halfwidth,
                "confidence": self.ci.confidence,
                "resamples": self.ci.resamples,
                "n": self.ci.n,
            }
        return payload


@dataclass
class AdaptiveOutcome:
    """One program's adaptive run: the figure value + the planner record."""

    name: str
    value: Any
    cells: List[CellReport]
    rounds: int
    wall_s: float = 0.0

    @property
    def trials_planned(self) -> int:
        """Total budgeted trials (task x trial units) across cells."""
        return sum(cell.tasks * cell.trials_planned for cell in self.cells)

    @property
    def trials_run(self) -> int:
        """Total executed trials (task x trial units) across cells."""
        return sum(cell.tasks * cell.trials_run for cell in self.cells)

    @property
    def trials_saved(self) -> int:
        return self.trials_planned - self.trials_run

    @property
    def cells_converged(self) -> int:
        return sum(
            1 for cell in self.cells if cell.stop_reason == "converged"
        )

    def planner_dict(self) -> Dict[str, Any]:
        """The JSON planner annotation stored beside the figure data."""
        return {
            "adaptive": True,
            "rounds": self.rounds,
            "cells": [cell.as_dict() for cell in self.cells],
            "cells_converged": self.cells_converged,
            "trials_planned": self.trials_planned,
            "trials_run": self.trials_run,
            "trials_saved": self.trials_saved,
        }


class _CellState:
    """Mutable per-cell bookkeeping across rounds."""

    def __init__(
        self,
        step_index: int,
        plan: TrialPlan,
        budget: int,
        sliceable: bool,
        confidence: float,
        resamples: int,
        seed: int,
    ):
        self.step_index = step_index
        self.plan = plan
        self.budget = budget
        self.sliceable = sliceable
        self.trials_run = 0
        self.rounds = 0
        self.stop_reason = ""
        self.outcomes: Dict[int, TaskOutcome] = {}
        # Runtime import: the stats module lives in characterization,
        # which imports the engine package at load time.
        from ..characterization.stats import StreamingBootstrap

        self.bootstrap = StreamingBootstrap(
            confidence=confidence, resamples=resamples, seed=seed
        )
        # Running moments of the per-trial observations; the planner's
        # variance-proportional allocation reads these.
        self._obs_n = 0
        self._obs_sum = 0.0
        self._obs_sumsq = 0.0
        # Seeded tie-break rank: a pure function of identity, so two
        # runs break allocation ties identically.
        self.tie_rank = rng.stable_seed(
            "adaptive-planner", seed, plan.name, step_index
        )

    @property
    def done(self) -> bool:
        return bool(self.stop_reason)

    @property
    def variance(self) -> float:
        if self._obs_n == 0:
            return 0.0
        mean = self._obs_sum / self._obs_n
        return max(0.0, self._obs_sumsq / self._obs_n - mean * mean)

    @property
    def remaining(self) -> int:
        return max(0, self.budget - self.trials_run)

    def absorb(self, result: PlanResult, allocated: int) -> None:
        """Fold one round's slice result into the cell state."""
        ordered = sorted(result.outcomes, key=lambda item: item.index)
        for outcome in ordered:
            held = self.outcomes.get(outcome.index)
            self.outcomes[outcome.index] = (
                outcome if held is None else merge_outcomes(held, outcome)
            )
        self.rounds += 1
        self.trials_run += allocated
        if not ordered:
            return
        # The cell's observation at trial t is the mean success rate
        # across its tasks at trial t -- an i.i.d. draw per trial.
        rates = np.array(
            [outcome.trial_rates for outcome in ordered], dtype=np.float64
        )
        if rates.size == 0:
            return
        observations = rates.mean(axis=0)
        self.bootstrap.extend(observations)
        self._obs_n += int(observations.size)
        self._obs_sum += float(observations.sum())
        self._obs_sumsq += float(np.square(observations).sum())

    def ci(self) -> Optional["BootstrapCI"]:
        if self.bootstrap.n == 0:
            return None
        return self.bootstrap.ci()

    def report(self) -> CellReport:
        return CellReport(
            step=self.step_index,
            plan=self.plan.name,
            tasks=len(self.plan.tasks),
            trials_planned=self.budget,
            trials_run=self.trials_run,
            rounds=self.rounds,
            stop_reason=self.stop_reason or "budget",
            ci=self.ci(),
        )


def allocate_round(
    cells: Sequence[_CellState], round_trials: int
) -> Dict[int, int]:
    """Trials per live cell for one round: ``{step_index: trials}``.

    The nominal round budget is ``round_trials`` per *matrix* cell --
    live or stopped -- so every trial a converged cell no longer needs
    is freed for reallocation.  Each live cell is floored at
    ``round_trials`` (no cell starves) and capped at its remaining
    budget; the freed surplus is split among live cells proportionally
    to their observed per-trial variance (largest-remainder
    apportionment), steering the extra sampling toward the success-
    rate cliffs.  Ties -- equal variance, and the remainder units --
    break on each cell's seeded ``tie_rank``, so allocation is a pure
    deterministic function of (observations, seed).
    """
    live = [cell for cell in cells if not cell.done and cell.remaining > 0]
    if not live:
        return {}
    budget = round_trials * len(cells)
    allocation = {
        cell.step_index: min(round_trials, cell.remaining) for cell in live
    }
    surplus = budget - sum(allocation.values())
    headroom = {
        cell.step_index: cell.remaining - allocation[cell.step_index]
        for cell in live
    }
    weights = {cell.step_index: cell.variance for cell in live}
    total_weight = sum(weights.values())
    if surplus > 0 and total_weight > 0.0:
        shares = {
            cell.step_index: surplus * weights[cell.step_index] / total_weight
            for cell in live
        }
        granted = {
            index: min(int(share), headroom[index])
            for index, share in shares.items()
        }
        # Largest-remainder pass for the integer leftovers (including
        # shares truncated by a cell's headroom cap), one unit per
        # sweep, capped by headroom; deterministic via the seeded rank.
        remainder_order = sorted(
            live,
            key=lambda cell: (
                -(shares[cell.step_index] - int(shares[cell.step_index])),
                -weights[cell.step_index],
                cell.tie_rank,
            ),
        )
        leftovers = surplus - sum(granted.values())
        progressed = True
        while leftovers > 0 and progressed:
            progressed = False
            for cell in remainder_order:
                if leftovers <= 0:
                    break
                index = cell.step_index
                if headroom[index] - granted[index] <= 0:
                    continue
                granted[index] += 1
                leftovers -= 1
                progressed = True
        for index, extra in granted.items():
            allocation[index] += extra
    return {index: count for index, count in allocation.items() if count > 0}


class AdaptivePlanner:
    """Round-based adaptive execution of experiment programs.

    Parameters
    ----------
    executor:
        Any engine executor; rounds go through its ``run_many`` so a
        pipelining pool stays saturated across cells.
    ci_target:
        Target CI half-width; a cell stops once its bootstrap CI is at
        least this tight.
    round_trials:
        Base trials per cell per round (and the per-cell floor).
    max_trials:
        Per-task budget ceiling per cell; also the fixed-mode baseline
        the savings are measured against.
    on_round:
        Optional observer called as ``on_round(program_name,
        round_index, allocation)`` after each executed round; the
        campaign layer journals these so a killed adaptive run leaves
        a round-by-round progress trace behind.
    """

    def __init__(
        self,
        executor: ExecutorBase,
        ci_target: float,
        round_trials: int,
        max_trials: int,
        confidence: float = 0.95,
        resamples: int = 2000,
        seed: int = 0,
        on_round: Optional[Callable[[str, int, Dict[int, int]], None]] = None,
    ):
        if ci_target <= 0.0:
            raise ExperimentError(
                f"ci_target must be positive, got {ci_target}"
            )
        if round_trials < 1:
            raise ExperimentError(
                f"round_trials must be >= 1, got {round_trials}"
            )
        if max_trials < round_trials:
            raise ExperimentError(
                f"max_trials ({max_trials}) must be >= round_trials "
                f"({round_trials})"
            )
        self.executor = executor
        self.ci_target = float(ci_target)
        self.round_trials = int(round_trials)
        self.max_trials = int(max_trials)
        self.confidence = float(confidence)
        self.resamples = int(resamples)
        self.seed = int(seed)
        self.on_round = on_round

    # -- execution ---------------------------------------------------------

    def run_program(self, program: ExperimentProgram) -> AdaptiveOutcome:
        """Run one program adaptively and assemble its figure value."""
        started = time.perf_counter()
        cells = [
            self._cell_for(index, step.plan)
            for index, step in enumerate(program.steps)
        ]
        rounds = 0
        while True:
            allocation = allocate_round(cells, self.round_trials)
            if not allocation:
                break
            rounds += 1
            self._run_round(cells, allocation)
            if self.on_round is not None:
                self.on_round(program.name, rounds, dict(allocation))
        for cell in cells:
            if not cell.stop_reason:
                cell.stop_reason = "budget"
        values = [
            step.reduce(self._result_for(cell))
            for step, cell in zip(program.steps, cells)
        ]
        value = program.assemble(values)
        outcome = AdaptiveOutcome(
            name=program.name,
            value=value,
            cells=[cell.report() for cell in cells],
            rounds=rounds,
            wall_s=time.perf_counter() - started,
        )
        metrics = self.executor.metrics
        metrics.rounds += rounds
        metrics.cells_converged += outcome.cells_converged
        metrics.trials_saved += outcome.trials_saved
        return outcome

    def run_programs(
        self, programs: Sequence[ExperimentProgram]
    ) -> Dict[str, Tuple[str, Any]]:
        """Campaign-shaped API: ``{name: ("ok", AdaptiveOutcome) | ("error", exc)}``."""
        outcomes: Dict[str, Tuple[str, Any]] = {}
        for program in programs:
            try:
                outcomes[program.name] = ("ok", self.run_program(program))
            except Exception as exc:  # noqa: BLE001 -- isolate programs
                outcomes[program.name] = ("error", exc)
        return outcomes

    # -- internals ---------------------------------------------------------

    def _cell_for(self, index: int, plan: TrialPlan) -> _CellState:
        sliceable = not plan.checkpoints and bool(plan.tasks)
        if sliceable:
            budget = self.max_trials
        else:
            budget = max(
                (task.trials for task in plan.tasks), default=0
            )
        cell = _CellState(
            step_index=index,
            plan=plan,
            budget=budget,
            sliceable=sliceable,
            confidence=self.confidence,
            resamples=self.resamples,
            seed=self.seed,
        )
        if not plan.tasks:
            cell.stop_reason = "empty"
        return cell

    def _run_round(
        self, cells: Sequence[_CellState], allocation: Dict[int, int]
    ) -> None:
        by_index = {cell.step_index: cell for cell in cells}
        batch: List[Tuple[_CellState, int, TrialPlan]] = []
        for index in sorted(allocation):
            cell = by_index[index]
            if cell.sliceable:
                count = allocation[index]
                batch.append(
                    (cell, count,
                     slice_plan(cell.plan, cell.trials_run, count))
                )
            else:
                # Checkpointed plans run whole, once, at built budget.
                batch.append((cell, cell.budget, cell.plan))
        results = self.executor.run_many([plan for _, _, plan in batch])
        for (cell, count, _), result in zip(batch, results):
            if isinstance(result, Exception):
                raise result
            cell.absorb(result, count)
            if not cell.sliceable:
                cell.stop_reason = "fixed"
                continue
            ci = cell.ci()
            if ci is not None and ci.halfwidth <= self.ci_target:
                cell.stop_reason = "converged"
            elif cell.remaining <= 0:
                cell.stop_reason = "budget"

    def _result_for(self, cell: _CellState) -> PlanResult:
        outcomes = [
            cell.outcomes[index] for index in sorted(cell.outcomes)
        ]
        return PlanResult(
            plan_name=cell.plan.name,
            outcomes=outcomes,
            metrics=EngineMetrics(executor=self.executor.name),
        )
