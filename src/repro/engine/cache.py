"""Content-addressed on-disk trial cache.

A :class:`~repro.engine.plan.TaskOutcome` is a pure function of the
simulation seed and the measurement identity -- that is the engine's
bit-identity contract.  This module turns that property into a
cross-run cache: each task's outcome is stored under a key derived
from everything the bits depend on, so repeated campaigns, audits,
and ``--resume`` runs skip recomputation entirely.

Key derivation
--------------
The key is a BLAKE2b digest over the canonical JSON of:

- a schema tag and the package version (code-version salt: any release
  may legitimately change the model's math, so old entries must not
  survive an upgrade);
- the resume fingerprint fields of :class:`~repro.config.SimulationConfig`
  (seed, columns per row, trials per test, functional-only);
- the kernel's ``cache_token`` (its signature plus any constructor
  state the signature misses);
- the operating-point token (timings, temperature, VPP, pattern);
- the task identity (module serial, bank, subarray, row-group token,
  trials, trial offset, cells) and the plan's checkpoint schedule.

Any of these changing changes the key -- which *is* the invalidation
rule; nothing is ever migrated in place.

Entries are JSON files (packed mask as base64, rates as exact JSON
doubles) carrying a sha256 content checksum and the name of the
executor that produced them.  A truncated, corrupt, or
wrong-checksum entry reads as a miss (recompute, never crash); a
``require_origin`` filter lets the audit path refuse entries produced
by the very executors it is supposed to cross-check.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import tempfile
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .. import __version__
from ..config import SimulationConfig
from .plan import TaskOutcome, TrialTask

CACHE_SCHEMA = 2
"""Bump to invalidate every existing entry on a format change."""


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class TrialCache:
    """Content-addressed trial-outcome store under one root directory.

    Counters (hits / misses / bytes) accumulate for the cache object's
    lifetime; executors snapshot them around each plan to attribute
    deltas to :class:`~repro.engine.metrics.EngineMetrics`.
    """

    def __init__(self, root: str, require_origin: Optional[str] = None):
        self.root = str(root)
        self.require_origin = require_origin
        self.hits = 0
        self.misses = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- key derivation -------------------------------------------------------

    def key_for(
        self,
        config: SimulationConfig,
        kernel: "TrialKernel",  # noqa: F821 -- avoids a circular import
        point_token: str,
        task: TrialTask,
        checkpoints: Tuple[int, ...],
    ) -> str:
        """The content address of one task's outcome."""
        identity = {
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "config": config.fingerprint(),
            "kernel": kernel.cache_token,
            "point": point_token,
            "serial": task.serial,
            "bank": task.bank,
            "subarray": task.subarray,
            "group": task.group_token,
            "trials": task.trials,
            "trial_offset": task.trial_offset,
            "cells": task.cells,
            "checkpoints": list(checkpoints),
        }
        digest = hashlib.blake2b(
            _canonical(identity).encode("utf-8"), digest_size=16
        )
        return digest.hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    # -- load / store ---------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Snapshot of the session counters."""
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_bytes_read": self.bytes_read,
            "cache_bytes_written": self.bytes_written,
        }

    def load(self, key: str, task: TrialTask) -> Optional[TaskOutcome]:
        """The cached outcome for ``key``, or None (counted as a miss).

        Every failure mode -- absent entry, truncated file, JSON or
        base64 damage, checksum mismatch, wrong shape, origin not
        accepted -- degrades to a miss so a damaged cache can only
        cost recomputation, never correctness.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            payload = entry["payload"]
            checksum = hashlib.sha256(
                _canonical(payload).encode("utf-8")
            ).hexdigest()
            if checksum != entry["checksum"]:
                raise ValueError("checksum mismatch")
            if payload["key"] != key:
                raise ValueError("key mismatch")
            if (
                self.require_origin is not None
                and payload["origin"] != self.require_origin
            ):
                raise ValueError("origin not accepted")
            packed = np.frombuffer(
                base64.b64decode(payload["mask_b64"], validate=True),
                dtype=np.uint8,
            )
            mask = np.unpackbits(packed)[: task.cells].astype(bool)
            if mask.shape != (task.cells,):
                raise ValueError("mask shape mismatch")
            outcome = TaskOutcome(
                index=task.index,
                rate=float(payload["rate"]),
                trials=int(payload["trials"]),
                cells=int(payload["cells"]),
                mask=mask,
                checkpoint_rates=tuple(
                    (int(count), float(rate))
                    for count, rate in payload["checkpoint_rates"]
                ),
                trial_rates=tuple(
                    float(rate) for rate in payload["trial_rates"]
                ),
            )
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        self.bytes_read += os.path.getsize(path)
        return outcome

    def store(self, key: str, outcome: TaskOutcome, origin: str) -> None:
        """Persist one outcome atomically (write-temp + rename)."""
        mask = np.asarray(outcome.mask, dtype=bool)
        payload = {
            "key": key,
            "origin": origin,
            "rate": outcome.rate,
            "trials": outcome.trials,
            "cells": outcome.cells,
            "checkpoint_rates": [
                [count, rate] for count, rate in outcome.checkpoint_rates
            ],
            "trial_rates": list(outcome.trial_rates),
            "mask_b64": base64.b64encode(
                np.packbits(mask.astype(np.uint8)).tobytes()
            ).decode("ascii"),
        }
        entry = {
            "payload": payload,
            "checksum": hashlib.sha256(
                _canonical(payload).encode("utf-8")
            ).hexdigest(),
        }
        path = self._path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        encoded = json.dumps(entry).encode("utf-8")
        handle, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(encoded)
            os.replace(temp_path, path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.bytes_written += len(encoded)

    # -- maintenance ----------------------------------------------------------

    def _entry_paths(self) -> List[str]:
        paths: List[str] = []
        if not os.path.isdir(self.root):
            return paths
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    paths.append(os.path.join(shard_dir, name))
        return paths

    def stats(self) -> Dict[str, int]:
        """On-disk entry count and size plus the session counters."""
        paths = self._entry_paths()
        on_disk = 0
        for path in paths:
            try:
                on_disk += os.path.getsize(path)
            except OSError:
                pass
        summary: Dict[str, int] = {
            "entries": len(paths),
            "disk_bytes": on_disk,
        }
        summary.update(self.counters())
        return summary

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entry_paths():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed
