"""Trial kernels: the operation a plan measures.

A kernel provides two equivalent implementations of one measurement
trial:

- :meth:`TrialKernel.run_trial` drives the full bender/testbench path
  (program scheduling, bank state machine, host readback) for one
  trial -- the reference semantics;
- :meth:`TrialKernel.run_batch` computes a whole task's trial matrix
  directly from the :class:`~repro.dram.behavior.ReliabilityModel` in
  vectorized numpy, skipping the per-trial program round-trips.

Bit-identity between the two is guaranteed by construction: every
stochastic draw is identity-keyed (thresholds, group offsets, sense-amp
bias, pattern bits) or keyed by the shared measurement context
(:func:`measurement_context` -> ``ReliabilityModel.context_noise``),
so both paths consult the same random bits.  The batched path is
gated on the APA probe resolving to the kernel's expected semantic
(``batched_semantic``); any other regime falls back to the per-trial
reference path, which is always correct.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from .. import rng
from ..bender.program import apa_program
from ..bender.testbench import TestBench
from ..core.majority import execute_majx, expected_majority, plan_majx
from ..core.multirowcopy import execute_multi_row_copy
from ..core.operations import simultaneous_activation_test
from ..core.patterns import DataPattern
from ..dram.bank import pattern_regularity
from ..dram.behavior import OperationClass
from ..dram.cell import LEVEL_HALF, bits_to_levels
from . import bitplane
from .plan import TrialTask

if TYPE_CHECKING:  # characterization imports the engine; avoid the cycle
    from ..characterization.experiment import OperatingPoint


def point_token(point: "OperatingPoint") -> str:
    """Stable identity of an operating point for noise keying."""
    return (
        f"{point.t1_ns}:{point.t2_ns}:{point.temperature_c}:"
        f"{point.vpp}:{point.pattern.kind}"
    )


def measurement_context(
    kernel: "TrialKernel", point: "OperatingPoint", task: TrialTask, trial: int
) -> Tuple[rng.Token, ...]:
    """The noise-context tokens for one trial of one task.

    Includes the kernel signature and operating point so distinct
    experiments that happen to sample the same row group draw
    independent noise, and the group identity + trial index so the
    draw does not depend on execution order.
    """
    return (kernel.signature, point_token(point), task.group_token, trial)


class TrialKernel:
    """Base protocol for plan kernels (see module docstring)."""

    op_name: str = "trial"
    signature: str = "trial"
    batched_semantic: Optional[str] = None
    """APA semantic the vectorized path models; ``None`` skips the
    probe gate (the kernel is regime-independent)."""

    @property
    def cache_token(self) -> str:
        """Identity of this kernel's math for the trial cache.

        Defaults to ``signature``; kernels whose results depend on
        constructor state the signature does not capture must extend
        it, or the cache would serve one configuration's bits to
        another.
        """
        return self.signature

    def setup(self, bench: TestBench, task: TrialTask, point: OperatingPoint) -> None:
        """Once-per-task preparation (default: nothing)."""

    def run_trial(
        self, bench: TestBench, task: TrialTask, point: OperatingPoint, trial: int
    ) -> np.ndarray:
        """One trial through the full bench; returns a (cells,) bool vector."""
        raise NotImplementedError

    def run_batch(
        self, bench: TestBench, task: TrialTask, point: OperatingPoint
    ) -> np.ndarray:
        """All trials at once; returns a (trials, cells) bool matrix."""
        raise NotImplementedError

    def run_slice(
        self, bench: TestBench, tasks: Sequence[TrialTask], point: OperatingPoint
    ) -> List[np.ndarray]:
        """All trials of many tasks sharing one bench, packed.

        Returns one ``(trials, words)`` uint64 plane stack per task
        (see :mod:`repro.engine.bitplane`), bit-identical to packing
        :meth:`run_batch`.  The default packs per-task batches; fused
        kernels override it to gather every keyed draw of the slice
        into single block RNG calls.
        """
        return [
            bitplane.pack_matrix(
                np.asarray(self.run_batch(bench, task, point), dtype=bool)
            )
            for task in tasks
        ]

    def finalize(
        self, bench: TestBench, task: TrialTask, point: OperatingPoint
    ) -> Optional[np.ndarray]:
        """Optional end-of-task audit ANDed into the accumulated mask."""
        return None


class ActivationKernel(TrialKernel):
    """Section 3.2 recipe: init -> APA -> WR -> readback."""

    op_name = "activation"
    signature = "activation"
    batched_semantic = "majority"

    def run_trial(self, bench, task, point, trial):
        result = simultaneous_activation_test(
            bench,
            task.bank,
            task.group,
            t1_ns=point.t1_ns,
            t2_ns=point.t2_ns,
            pattern=point.pattern,
            trial=trial,
        )
        return result.flattened()

    def run_batch(self, bench, task, point):
        module = bench.module
        reliability = module.reliability
        device_bank = module.bank(task.bank)
        columns = module.config.columns_per_row
        group = task.group
        rows_sorted = sorted(group.rows)
        # The WR overdrive decides correctness: stable columns latch the
        # WR data in every opened row, unstable ones flip a coin per row.
        z = reliability.activation_z(
            group.size,
            point.t1_ns,
            point.t2_ns,
            device_bank.temperature_c,
            device_bank.vpp,
        )
        stable = reliability.stable_mask(
            z, task.bank, task.subarray, group.rows,
            OperationClass.ACTIVATION, columns,
        )
        matrix = np.empty((task.trials, task.cells), dtype=bool)
        for local, trial in enumerate(
            range(task.trial_offset, task.trial_offset + task.trials)
        ):
            context = measurement_context(self, point, task, trial)
            reference = point.pattern.row_bits(
                columns, "act-wr", group.row_first, trial
            )
            wr_bits = point.pattern.inverse_bits(reference)
            for position, local_row in enumerate(rows_sorted):
                noise = reliability.context_noise(
                    context, task.bank, task.subarray, columns,
                    f"wr-{local_row}",
                )
                matrix[local, position * columns:(position + 1) * columns] = (
                    stable | (noise == wr_bits)
                )
        return matrix

    def run_slice(self, bench, tasks, point):
        module = bench.module
        reliability = module.reliability
        columns = module.config.columns_per_row
        # Gather every keyed draw of the slice: one pattern block for
        # the (task x trial) reference rows, one noise block for the
        # (task x trial x row) WR contests.
        reference_ids = []
        noise_entries = []
        for task in tasks:
            rows_sorted = sorted(task.group.rows)
            for trial in range(
                task.trial_offset, task.trial_offset + task.trials
            ):
                reference_ids.append(("act-wr", task.group.row_first, trial))
                context = measurement_context(self, point, task, trial)
                for local_row in rows_sorted:
                    noise_entries.append(
                        (task.bank, task.subarray, f"wr-{local_row}", context)
                    )
        references = point.pattern.row_bits_block(columns, reference_ids)
        noise = reliability.context_noise_block(noise_entries, columns)
        planes: List[np.ndarray] = []
        reference_offset = 0
        noise_offset = 0
        for task in tasks:
            device_bank = module.bank(task.bank)
            group = task.group
            z = reliability.activation_z(
                group.size,
                point.t1_ns,
                point.t2_ns,
                device_bank.temperature_c,
                device_bank.vpp,
            )
            stable = reliability.stable_mask(
                z, task.bank, task.subarray, group.rows,
                OperationClass.ACTIVATION, columns,
            )
            wr_bits = point.pattern.inverse_bits(
                references[reference_offset:reference_offset + task.trials]
            )
            count = task.trials * group.size
            task_noise = noise[noise_offset:noise_offset + count].reshape(
                task.trials, group.size, columns
            )
            matrix = np.logical_or(
                task_noise == wr_bits[:, None, :], stable[None, None, :]
            )
            planes.append(
                bitplane.pack_matrix(matrix.reshape(task.trials, task.cells))
            )
            reference_offset += task.trials
            noise_offset += count
        return planes


class MajXKernel(TrialKernel):
    """Section 3.3 recipe: operands + neutral rows -> APA -> RD."""

    op_name = "majority"
    batched_semantic = "majority"

    def __init__(self, x: int, replicas: Optional[int] = None):
        self.x = x
        self.replicas = replicas
        self.signature = f"majx:{x}:r{0 if replicas is None else replicas}"

    def run_trial(self, bench, task, point, trial):
        columns = bench.module.config.columns_per_row
        plan = plan_majx(self.x, task.group, replicas=self.replicas)
        operands = [
            point.pattern.operand_bits(columns, op, task.serial, task.bank, trial)
            for op in range(self.x)
        ]
        result = execute_majx(
            bench, task.bank, plan, operands,
            t1_ns=point.t1_ns, t2_ns=point.t2_ns,
        )
        return result.correct

    def run_batch(self, bench, task, point):
        module = bench.module
        reliability = module.reliability
        device_bank = module.bank(task.bank)
        sub = device_bank.subarray(task.subarray)
        columns = module.config.columns_per_row
        group = task.group
        plan = plan_majx(self.x, group, replicas=self.replicas)
        rows_sorted = sorted(group.rows)
        temp_c = device_bank.temperature_c
        vpp = device_bank.vpp
        # Neutral-row stability is trial-independent (identity-keyed).
        frac_z = reliability.frac_z(temp_c, vpp)
        neutral_stable = {
            local_row: reliability.stable_mask(
                frac_z, task.bank, task.subarray, frozenset({local_row}),
                OperationClass.FRAC, columns,
            )
            for local_row in plan.neutral_rows
        }
        first_row = rows_sorted[0]
        matrix = np.empty((task.trials, columns), dtype=bool)
        for local, trial in enumerate(
            range(task.trial_offset, task.trial_offset + task.trials)
        ):
            context = measurement_context(self, point, task, trial)
            operands = [
                point.pattern.operand_bits(
                    columns, op, task.serial, task.bank, trial
                )
                for op in range(self.x)
            ]
            # Reconstruct the charge levels the opened rows would hold:
            # operand rows carry their bits, neutral rows sit at VDD/2
            # where the Frac landed and at coin-flip rails elsewhere.
            level_rows = np.empty((group.size, columns), dtype=np.uint8)
            for position, local_row in enumerate(rows_sorted):
                operand_index = plan.operand_of_row.get(local_row)
                if operand_index is not None:
                    level_rows[position] = bits_to_levels(
                        operands[operand_index]
                    )
                else:
                    noise = reliability.context_noise(
                        context, task.bank, task.subarray, columns,
                        f"frac-{local_row}",
                    )
                    level_rows[position] = np.where(
                        neutral_stable[local_row],
                        LEVEL_HALF,
                        bits_to_levels(noise),
                    ).astype(np.uint8)
            imbalance = (level_rows.astype(np.int64) - 1).sum(axis=0)
            ideal = sub.sense_amps.resolve(np.sign(imbalance))
            z_columns = reliability.majority_column_z(
                imbalance,
                n_rows=group.size,
                t1_ns=point.t1_ns,
                t2_ns=point.t2_ns,
                pattern_scale=pattern_regularity(level_rows),
                temp_c=temp_c,
                vpp=vpp,
            )
            stable = reliability.stable_mask_vector(
                z_columns, task.bank, task.subarray, group.rows,
                OperationClass.MAJORITY,
            )
            noise = reliability.context_noise(
                context, task.bank, task.subarray, columns, f"maj-{first_row}"
            )
            result = np.where(stable, ideal, noise).astype(np.uint8)
            matrix[local] = result == expected_majority(operands)
        return matrix

    def run_slice(self, bench, tasks, point):
        module = bench.module
        reliability = module.reliability
        columns = module.config.columns_per_row
        plans = [
            plan_majx(self.x, task.group, replicas=self.replicas)
            for task in tasks
        ]
        operand_ids = []
        frac_entries = []
        maj_entries = []
        for task, plan in zip(tasks, plans):
            first_row = sorted(task.group.rows)[0]
            for trial in range(
                task.trial_offset, task.trial_offset + task.trials
            ):
                context = measurement_context(self, point, task, trial)
                for op in range(self.x):
                    operand_ids.append(
                        ("operand", op, task.serial, task.bank, trial)
                    )
                for local_row in plan.neutral_rows:
                    frac_entries.append(
                        (task.bank, task.subarray, f"frac-{local_row}", context)
                    )
                maj_entries.append(
                    (task.bank, task.subarray, f"maj-{first_row}", context)
                )
        operands = point.pattern.row_bits_block(columns, operand_ids)
        frac_noise = reliability.context_noise_block(frac_entries, columns)
        maj_noise = reliability.context_noise_block(maj_entries, columns)
        planes: List[np.ndarray] = []
        operand_offset = frac_offset = maj_offset = 0
        for task, plan in zip(tasks, plans):
            device_bank = module.bank(task.bank)
            sub = device_bank.subarray(task.subarray)
            group = task.group
            rows_sorted = sorted(group.rows)
            temp_c = device_bank.temperature_c
            vpp = device_bank.vpp
            trials = task.trials
            frac_z = reliability.frac_z(temp_c, vpp)
            neutral_stable = {
                local_row: reliability.stable_mask(
                    frac_z, task.bank, task.subarray, frozenset({local_row}),
                    OperationClass.FRAC, columns,
                )
                for local_row in plan.neutral_rows
            }
            ops = operands[
                operand_offset:operand_offset + trials * self.x
            ].reshape(trials, self.x, columns)
            n_neutral = len(plan.neutral_rows)
            task_frac = frac_noise[
                frac_offset:frac_offset + trials * n_neutral
            ].reshape(trials, n_neutral, columns)
            neutral_index = {
                local_row: j for j, local_row in enumerate(plan.neutral_rows)
            }
            levels = np.empty((trials, group.size, columns), dtype=np.uint8)
            for position, local_row in enumerate(rows_sorted):
                operand_index = plan.operand_of_row.get(local_row)
                if operand_index is not None:
                    levels[:, position, :] = bits_to_levels(
                        ops[:, operand_index, :]
                    )
                else:
                    levels[:, position, :] = np.where(
                        neutral_stable[local_row],
                        LEVEL_HALF,
                        bits_to_levels(
                            task_frac[:, neutral_index[local_row], :]
                        ),
                    ).astype(np.uint8)
            imbalance = (levels.astype(np.int64) - 1).sum(axis=1)
            ideal = sub.sense_amps.resolve(np.sign(imbalance))
            # pattern_regularity is a per-trial scalar; trials sharing
            # a value share one 2-D majority_column_z call.
            scales = np.array(
                [pattern_regularity(levels[t]) for t in range(trials)]
            )
            z_columns = np.empty((trials, columns), dtype=np.float64)
            for scale in np.unique(scales):
                where = np.nonzero(scales == scale)[0]
                z_columns[where] = reliability.majority_column_z(
                    imbalance[where],
                    n_rows=group.size,
                    t1_ns=point.t1_ns,
                    t2_ns=point.t2_ns,
                    pattern_scale=float(scale),
                    temp_c=temp_c,
                    vpp=vpp,
                )
            stable = reliability.stable_mask_vector(
                z_columns, task.bank, task.subarray, group.rows,
                OperationClass.MAJORITY,
            )
            task_maj = maj_noise[maj_offset:maj_offset + trials]
            result = np.where(stable, ideal, task_maj).astype(np.uint8)
            expected = (
                ops.astype(np.int64).sum(axis=1) * 2 > self.x
            ).astype(np.uint8)
            planes.append(bitplane.pack_matrix(result == expected))
            operand_offset += trials * self.x
            frac_offset += trials * n_neutral
            maj_offset += trials
        return planes


class MultiRowCopyKernel(TrialKernel):
    """Section 3.4 recipe: init source/destinations -> APA -> readback."""

    op_name = "rowcopy"
    signature = "mrc"
    batched_semantic = "copy"

    def run_trial(self, bench, task, point, trial):
        module = bench.module
        columns = module.config.columns_per_row
        subarray_rows = module.profile.subarray_rows
        device_bank = module.bank(task.bank)
        group = task.group
        source_global = group.global_pair(subarray_rows)[0]
        source_bits = point.pattern.row_bits(
            columns, "mrc-src", task.serial, task.bank, trial
        )
        destination_bits = point.pattern.inverse_bits(source_bits)
        for global_row in group.global_rows(subarray_rows):
            device_bank.write_row(
                global_row,
                source_bits if global_row == source_global else destination_bits,
            )
        result = execute_multi_row_copy(
            bench, task.bank, group, t1_ns=point.t1_ns, t2_ns=point.t2_ns
        )
        return np.concatenate(
            [np.asarray(row, dtype=bool) for row in result.correctness]
        )

    def run_batch(self, bench, task, point):
        module = bench.module
        reliability = module.reliability
        device_bank = module.bank(task.bank)
        columns = module.config.columns_per_row
        group = task.group
        destinations = [
            local_row for local_row in sorted(group.rows)
            if local_row != group.row_first
        ]
        temp_c = device_bank.temperature_c
        vpp = device_bank.vpp
        matrix = np.empty((task.trials, task.cells), dtype=bool)
        for local, trial in enumerate(
            range(task.trial_offset, task.trial_offset + task.trials)
        ):
            context = measurement_context(self, point, task, trial)
            source_bits = point.pattern.row_bits(
                columns, "mrc-src", task.serial, task.bank, trial
            )
            z = reliability.multi_row_copy_z(
                n_destinations=max(1, group.size - 1),
                t1_ns=point.t1_ns,
                t2_ns=point.t2_ns,
                source_ones_fraction=float(np.mean(source_bits)),
                temp_c=temp_c,
                vpp=vpp,
            )
            stable = reliability.stable_mask(
                z, task.bank, task.subarray, group.rows,
                OperationClass.MULTI_ROW_COPY, columns,
            )
            for position, local_row in enumerate(destinations):
                noise = reliability.context_noise(
                    context, task.bank, task.subarray, columns,
                    f"mrc-{local_row}",
                )
                matrix[local, position * columns:(position + 1) * columns] = (
                    stable | (noise == source_bits)
                )
        return matrix

    def run_slice(self, bench, tasks, point):
        module = bench.module
        reliability = module.reliability
        columns = module.config.columns_per_row
        source_ids = []
        noise_entries = []
        destination_lists = []
        for task in tasks:
            destinations = [
                local_row for local_row in sorted(task.group.rows)
                if local_row != task.group.row_first
            ]
            destination_lists.append(destinations)
            for trial in range(
                task.trial_offset, task.trial_offset + task.trials
            ):
                source_ids.append(("mrc-src", task.serial, task.bank, trial))
                context = measurement_context(self, point, task, trial)
                for local_row in destinations:
                    noise_entries.append(
                        (task.bank, task.subarray, f"mrc-{local_row}", context)
                    )
        sources = point.pattern.row_bits_block(columns, source_ids)
        noise = reliability.context_noise_block(noise_entries, columns)
        planes: List[np.ndarray] = []
        source_offset = noise_offset = 0
        for task, destinations in zip(tasks, destination_lists):
            device_bank = module.bank(task.bank)
            group = task.group
            temp_c = device_bank.temperature_c
            vpp = device_bank.vpp
            trials = task.trials
            task_sources = sources[source_offset:source_offset + trials]
            z_values = np.array([
                reliability.multi_row_copy_z(
                    n_destinations=max(1, group.size - 1),
                    t1_ns=point.t1_ns,
                    t2_ns=point.t2_ns,
                    source_ones_fraction=float(np.mean(task_sources[trial])),
                    temp_c=temp_c,
                    vpp=vpp,
                )
                for trial in range(trials)
            ])
            stable = reliability.stable_mask_block(
                z_values, task.bank, task.subarray, [group.rows] * trials,
                OperationClass.MULTI_ROW_COPY, columns,
            )
            count = trials * len(destinations)
            task_noise = noise[noise_offset:noise_offset + count].reshape(
                trials, len(destinations), columns
            )
            matrix = np.logical_or(
                task_noise == task_sources[:, None, :], stable[:, None, :]
            )
            planes.append(
                bitplane.pack_matrix(matrix.reshape(trials, task.cells))
            )
            source_offset += trials
            noise_offset += count
        return planes


class DisturbanceKernel(TrialKernel):
    """Limitation-3 audit: hammer a group, watch the bystanders.

    The vectorized path leans on a structural property of the behavior
    model -- APA resolution only ever writes simultaneously *asserted*
    rows, so bystanders cannot flip -- and proves it per task with a
    real read-back audit in :meth:`finalize` (the audit is ANDed into
    the accumulated mask by every executor).
    """

    op_name = "disturbance"
    signature = "disturbance"
    batched_semantic = None

    def __init__(self, pattern: DataPattern, bystanders: Tuple[int, ...]):
        self.pattern = pattern
        self.bystanders = tuple(bystanders)

    @property
    def cache_token(self) -> str:
        # The signature alone misses the constructor state the audit
        # depends on (which bystanders, what reference data).
        bystanders = ",".join(str(row) for row in self.bystanders)
        return f"{self.signature}:{self.pattern.kind}:{bystanders}"

    def _reference(self, columns: int, row: int) -> np.ndarray:
        return self.pattern.row_bits(columns, "disturb-bystander", row)

    def setup(self, bench, task, point):
        device_bank = bench.module.bank(task.bank)
        columns = bench.module.config.columns_per_row
        for row in self.bystanders:
            device_bank.write_row(row, self._reference(columns, row))

    def run_trial(self, bench, task, point, trial):
        module = bench.module
        device_bank = module.bank(task.bank)
        columns = module.config.columns_per_row
        subarray_rows = module.profile.subarray_rows
        for global_row in task.group.global_rows(subarray_rows):
            device_bank.write_row(
                global_row,
                self.pattern.row_bits(
                    columns, "disturb-active", global_row, trial
                ),
            )
        rf_global, rs_global = task.group.global_pair(subarray_rows)
        bench.run(
            apa_program(task.bank, rf_global, rs_global, point.t1_ns, point.t2_ns)
        )
        # Rotating per-trial probe; finalize() audits every bystander.
        correct = np.ones(task.cells, dtype=bool)
        probe_index = trial % len(self.bystanders)
        probe = self.bystanders[probe_index]
        segment = device_bank.read_row(probe) == self._reference(columns, probe)
        correct[probe_index * columns:(probe_index + 1) * columns] = segment
        return correct

    def run_batch(self, bench, task, point):
        return np.ones((task.trials, task.cells), dtype=bool)

    def finalize(self, bench, task, point):
        device_bank = bench.module.bank(task.bank)
        columns = bench.module.config.columns_per_row
        return np.concatenate([
            device_bank.read_row(row) == self._reference(columns, row)
            for row in self.bystanders
        ])
