"""Packed uint64 bit-plane layout for trial reduction.

The fused execution path keeps each trial's per-cell correctness as a
packed bit-plane: one uint64 word covers 64 cells, so the
trials-to-mask reduction is a bitwise AND over words (64 cells per
instruction) and every success rate is a popcount.  Rates computed
this way are *exactly* ``np.mean(bool_mask)``: both are an integer
count of ones divided by the cell count in float64, so the packed
reduce preserves the executors' bit-identity contract down to the
float.

Cells pack most-significant-bit-first within bytes (``np.packbits``
order); rows whose cell count is not a multiple of 64 are zero-padded,
which is invisible to both the AND-reduction (padding stays zero) and
the popcount (zeros count nothing).
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64

_BITWISE_COUNT = getattr(np, "bitwise_count", None)


def words_for(cells: int) -> int:
    """uint64 words needed to hold ``cells`` packed bits."""
    return (cells + WORD_BITS - 1) // WORD_BITS


def pack_matrix(matrix: np.ndarray) -> np.ndarray:
    """Pack a (..., cells) bool/0-1 matrix into (..., words) uint64."""
    bits = np.asarray(matrix, dtype=np.uint8)
    packed_bytes = np.packbits(bits, axis=-1)
    pad = (-packed_bytes.shape[-1]) % 8
    if pad:
        packed_bytes = np.concatenate(
            [
                packed_bytes,
                np.zeros(packed_bytes.shape[:-1] + (pad,), dtype=np.uint8),
            ],
            axis=-1,
        )
    return packed_bytes.view(np.uint64)


def unpack_mask(words: np.ndarray, cells: int) -> np.ndarray:
    """Unpack one (words,) uint64 row back to a (cells,) bool mask."""
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return np.unpackbits(as_bytes)[:cells].astype(bool)


def popcount(words: np.ndarray) -> int:
    """Total set bits in a packed array."""
    if _BITWISE_COUNT is not None:
        return int(_BITWISE_COUNT(words).sum())
    # Fallback for numpy < 2.0: count via byte-table unpacking.
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return int(np.unpackbits(as_bytes).sum())


def rate(words: np.ndarray, cells: int) -> float:
    """Fraction of set bits among ``cells`` -- exactly np.mean(mask)."""
    return popcount(words) / cells if cells else 0.0


def and_accumulate(planes: np.ndarray) -> np.ndarray:
    """Running AND over the trial axis of a (trials, words) plane stack."""
    return np.bitwise_and.accumulate(planes, axis=0)
