"""Pipelined cross-experiment scheduling.

A figure experiment is a loop over operating points: build a
:class:`~repro.engine.plan.TrialPlan` per point, run it, reduce its
outcomes (usually to a
:class:`~repro.characterization.stats.DistributionSummary`), and
assemble the reduced values into the figure's nested result dict.
:class:`ExperimentProgram` captures that shape declaratively -- an
ordered tuple of :class:`PlanStep` (plan + per-plan reduction) plus
one assembly function -- so the same program can run two ways:

- :meth:`ExperimentProgram.run` executes the steps strictly in order
  on any executor: the sequential reference, and exactly what the
  legacy ``figureN_*`` functions now delegate to;
- :class:`CampaignScheduler` flattens *many* programs into a single
  plan stream and hands it to a pipelining executor's ``run_many``,
  which keeps one shared persistent worker pool saturated across
  experiment boundaries instead of draining it at each figure's edge.

Determinism is preserved by construction.  Plan building is pure
(group sampling and noise are serial-keyed, never history-keyed), the
engine's executors are bit-identical regardless of how plans are
batched or interleaved, and reduction/assembly run on buffered results
in original program/step order -- so a pipelined campaign commits
artifacts with exactly the bytes the sequential run would have.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from .executors import ExecutorBase, run_plan
from .plan import PlanResult, TrialPlan


@dataclass(frozen=True)
class PlanStep:
    """One plan of an experiment, with its per-plan reduction."""

    plan: TrialPlan
    reduce: Callable[[PlanResult], Any]
    """Turns the plan's result into this step's value (e.g. a
    distribution summary of its rates)."""


@dataclass(frozen=True)
class ExperimentProgram:
    """A whole figure experiment as data: ordered steps + assembly."""

    name: str
    steps: Tuple[PlanStep, ...]
    assemble: Callable[[List[Any]], Any]
    """Builds the figure's result structure from the step values, in
    step order."""

    def run(self, executor: Optional[ExecutorBase] = None) -> Any:
        """Sequential reference execution (what the figure functions do)."""
        values = [step.reduce(run_plan(step.plan, executor)) for step in self.steps]
        return self.assemble(values)


class CampaignScheduler:
    """Runs many programs as one pipelined plan stream.

    All programs' plans are flattened up front and submitted through
    the executor's :meth:`~repro.engine.executors.ExecutorBase.run_many`,
    so the shared worker pool never drains between experiments.
    Results are buffered and reduced/assembled strictly in program and
    step order; a plan failure surfaces as that *program's* error
    without disturbing its neighbours.  Pipeline throughput counters
    (``pipelined_plans``, ``pipeline_wall_s``, ``pipeline_busy_s``)
    accumulate on the executor's metrics.
    """

    def __init__(self, executor: ExecutorBase) -> None:
        if not getattr(executor, "supports_pipelining", False):
            raise ExperimentError(
                f"executor {executor.name!r} does not support pipelined "
                "scheduling; use a process-pool executor"
            )
        self.executor = executor

    def run(
        self,
        programs: Sequence[ExperimentProgram],
        on_program: Optional[
            Callable[[str, Tuple[str, Any]], None]
        ] = None,
    ) -> Dict[str, Tuple[str, Any]]:
        """Execute every program; ``{name: ("ok", data) | ("error", exc)}``.

        With ``on_program`` set, each program's outcome is reduced,
        assembled, and streamed to the callback the moment its last
        plan settles -- strictly in program order, while later
        programs' plans are still executing.  This is the incremental-
        commit hook: the campaign persists each experiment as it
        finishes, so a crash loses at most the in-flight program.
        Exceptions the callback raises abort the stream and propagate
        (the executor abandons its in-flight shards on the way out).
        """
        started = time.perf_counter()
        plans: List[TrialPlan] = []
        spans: List[Tuple[ExperimentProgram, int, int]] = []
        for program in programs:
            spans.append((program, len(plans), len(program.steps)))
            plans.extend(step.plan for step in program.steps)
        results: List[Any] = [None] * len(plans)
        outcomes: Dict[str, Tuple[str, Any]] = {}
        next_span = [0]

        def finish_span(span_index: int) -> None:
            program, start, count = spans[span_index]
            chunk = results[start:start + count]
            error = next(
                (item for item in chunk if isinstance(item, Exception)), None
            )
            if error is not None:
                outcome: Tuple[str, Any] = ("error", error)
            else:
                try:
                    values = [
                        step.reduce(result)
                        for step, result in zip(program.steps, chunk)
                    ]
                    outcome = ("ok", program.assemble(values))
                except Exception as exc:  # noqa: BLE001 -- isolate programs
                    outcome = ("error", exc)
            outcomes[program.name] = outcome
            if on_program is not None:
                on_program(program.name, outcome)

        def plan_settled(index: int, result: Any) -> None:
            results[index] = result
            # run_many streams strictly in plan order, so every span
            # ending at or before this plan is fully buffered.
            while next_span[0] < len(spans):
                _, start, count = spans[next_span[0]]
                if start + count > index + 1:
                    break
                finish_span(next_span[0])
                next_span[0] += 1

        raw = (
            self.executor.run_many(plans, on_result=plan_settled)
            if plans
            else []
        )
        metrics = self.executor.metrics
        metrics.pipelined_plans += len(plans)
        metrics.pipeline_wall_s += time.perf_counter() - started
        metrics.pipeline_busy_s += sum(
            result.metrics.busy_s
            for result in raw
            if isinstance(result, PlanResult)
        )
        # Sweep any span the stream did not cover: zero-step programs,
        # and every span when the executor ignored the callback.
        for index, result in enumerate(raw):
            results[index] = result
        while next_span[0] < len(spans):
            finish_span(next_span[0])
            next_span[0] += 1
        return outcomes
