"""Pluggable executors for :class:`~repro.engine.plan.TrialPlan`.

Three strategies, one contract: for a given plan and simulation seed,
every executor produces bit-identical task outcomes (and therefore
bit-identical :class:`~repro.characterization.stats.DistributionSummary`
results).  The serial executor is the reference; the process-pool
executor shards tasks across benches and rebuilds each bench from its
catalog spec in the worker; the batched executor pushes whole trial
batches down into the behavior model as vectorized numpy, gated by a
real APA probe per task so the vectorized math only runs in the regime
it reproduces.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import rng
from ..bender.program import apa_program
from ..bender.testbench import TestBench
from ..chaos import ChaosConfig, ChaosHarness, FaultKind
from ..errors import ExperimentError, TransientInfrastructureError
from .kernels import TrialKernel, measurement_context
from .metrics import EngineMetrics
from .plan import PlanResult, TaskOutcome, TrialPlan, TrialTask

if TYPE_CHECKING:  # characterization imports the engine; avoid the cycle
    from ..characterization.experiment import OperatingPoint


def run_task_serial(
    kernel: TrialKernel,
    point: OperatingPoint,
    checkpoints: Sequence[int],
    bench: TestBench,
    task: TrialTask,
) -> TaskOutcome:
    """Reference execution of one task: trial loop through the bench.

    Every trial runs with the bank's noise context pinned to the
    measurement identity, so the model's coin flips do not depend on
    how many operations preceded this trial.
    """
    device_bank = bench.module.bank(task.bank)
    kernel.setup(bench, task, point)
    checkpoint_set = set(checkpoints)
    snapshots: List[Tuple[int, float]] = []
    mask = np.ones(task.cells, dtype=bool)
    for trial in range(task.trials):
        with device_bank.noise_context(
            *measurement_context(kernel, point, task, trial)
        ):
            correct = np.asarray(
                kernel.run_trial(bench, task, point, trial), dtype=bool
            )
        if correct.shape != (task.cells,):
            raise ExperimentError(
                f"kernel {kernel.op_name!r} returned shape {correct.shape}, "
                f"expected ({task.cells},)"
            )
        mask &= correct
        if (trial + 1) in checkpoint_set:
            snapshots.append((trial + 1, float(np.mean(mask))))
    audit = kernel.finalize(bench, task, point)
    if audit is not None:
        mask &= np.asarray(audit, dtype=bool)
    return TaskOutcome(
        index=task.index,
        rate=float(np.mean(mask)),
        trials=task.trials,
        cells=task.cells,
        mask=mask,
        checkpoint_rates=tuple(snapshots),
    )


class ExecutorBase:
    """Shared surface: ``run(plan) -> PlanResult`` plus cumulative metrics."""

    name = "base"

    def __init__(self) -> None:
        self.metrics = EngineMetrics(executor=self.name)

    def run(self, plan: TrialPlan) -> PlanResult:
        raise NotImplementedError

    def _apply_environment(self, plan: TrialPlan, delta: EngineMetrics) -> None:
        if not plan.apply_environment:
            return
        started = time.perf_counter()
        for bench in plan.benches:
            bench.set_temperature(plan.point.temperature_c)
            bench.set_vpp(plan.point.vpp)
        delta.environment_s += time.perf_counter() - started

    def _finish(self, plan: TrialPlan, delta: EngineMetrics,
                outcomes: List[TaskOutcome], started: float) -> PlanResult:
        reduce_started = time.perf_counter()
        outcomes.sort(key=lambda outcome: outcome.index)
        delta.plans += 1
        delta.reduce_s += time.perf_counter() - reduce_started
        delta.wall_s += time.perf_counter() - started
        self.metrics.merge(delta)
        return PlanResult(plan_name=plan.name, outcomes=outcomes, metrics=delta)


class SerialExecutor(ExecutorBase):
    """Reference executor: every trial through the full bench, in order."""

    name = "serial"

    def run(self, plan: TrialPlan) -> PlanResult:
        started = time.perf_counter()
        delta = EngineMetrics(executor=self.name, workers=1)
        self._apply_environment(plan, delta)
        execute_started = time.perf_counter()
        outcomes: List[TaskOutcome] = []
        for task in plan.tasks:
            bench = plan.benches[task.bench_index]
            outcomes.append(
                run_task_serial(plan.kernel, plan.point, plan.checkpoints, bench, task)
            )
            delta.tasks += 1
            delta.trials += task.trials
            delta.cells += task.cells
            delta.apa_programs += task.trials
        delta.execute_s += time.perf_counter() - execute_started
        delta.busy_s = delta.execute_s
        return self._finish(plan, delta, outcomes, started)


def _run_shard(
    payload: Dict[str, Any],
) -> Tuple[List[TaskOutcome], float, Dict[str, int], Optional[Exception]]:
    """Worker entry point: rebuild the bench, run its tasks serially.

    Module-level so it pickles under the default process start method.
    Returns the outcomes plus the worker's busy time, the per-kind
    chaos faults its local harness injected, and any *transient* error
    the shard died of.  Transient errors travel back as data rather
    than through ``future.result()`` so the parent can credit the
    injected faults to its ``max_faults_per_kind`` ledger before
    re-raising -- a shard that faulted and raised would otherwise
    never be accounted, and a rate-keyed chaotic campaign would retry
    against an undiminished fault budget forever.
    """
    if payload.get("kill_worker"):
        # Chaos proof load: this shard's worker dies abruptly, the way
        # an OOM kill or segfault would -- no exception, no cleanup.
        os._exit(86)
    started = time.perf_counter()
    bench = TestBench.for_spec(
        payload["spec"], payload["instance"], config=payload["config"]
    )
    harness: Optional[ChaosHarness] = None
    if payload["chaos"] is not None:
        harness = ChaosHarness(payload["chaos"])
        harness.install(bench)
    outcomes: List[TaskOutcome] = []
    error: Optional[Exception] = None
    try:
        point: OperatingPoint = payload["point"]
        if payload["apply_environment"]:
            bench.set_temperature(point.temperature_c)
            bench.set_vpp(point.vpp)
        for task in payload["tasks"]:
            outcomes.append(
                run_task_serial(
                    payload["kernel"], point, payload["checkpoints"],
                    bench, task,
                )
            )
    except TransientInfrastructureError as exc:
        error = exc
    finally:
        injected = (
            {k: v for k, v in harness.engine.stats.injected.items() if v}
            if harness
            else {}
        )
        if harness is not None:
            harness.uninstall()
    return outcomes, time.perf_counter() - started, injected, error


class ProcessPoolExecutor(ExecutorBase):
    """Shards a plan's tasks across benches and runs shards in processes.

    Workers rebuild each bench from its catalog spec (``module.spec``),
    which is what makes the shards picklable; benches built by hand
    around a bare :class:`~repro.dram.module.Module` cannot be shipped
    and raise :class:`~repro.errors.ExperimentError`.  When ``chaos``
    is set, each worker installs its own fault harness so fault
    injection composes with sharded execution; worker-side injection
    counts surface in ``metrics.chaos_faults_injected``, and the
    parent keeps a per-kind ledger of them so ``max_faults_per_kind``
    holds across shard re-executions (see :meth:`_worker_chaos`).

    The pool is *supervised*: a worker that dies mid-shard (the pool
    surfaces it as ``BrokenProcessPool``) does not sink the plan.  The
    dead worker's unfinished shards are re-issued onto a rebuilt pool
    -- safe because every trial's noise is keyed by measurement
    context, never execution history, so re-running a shard lands on
    identical bits -- and after ``max_pool_restarts`` rebuilds the
    survivors run serially in-process.  With ``shard_deadline_s`` set,
    a straggler detector speculatively re-issues any shard that is
    overdue (once per shard); the first copy to finish wins, and
    duplicates are discarded, which the same determinism makes
    harmless.
    """

    name = "parallel"

    def __init__(
        self,
        jobs: Optional[int] = None,
        chaos: Optional[ChaosConfig] = None,
        shard_deadline_s: Optional[float] = None,
        max_pool_restarts: int = 2,
    ) -> None:
        super().__init__()
        if shard_deadline_s is not None and shard_deadline_s < 0:
            raise ExperimentError("shard_deadline_s must be non-negative")
        if max_pool_restarts < 0:
            raise ExperimentError("max_pool_restarts must be non-negative")
        self.jobs = jobs
        self.chaos = chaos
        self.shard_deadline_s = shard_deadline_s
        self.max_pool_restarts = max_pool_restarts
        self._kills_done: set = set()
        """Module serials whose one-shot chaos worker-kill already fired."""
        self._faults_spent: Dict[str, int] = {}
        """Worker-injected faults per kind, accumulated across every
        plan this executor has run -- the parent-side ledger that makes
        ``max_faults_per_kind`` hold across shard re-executions."""
        self._chaos_epoch = 0
        """Plan-run counter salting the worker chaos schedule, so a
        retried shard does not deterministically replay the exact
        fault sequence that just failed it."""

    def run(self, plan: TrialPlan) -> PlanResult:
        started = time.perf_counter()
        self._chaos_epoch += 1
        delta = EngineMetrics(executor=self.name)
        # Drive the local benches too, so the rig observable to the
        # caller ends in the same state a serial run would leave.
        self._apply_environment(plan, delta)
        shards: Dict[int, List[TrialTask]] = {}
        for task in plan.tasks:
            shards.setdefault(task.bench_index, []).append(task)
        payloads: List[Dict[str, Any]] = []
        for bench_index in sorted(shards):
            bench = plan.benches[bench_index]
            module = bench.module
            if module.spec is None:
                raise ExperimentError(
                    "parallel executor requires catalog-built benches; "
                    f"module {module.serial!r} has no spec to rebuild from"
                )
            serial = module.serial
            instance = (
                int(serial.rsplit("#", 1)[1]) if "#" in serial else 0
            )
            kill_worker = (
                self.chaos is not None
                and serial in self.chaos.worker_kill_serials
                and serial not in self._kills_done
            )
            if kill_worker:
                self._kills_done.add(serial)
            payloads.append(
                {
                    "spec": module.spec,
                    "instance": instance,
                    "config": module.config,
                    "kernel": plan.kernel,
                    "point": plan.point,
                    "checkpoints": tuple(plan.checkpoints),
                    "apply_environment": plan.apply_environment,
                    "tasks": shards[bench_index],
                    "chaos": self._worker_chaos(serial),
                    "kill_worker": kill_worker,
                }
            )
        execute_started = time.perf_counter()
        outcomes: List[TaskOutcome] = []
        if payloads:
            for shard_outcomes, busy_s in self._execute_shards(
                payloads, delta
            ):
                outcomes.extend(shard_outcomes)
                delta.busy_s += busy_s
        for task in plan.tasks:
            delta.tasks += 1
            delta.trials += task.trials
            delta.cells += task.cells
            delta.apa_programs += task.trials
        delta.execute_s += time.perf_counter() - execute_started
        return self._finish(plan, delta, outcomes, started)

    _RATE_FIELDS = {
        FaultKind.PROGRAM_DROP: "program_drop_rate",
        FaultKind.READBACK_CORRUPTION: "readback_corruption_rate",
        FaultKind.THERMAL_EXCURSION: "thermal_excursion_rate",
        FaultKind.VPP_BROWNOUT: "vpp_brownout_rate",
    }

    def _worker_chaos(self, serial: str) -> Optional[ChaosConfig]:
        """The chaos profile one shard's worker should install.

        Worker harnesses are rebuilt per shard, so two properties the
        serial harness gets for free must be restored here:

        - **caps persist**: a fault kind whose accumulated worker-side
          injections have reached ``max_faults_per_kind`` is shipped
          with rate 0, so a retried plan eventually runs fault-free
          and a chaotic campaign converges;
        - **schedules advance**: the seed is salted with a per-plan
          epoch (and the shard's serial), so a retried shard does not
          deterministically replay the exact fault sequence that just
          failed it.

        Target-keyed faults (bench failures, worker kills) are
        unaffected: they ignore the seed and are capped elsewhere.
        """
        chaos = self.chaos
        if chaos is None:
            return None
        rated = [
            field
            for field in self._RATE_FIELDS.values()
            if getattr(chaos, field) > 0.0
        ]
        if not rated:
            return chaos
        overrides: Dict[str, Any] = {}
        cap = chaos.max_faults_per_kind
        if cap is not None:
            for kind, field in self._RATE_FIELDS.items():
                if (
                    field in rated
                    and self._faults_spent.get(kind.value, 0) >= cap
                ):
                    overrides[field] = 0.0
        salt = rng.generator(
            "worker-chaos", chaos.seed, self._chaos_epoch, serial
        )
        overrides["seed"] = int(salt.integers(0, 2**31))
        return replace(chaos, **overrides)

    def _harvest(
        self,
        shard: Tuple[
            List[TaskOutcome], float, Dict[str, int], Optional[Exception]
        ],
        delta: EngineMetrics,
    ) -> Tuple[List[TaskOutcome], float]:
        """Account one finished shard, re-raising its transient error.

        The fault ledger is credited *before* the raise so that a
        retried plan runs against a diminished budget -- the property
        that makes chaotic parallel campaigns converge.
        """
        outcomes, busy_s, injected, error = shard
        delta.chaos_faults_injected += sum(injected.values())
        for kind, count in injected.items():
            self._faults_spent[kind] = self._faults_spent.get(kind, 0) + count
        if error is not None:
            raise error
        return outcomes, busy_s

    def _execute_shards(
        self, payloads: List[Dict[str, Any]], delta: EngineMetrics
    ) -> List[Tuple[List[TaskOutcome], float]]:
        """Run every shard to completion, surviving worker death."""
        workers = self.jobs or (os.cpu_count() or 1)
        workers = max(1, min(workers, len(payloads)))
        delta.workers = workers
        pending: Dict[int, Dict[str, Any]] = dict(enumerate(payloads))
        results: Dict[int, Tuple[List[TaskOutcome], float]] = {}
        restarts = 0
        while pending:
            if restarts > self.max_pool_restarts:
                # Out of pool rebuilds: finish the survivors serially
                # in-process (the kill flag must not reach this path,
                # or os._exit would take down the campaign itself).
                for index in sorted(pending):
                    results[index] = self._harvest(
                        _run_shard(dict(pending[index], kill_worker=False)),
                        delta,
                    )
                pending.clear()
                break
            broke = False
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=max(1, min(workers, len(pending)))
            )
            try:
                future_shard: Dict[concurrent.futures.Future, int] = {}
                for index in sorted(pending):
                    future_shard[pool.submit(_run_shard, pending[index])] = index
                active = set(future_shard)
                reissued: set = set()
                while active:
                    deadline = self.shard_deadline_s
                    if deadline is not None and all(
                        future_shard[f] in reissued for f in active
                    ):
                        deadline = None  # every shard already duplicated
                    done, _ = concurrent.futures.wait(
                        active,
                        timeout=deadline,
                        return_when=concurrent.futures.FIRST_COMPLETED,
                    )
                    if not done:
                        # Deadline elapsed with nothing finishing:
                        # speculatively re-issue overdue shards (once
                        # each).  First copy back wins; re-execution is
                        # bit-identical, so duplicates are discarded.
                        for future in list(active):
                            index = future_shard[future]
                            if index in reissued or index not in pending:
                                continue
                            reissued.add(index)
                            delta.stragglers_reissued += 1
                            duplicate = pool.submit(
                                _run_shard,
                                dict(pending[index], kill_worker=False),
                            )
                            future_shard[duplicate] = index
                            active.add(duplicate)
                        continue
                    shard_error: Optional[Exception] = None
                    for future in done:
                        active.discard(future)
                        index = future_shard[future]
                        if index not in pending:
                            continue  # duplicate of a finished shard
                        try:
                            results[index] = self._harvest(
                                future.result(), delta
                            )
                        except TransientInfrastructureError as exc:
                            # Keep harvesting (and crediting) the rest
                            # of this round before the error surfaces.
                            shard_error = shard_error or exc
                            continue
                        del pending[index]
                    if shard_error is not None:
                        raise shard_error
            except concurrent.futures.process.BrokenProcessPool:
                broke = True
            finally:
                pool.shutdown(wait=True, cancel_futures=True)
            if broke:
                restarts += 1
                delta.pool_restarts += 1
                delta.tasks_resharded += sum(
                    len(payload["tasks"]) for payload in pending.values()
                )
                # A chaos kill flag fires once: clear it before the
                # shard is re-issued, or the rebuilt pool dies too.
                for payload in pending.values():
                    payload["kill_worker"] = False
        return [results[index] for index in sorted(results)]


class BatchedExecutor(ExecutorBase):
    """Vectorizes whole tasks down into the behavior model.

    Per task it issues ONE real APA program through the bench (the
    probe -- also the point where chaos faults can fire) and checks the
    bank resolved it with the semantic the kernel's batched math
    models.  On a match the whole (trials x cells) matrix comes from
    one :meth:`~repro.engine.kernels.TrialKernel.run_batch` call; on a
    mismatch (wrong timing regime, blocked vendor) the task falls back
    to the per-trial reference path.  Both paths key their noise off
    the same measurement context, so results are bit-identical either
    way.
    """

    name = "batched"

    def run(self, plan: TrialPlan) -> PlanResult:
        started = time.perf_counter()
        delta = EngineMetrics(executor=self.name, workers=1)
        self._apply_environment(plan, delta)
        execute_started = time.perf_counter()
        outcomes: List[TaskOutcome] = []
        for task in plan.tasks:
            bench = plan.benches[task.bench_index]
            kernel = plan.kernel
            probe_started = time.perf_counter()
            kernel.setup(bench, task, plan.point)
            semantic = self._probe(bench, task, plan.point)
            delta.apa_programs += 1
            delta.add_stage("probe", time.perf_counter() - probe_started)
            if kernel.batched_semantic in (None, semantic):
                batch_started = time.perf_counter()
                outcomes.append(self._run_batched(kernel, plan, bench, task))
                delta.add_stage("batch", time.perf_counter() - batch_started)
            else:
                fallback_started = time.perf_counter()
                outcomes.append(
                    run_task_serial(
                        kernel, plan.point, plan.checkpoints, bench, task
                    )
                )
                delta.apa_programs += task.trials
                delta.add_stage(
                    "fallback", time.perf_counter() - fallback_started
                )
            delta.tasks += 1
            delta.trials += task.trials
            delta.cells += task.cells
        delta.execute_s += time.perf_counter() - execute_started
        delta.busy_s = delta.execute_s
        return self._finish(plan, delta, outcomes, started)

    def _probe(
        self, bench: TestBench, task: TrialTask, point: OperatingPoint
    ) -> str:
        subarray_rows = bench.module.profile.subarray_rows
        rf_global, rs_global = task.group.global_pair(subarray_rows)
        bench.run(
            apa_program(task.bank, rf_global, rs_global, point.t1_ns, point.t2_ns)
        )
        event = bench.module.bank(task.bank).last_event
        return event.semantic if event is not None else "none"

    def _run_batched(
        self,
        kernel: TrialKernel,
        plan: TrialPlan,
        bench: TestBench,
        task: TrialTask,
    ) -> TaskOutcome:
        matrix = np.asarray(
            kernel.run_batch(bench, task, plan.point), dtype=bool
        )
        if matrix.shape != (task.trials, task.cells):
            raise ExperimentError(
                f"kernel {kernel.op_name!r} batch returned shape "
                f"{matrix.shape}, expected ({task.trials}, {task.cells})"
            )
        running = np.logical_and.accumulate(matrix, axis=0)
        snapshots = tuple(
            (count, float(np.mean(running[count - 1])))
            for count in plan.checkpoints
            if 1 <= count <= task.trials
        )
        mask = running[-1].copy()
        audit = kernel.finalize(bench, task, plan.point)
        if audit is not None:
            mask &= np.asarray(audit, dtype=bool)
        return TaskOutcome(
            index=task.index,
            rate=float(np.mean(mask)),
            trials=task.trials,
            cells=task.cells,
            mask=mask,
            checkpoint_rates=snapshots,
        )


def make_executor(
    name: Optional[str],
    jobs: Optional[int] = None,
    chaos: Optional[ChaosConfig] = None,
    shard_deadline_s: Optional[float] = None,
    max_pool_restarts: int = 2,
) -> ExecutorBase:
    """Build an executor from a CLI-style name."""
    if name in (None, "serial"):
        return SerialExecutor()
    if name == "parallel":
        return ProcessPoolExecutor(
            jobs=jobs,
            chaos=chaos,
            shard_deadline_s=shard_deadline_s,
            max_pool_restarts=max_pool_restarts,
        )
    if name == "batched":
        return BatchedExecutor()
    raise ExperimentError(
        f"unknown executor {name!r}; choose serial, parallel, or batched"
    )


def run_plan(plan: TrialPlan, executor: Optional[ExecutorBase] = None) -> PlanResult:
    """Run a plan on the given executor (default: a fresh serial one)."""
    return (executor or SerialExecutor()).run(plan)
