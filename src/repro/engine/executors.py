"""Pluggable executors for :class:`~repro.engine.plan.TrialPlan`.

Three strategies, one contract: for a given plan and simulation seed,
every executor produces bit-identical task outcomes (and therefore
bit-identical :class:`~repro.characterization.stats.DistributionSummary`
results).  The serial executor is the reference; the process-pool
executor shards tasks across benches and rebuilds each bench from its
catalog spec in the worker; the batched executor pushes whole trial
batches down into the behavior model as vectorized numpy, gated by a
real APA probe per task so the vectorized math only runs in the regime
it reproduces.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import replace
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import rng
from ..bender.program import apa_program
from ..bender.testbench import TestBench
from ..chaos import ChaosConfig, ChaosHarness, FaultKind
from ..errors import ExperimentError, TransientInfrastructureError
from . import bitplane
from .cache import TrialCache
from .kernels import TrialKernel, measurement_context, point_token
from .metrics import EngineMetrics
from .plan import PlanResult, TaskOutcome, TrialPlan, TrialTask

if TYPE_CHECKING:  # characterization imports the engine; avoid the cycle
    from ..characterization.experiment import OperatingPoint


def run_task_serial(
    kernel: TrialKernel,
    point: OperatingPoint,
    checkpoints: Sequence[int],
    bench: TestBench,
    task: TrialTask,
) -> TaskOutcome:
    """Reference execution of one task: trial loop through the bench.

    Every trial runs with the bank's noise context pinned to the
    measurement identity, so the model's coin flips do not depend on
    how many operations preceded this trial.
    """
    device_bank = bench.module.bank(task.bank)
    kernel.setup(bench, task, point)
    checkpoint_set = set(checkpoints)
    snapshots: List[Tuple[int, float]] = []
    mask = np.ones(task.cells, dtype=bool)
    # The context tokens only vary in the trial index; build the
    # invariant prefix once instead of re-deriving the point token
    # (string formatting) every trial.
    context_prefix = (kernel.signature, point_token(point), task.group_token)
    for trial in range(task.trials):
        with device_bank.noise_context(*context_prefix, trial):
            correct = np.asarray(
                kernel.run_trial(bench, task, point, trial), dtype=bool
            )
        if correct.shape != (task.cells,):
            raise ExperimentError(
                f"kernel {kernel.op_name!r} returned shape {correct.shape}, "
                f"expected ({task.cells},)"
            )
        mask &= correct
        if (trial + 1) in checkpoint_set:
            snapshots.append((trial + 1, float(np.mean(mask))))
    audit = kernel.finalize(bench, task, point)
    if audit is not None:
        mask &= np.asarray(audit, dtype=bool)
    return TaskOutcome(
        index=task.index,
        rate=float(np.mean(mask)),
        trials=task.trials,
        cells=task.cells,
        mask=mask,
        checkpoint_rates=tuple(snapshots),
    )


def _probe_semantic(
    bench: TestBench, task: TrialTask, point: "OperatingPoint"
) -> str:
    """One real APA through the bench; the bank's resolved semantic."""
    subarray_rows = bench.module.profile.subarray_rows
    rf_global, rs_global = task.group.global_pair(subarray_rows)
    bench.run(
        apa_program(task.bank, rf_global, rs_global, point.t1_ns, point.t2_ns)
    )
    event = bench.module.bank(task.bank).last_event
    return event.semantic if event is not None else "none"


def _outcome_from_planes(
    kernel: TrialKernel,
    point: "OperatingPoint",
    checkpoints: Sequence[int],
    bench: TestBench,
    task: TrialTask,
    planes: np.ndarray,
) -> TaskOutcome:
    """Reduce one task's packed trial planes to a TaskOutcome.

    The AND-over-trials reduction and every rate stay in the packed
    domain (popcount / cells == np.mean of the bool mask, exactly), so
    the outcome is bit-identical to the serial reference.
    """
    expected_shape = (task.trials, bitplane.words_for(task.cells))
    if planes.shape != expected_shape:
        raise ExperimentError(
            f"kernel {kernel.op_name!r} slice returned shape {planes.shape}, "
            f"expected {expected_shape}"
        )
    running = bitplane.and_accumulate(planes)
    snapshots = tuple(
        (count, bitplane.rate(running[count - 1], task.cells))
        for count in checkpoints
        if 1 <= count <= task.trials
    )
    mask_words = running[-1].copy()
    audit = kernel.finalize(bench, task, point)
    if audit is not None:
        mask_words &= bitplane.pack_matrix(np.asarray(audit, dtype=bool))
    return TaskOutcome(
        index=task.index,
        rate=bitplane.rate(mask_words, task.cells),
        trials=task.trials,
        cells=task.cells,
        mask=bitplane.unpack_mask(mask_words, task.cells),
        checkpoint_rates=snapshots,
    )


def run_tasks_fused(
    kernel: TrialKernel,
    point: "OperatingPoint",
    checkpoints: Sequence[int],
    bench: TestBench,
    tasks: Sequence[TrialTask],
    delta: EngineMetrics,
) -> List[TaskOutcome]:
    """Fused execution of one bench's tasks.

    Probes each task with one real APA program, evaluates every
    probe-passing task in a single :meth:`TrialKernel.run_slice` call
    (block RNG + packed bit-plane reduction), and falls back to the
    per-trial serial reference for any task whose probe resolved a
    different semantic.  ``delta`` receives probe/fuse/fallback stage
    timings and APA program counts.
    """
    outcomes: List[TaskOutcome] = []
    sliceable: List[TrialTask] = []
    for task in tasks:
        probe_started = time.perf_counter()
        kernel.setup(bench, task, point)
        semantic = _probe_semantic(bench, task, point)
        delta.apa_programs += 1
        delta.add_stage("probe", time.perf_counter() - probe_started)
        if kernel.batched_semantic in (None, semantic):
            sliceable.append(task)
        else:
            fallback_started = time.perf_counter()
            outcomes.append(
                run_task_serial(kernel, point, checkpoints, bench, task)
            )
            delta.apa_programs += task.trials
            delta.add_stage("fallback", time.perf_counter() - fallback_started)
    if sliceable:
        fuse_started = time.perf_counter()
        planes_list = kernel.run_slice(bench, sliceable, point)
        if len(planes_list) != len(sliceable):
            raise ExperimentError(
                f"kernel {kernel.op_name!r} slice returned "
                f"{len(planes_list)} plane stacks for {len(sliceable)} tasks"
            )
        for task, planes in zip(sliceable, planes_list):
            outcomes.append(
                _outcome_from_planes(
                    kernel, point, checkpoints, bench, task, planes
                )
            )
        delta.add_stage("fuse", time.perf_counter() - fuse_started)
    return outcomes


_CACHE_COUNTER_FIELDS = (
    "cache_hits",
    "cache_misses",
    "cache_bytes_read",
    "cache_bytes_written",
)


class ExecutorBase:
    """Shared surface: ``run(plan) -> PlanResult`` plus cumulative metrics.

    With a :class:`~repro.engine.cache.TrialCache` attached, ``run``
    becomes a read-through wrapper: tasks whose outcome is already
    cached are served from disk, the remainder run as a sub-plan on
    the concrete executor (``_run``), and fresh outcomes are stored
    back under the executor's name as their origin.  Because every
    executor is bit-identical, a cached outcome is interchangeable
    with a recomputed one -- except for audits, which pass a cache
    with ``require_origin`` set so they never certify an executor
    against its own stored output.
    """

    name = "base"

    def __init__(self, cache: Optional[TrialCache] = None) -> None:
        self.metrics = EngineMetrics(executor=self.name)
        self.cache = cache

    def run(self, plan: TrialPlan) -> PlanResult:
        if self.cache is None:
            return self._run(plan)
        return self._run_cached(plan)

    def _run(self, plan: TrialPlan) -> PlanResult:
        raise NotImplementedError

    def _run_cached(self, plan: TrialPlan) -> PlanResult:
        cache = self.cache
        assert cache is not None
        started = time.perf_counter()
        before = cache.counters()
        ptoken = point_token(plan.point)
        checkpoints = tuple(plan.checkpoints)
        keys: Dict[int, str] = {}
        served: List[TaskOutcome] = []
        missing: List[TrialTask] = []
        for task in plan.tasks:
            config = plan.benches[task.bench_index].module.config
            key = cache.key_for(config, plan.kernel, ptoken, task, checkpoints)
            keys[task.index] = key
            outcome = cache.load(key, task)
            if outcome is None:
                missing.append(task)
            else:
                served.append(outcome)
        if missing:
            sub_result = self._run(replace(plan, tasks=missing))
            for outcome in sub_result.outcomes:
                cache.store(keys[outcome.index], outcome, origin=self.name)
            delta = sub_result.metrics
            outcomes = sorted(
                served + list(sub_result.outcomes),
                key=lambda outcome: outcome.index,
            )
        else:
            # Every task served from cache: the plan still counts, but
            # no tasks/trials were *executed* -- the hit counters tell
            # that story.
            delta = EngineMetrics(executor=self.name, workers=1)
            delta.plans += 1
            delta.wall_s += time.perf_counter() - started
            self.metrics.merge(delta)
            outcomes = sorted(served, key=lambda outcome: outcome.index)
        # Attribute this plan's cache activity to both the returned
        # delta and the cumulative metrics (the sub-plan's delta was
        # already merged by _finish, so mutate both explicitly).
        after = cache.counters()
        for field in _CACHE_COUNTER_FIELDS:
            gained = after[field] - before[field]
            setattr(delta, field, getattr(delta, field) + gained)
            setattr(
                self.metrics, field, getattr(self.metrics, field) + gained
            )
        return PlanResult(plan_name=plan.name, outcomes=outcomes, metrics=delta)

    def _apply_environment(self, plan: TrialPlan, delta: EngineMetrics) -> None:
        if not plan.apply_environment:
            return
        started = time.perf_counter()
        for bench in plan.benches:
            bench.set_temperature(plan.point.temperature_c)
            bench.set_vpp(plan.point.vpp)
        delta.environment_s += time.perf_counter() - started

    def _finish(self, plan: TrialPlan, delta: EngineMetrics,
                outcomes: List[TaskOutcome], started: float) -> PlanResult:
        reduce_started = time.perf_counter()
        outcomes.sort(key=lambda outcome: outcome.index)
        delta.plans += 1
        delta.reduce_s += time.perf_counter() - reduce_started
        delta.wall_s += time.perf_counter() - started
        self.metrics.merge(delta)
        return PlanResult(plan_name=plan.name, outcomes=outcomes, metrics=delta)


class SerialExecutor(ExecutorBase):
    """Reference executor: every trial through the full bench, in order."""

    name = "serial"

    def _run(self, plan: TrialPlan) -> PlanResult:
        started = time.perf_counter()
        delta = EngineMetrics(executor=self.name, workers=1)
        self._apply_environment(plan, delta)
        execute_started = time.perf_counter()
        outcomes: List[TaskOutcome] = []
        for task in plan.tasks:
            bench = plan.benches[task.bench_index]
            outcomes.append(
                run_task_serial(plan.kernel, plan.point, plan.checkpoints, bench, task)
            )
            delta.tasks += 1
            delta.trials += task.trials
            delta.cells += task.cells
            delta.apa_programs += task.trials
        delta.execute_s += time.perf_counter() - execute_started
        delta.busy_s = delta.execute_s
        return self._finish(plan, delta, outcomes, started)


def _export_masks(
    outcomes: List[TaskOutcome], payload: Dict[str, Any]
) -> List[TaskOutcome]:
    """Write packed final masks into the shard's shared-memory window.

    The pickled outcomes travel back mask-less; the parent re-attaches
    each mask from the preallocated buffer, so the dominant payload
    (cells-sized booleans) never goes through the pickle channel.
    """
    layout: Dict[int, Tuple[int, int]] = payload["mask_layout"]
    shm = shared_memory.SharedMemory(name=payload["mask_shm"])
    words_view = np.ndarray((shm.size // 8,), dtype=np.uint64, buffer=shm.buf)
    exported = []
    for outcome in outcomes:
        offset, words = layout[outcome.index]
        packed = bitplane.pack_matrix(np.asarray(outcome.mask, dtype=bool))
        words_view[offset:offset + words] = packed
        exported.append(replace(outcome, mask=None))
    del words_view
    shm.close()
    return exported


def _run_shard(
    payload: Dict[str, Any],
) -> Tuple[List[TaskOutcome], Dict[str, Any], Dict[str, int], Optional[Exception]]:
    """Worker entry point: rebuild the bench, run its shard of tasks.

    Module-level so it pickles under the default process start method.
    The shard runs serially (the reference path) or fused, per the
    payload's ``strategy``.  Returns the outcomes plus a stats dict
    (busy time, worker-side APA programs, stage timings), the per-kind
    chaos faults its local harness injected, and any *transient* error
    the shard died of.  Transient errors travel back as data rather
    than through ``future.result()`` so the parent can credit the
    injected faults to its ``max_faults_per_kind`` ledger before
    re-raising -- a shard that faulted and raised would otherwise
    never be accounted, and a rate-keyed chaotic campaign would retry
    against an undiminished fault budget forever.
    """
    if payload.get("kill_worker"):
        # Chaos proof load: this shard's worker dies abruptly, the way
        # an OOM kill or segfault would -- no exception, no cleanup.
        os._exit(86)
    started = time.perf_counter()
    bench = TestBench.for_spec(
        payload["spec"], payload["instance"], config=payload["config"]
    )
    harness: Optional[ChaosHarness] = None
    if payload["chaos"] is not None:
        harness = ChaosHarness(payload["chaos"])
        harness.install(bench)
    outcomes: List[TaskOutcome] = []
    stats: Dict[str, Any] = {"apa_programs": 0, "stages": {}}
    error: Optional[Exception] = None
    try:
        point: OperatingPoint = payload["point"]
        if payload["apply_environment"]:
            bench.set_temperature(point.temperature_c)
            bench.set_vpp(point.vpp)
        if payload.get("strategy") == "fused":
            scratch = EngineMetrics(executor="shard")
            outcomes = run_tasks_fused(
                payload["kernel"], point, payload["checkpoints"],
                bench, payload["tasks"], scratch,
            )
            stats["apa_programs"] = scratch.apa_programs
            stats["stages"] = dict(scratch.stages)
            if payload.get("mask_shm") is not None:
                outcomes = _export_masks(outcomes, payload)
        else:
            for task in payload["tasks"]:
                outcomes.append(
                    run_task_serial(
                        payload["kernel"], point, payload["checkpoints"],
                        bench, task,
                    )
                )
    except TransientInfrastructureError as exc:
        error = exc
    finally:
        injected = (
            {k: v for k, v in harness.engine.stats.injected.items() if v}
            if harness
            else {}
        )
        if harness is not None:
            harness.uninstall()
    stats["busy_s"] = time.perf_counter() - started
    return outcomes, stats, injected, error


class ProcessPoolExecutor(ExecutorBase):
    """Shards a plan's tasks across benches and runs shards in processes.

    Workers rebuild each bench from its catalog spec (``module.spec``),
    which is what makes the shards picklable; benches built by hand
    around a bare :class:`~repro.dram.module.Module` cannot be shipped
    and raise :class:`~repro.errors.ExperimentError`.  When ``chaos``
    is set, each worker installs its own fault harness so fault
    injection composes with sharded execution; worker-side injection
    counts surface in ``metrics.chaos_faults_injected``, and the
    parent keeps a per-kind ledger of them so ``max_faults_per_kind``
    holds across shard re-executions (see :meth:`_worker_chaos`).

    The pool is *supervised*: a worker that dies mid-shard (the pool
    surfaces it as ``BrokenProcessPool``) does not sink the plan.  The
    dead worker's unfinished shards are re-issued onto a rebuilt pool
    -- safe because every trial's noise is keyed by measurement
    context, never execution history, so re-running a shard lands on
    identical bits -- and after ``max_pool_restarts`` rebuilds the
    survivors run serially in-process.  With ``shard_deadline_s`` set,
    a straggler detector speculatively re-issues any shard that is
    overdue (once per shard); the first copy to finish wins, and
    duplicates are discarded, which the same determinism makes
    harmless.
    """

    name = "parallel"

    def __init__(
        self,
        jobs: Optional[int] = None,
        chaos: Optional[ChaosConfig] = None,
        shard_deadline_s: Optional[float] = None,
        max_pool_restarts: int = 2,
        strategy: str = "serial",
        cache: Optional[TrialCache] = None,
    ) -> None:
        if strategy not in ("serial", "fused"):
            raise ExperimentError(
                f"unknown shard strategy {strategy!r}; choose serial or fused"
            )
        if strategy == "fused":
            self.name = "fused-parallel"
        super().__init__(cache=cache)
        if shard_deadline_s is not None and shard_deadline_s < 0:
            raise ExperimentError("shard_deadline_s must be non-negative")
        if max_pool_restarts < 0:
            raise ExperimentError("max_pool_restarts must be non-negative")
        self.jobs = jobs
        self.chaos = chaos
        self.shard_deadline_s = shard_deadline_s
        self.max_pool_restarts = max_pool_restarts
        self.strategy = strategy
        self._kills_done: set = set()
        """Module serials whose one-shot chaos worker-kill already fired."""
        self._faults_spent: Dict[str, int] = {}
        """Worker-injected faults per kind, accumulated across every
        plan this executor has run -- the parent-side ledger that makes
        ``max_faults_per_kind`` hold across shard re-executions."""
        self._chaos_epoch = 0
        """Plan-run counter salting the worker chaos schedule, so a
        retried shard does not deterministically replay the exact
        fault sequence that just failed it."""

    def _run(self, plan: TrialPlan) -> PlanResult:
        started = time.perf_counter()
        self._chaos_epoch += 1
        delta = EngineMetrics(executor=self.name)
        # Drive the local benches too, so the rig observable to the
        # caller ends in the same state a serial run would leave.
        self._apply_environment(plan, delta)
        shards: Dict[int, List[TrialTask]] = {}
        for task in plan.tasks:
            shards.setdefault(task.bench_index, []).append(task)
        payloads: List[Dict[str, Any]] = []
        for bench_index in sorted(shards):
            bench = plan.benches[bench_index]
            module = bench.module
            if module.spec is None:
                raise ExperimentError(
                    "parallel executor requires catalog-built benches; "
                    f"module {module.serial!r} has no spec to rebuild from"
                )
            serial = module.serial
            instance = (
                int(serial.rsplit("#", 1)[1]) if "#" in serial else 0
            )
            kill_worker = (
                self.chaos is not None
                and serial in self.chaos.worker_kill_serials
                and serial not in self._kills_done
            )
            if kill_worker:
                self._kills_done.add(serial)
            payloads.append(
                {
                    "spec": module.spec,
                    "instance": instance,
                    "config": module.config,
                    "kernel": plan.kernel,
                    "point": plan.point,
                    "checkpoints": tuple(plan.checkpoints),
                    "apply_environment": plan.apply_environment,
                    "tasks": shards[bench_index],
                    "chaos": self._worker_chaos(serial),
                    "kill_worker": kill_worker,
                    "strategy": self.strategy,
                    "mask_shm": None,
                }
            )
        # Composed (fused) shards hand their masks back through one
        # preallocated shared-memory buffer instead of the pickle
        # channel; each task owns a fixed packed-word window, so
        # duplicate shard executions (stragglers, pool rebuilds) are
        # harmless overwrites with identical bits.
        shm: Optional[shared_memory.SharedMemory] = None
        layout: Dict[int, Tuple[int, int]] = {}
        if self.strategy == "fused" and payloads:
            offset = 0
            for task in plan.tasks:
                words = bitplane.words_for(task.cells)
                layout[task.index] = (offset, words)
                offset += words
            shm = shared_memory.SharedMemory(
                create=True, size=max(8, offset * 8)
            )
            for payload in payloads:
                payload["mask_shm"] = shm.name
                payload["mask_layout"] = {
                    task.index: layout[task.index]
                    for task in payload["tasks"]
                }
        execute_started = time.perf_counter()
        outcomes: List[TaskOutcome] = []
        try:
            if payloads:
                for shard_outcomes, busy_s in self._execute_shards(
                    payloads, delta
                ):
                    outcomes.extend(shard_outcomes)
                    delta.busy_s += busy_s
            if shm is not None:
                outcomes = self._attach_masks(outcomes, shm, layout)
        finally:
            if shm is not None:
                shm.close()
                shm.unlink()
        for task in plan.tasks:
            delta.tasks += 1
            delta.trials += task.trials
            delta.cells += task.cells
            if self.strategy == "serial":
                delta.apa_programs += task.trials
        delta.execute_s += time.perf_counter() - execute_started
        return self._finish(plan, delta, outcomes, started)

    @staticmethod
    def _attach_masks(
        outcomes: List[TaskOutcome],
        shm: shared_memory.SharedMemory,
        layout: Dict[int, Tuple[int, int]],
    ) -> List[TaskOutcome]:
        """Rehydrate mask-less shard outcomes from the shared buffer."""
        words_view = np.ndarray(
            (shm.size // 8,), dtype=np.uint64, buffer=shm.buf
        )
        attached = []
        for outcome in outcomes:
            offset, words = layout[outcome.index]
            attached.append(
                replace(
                    outcome,
                    mask=bitplane.unpack_mask(
                        words_view[offset:offset + words], outcome.cells
                    ),
                )
            )
        del words_view
        return attached

    _RATE_FIELDS = {
        FaultKind.PROGRAM_DROP: "program_drop_rate",
        FaultKind.READBACK_CORRUPTION: "readback_corruption_rate",
        FaultKind.THERMAL_EXCURSION: "thermal_excursion_rate",
        FaultKind.VPP_BROWNOUT: "vpp_brownout_rate",
    }

    def _worker_chaos(self, serial: str) -> Optional[ChaosConfig]:
        """The chaos profile one shard's worker should install.

        Worker harnesses are rebuilt per shard, so two properties the
        serial harness gets for free must be restored here:

        - **caps persist**: a fault kind whose accumulated worker-side
          injections have reached ``max_faults_per_kind`` is shipped
          with rate 0, so a retried plan eventually runs fault-free
          and a chaotic campaign converges;
        - **schedules advance**: the seed is salted with a per-plan
          epoch (and the shard's serial), so a retried shard does not
          deterministically replay the exact fault sequence that just
          failed it.

        Target-keyed faults (bench failures, worker kills) are
        unaffected: they ignore the seed and are capped elsewhere.
        """
        chaos = self.chaos
        if chaos is None:
            return None
        rated = [
            field
            for field in self._RATE_FIELDS.values()
            if getattr(chaos, field) > 0.0
        ]
        if not rated:
            return chaos
        overrides: Dict[str, Any] = {}
        cap = chaos.max_faults_per_kind
        if cap is not None:
            for kind, field in self._RATE_FIELDS.items():
                if (
                    field in rated
                    and self._faults_spent.get(kind.value, 0) >= cap
                ):
                    overrides[field] = 0.0
        salt = rng.generator(
            "worker-chaos", chaos.seed, self._chaos_epoch, serial
        )
        overrides["seed"] = int(salt.integers(0, 2**31))
        return replace(chaos, **overrides)

    def _harvest(
        self,
        shard: Tuple[
            List[TaskOutcome], Dict[str, Any], Dict[str, int], Optional[Exception]
        ],
        delta: EngineMetrics,
    ) -> Tuple[List[TaskOutcome], float]:
        """Account one finished shard, re-raising its transient error.

        The fault ledger is credited *before* the raise so that a
        retried plan runs against a diminished budget -- the property
        that makes chaotic parallel campaigns converge.
        """
        outcomes, stats, injected, error = shard
        delta.chaos_faults_injected += sum(injected.values())
        for kind, count in injected.items():
            self._faults_spent[kind] = self._faults_spent.get(kind, 0) + count
        if error is not None:
            raise error
        delta.apa_programs += stats.get("apa_programs", 0)
        for stage, seconds in stats.get("stages", {}).items():
            delta.add_stage(stage, seconds)
        return outcomes, stats["busy_s"]

    def _execute_shards(
        self, payloads: List[Dict[str, Any]], delta: EngineMetrics
    ) -> List[Tuple[List[TaskOutcome], float]]:
        """Run every shard to completion, surviving worker death."""
        workers = self.jobs or (os.cpu_count() or 1)
        workers = max(1, min(workers, len(payloads)))
        delta.workers = workers
        pending: Dict[int, Dict[str, Any]] = dict(enumerate(payloads))
        results: Dict[int, Tuple[List[TaskOutcome], float]] = {}
        restarts = 0
        while pending:
            if restarts > self.max_pool_restarts:
                # Out of pool rebuilds: finish the survivors serially
                # in-process (the kill flag must not reach this path,
                # or os._exit would take down the campaign itself).
                for index in sorted(pending):
                    results[index] = self._harvest(
                        _run_shard(dict(pending[index], kill_worker=False)),
                        delta,
                    )
                pending.clear()
                break
            broke = False
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=max(1, min(workers, len(pending)))
            )
            try:
                future_shard: Dict[concurrent.futures.Future, int] = {}
                for index in sorted(pending):
                    future_shard[pool.submit(_run_shard, pending[index])] = index
                active = set(future_shard)
                reissued: set = set()
                while active:
                    deadline = self.shard_deadline_s
                    if deadline is not None and all(
                        future_shard[f] in reissued for f in active
                    ):
                        deadline = None  # every shard already duplicated
                    done, _ = concurrent.futures.wait(
                        active,
                        timeout=deadline,
                        return_when=concurrent.futures.FIRST_COMPLETED,
                    )
                    if not done:
                        # Deadline elapsed with nothing finishing:
                        # speculatively re-issue overdue shards (once
                        # each).  First copy back wins; re-execution is
                        # bit-identical, so duplicates are discarded.
                        for future in list(active):
                            index = future_shard[future]
                            if index in reissued or index not in pending:
                                continue
                            reissued.add(index)
                            delta.stragglers_reissued += 1
                            duplicate = pool.submit(
                                _run_shard,
                                dict(pending[index], kill_worker=False),
                            )
                            future_shard[duplicate] = index
                            active.add(duplicate)
                        continue
                    shard_error: Optional[Exception] = None
                    for future in done:
                        active.discard(future)
                        index = future_shard[future]
                        if index not in pending:
                            continue  # duplicate of a finished shard
                        try:
                            results[index] = self._harvest(
                                future.result(), delta
                            )
                        except TransientInfrastructureError as exc:
                            # Keep harvesting (and crediting) the rest
                            # of this round before the error surfaces.
                            shard_error = shard_error or exc
                            continue
                        del pending[index]
                    if shard_error is not None:
                        raise shard_error
            except concurrent.futures.process.BrokenProcessPool:
                broke = True
            finally:
                pool.shutdown(wait=True, cancel_futures=True)
            if broke:
                restarts += 1
                delta.pool_restarts += 1
                delta.tasks_resharded += sum(
                    len(payload["tasks"]) for payload in pending.values()
                )
                # A chaos kill flag fires once: clear it before the
                # shard is re-issued, or the rebuilt pool dies too.
                for payload in pending.values():
                    payload["kill_worker"] = False
        return [results[index] for index in sorted(results)]


class BatchedExecutor(ExecutorBase):
    """Vectorizes whole tasks down into the behavior model.

    Per task it issues ONE real APA program through the bench (the
    probe -- also the point where chaos faults can fire) and checks the
    bank resolved it with the semantic the kernel's batched math
    models.  On a match the whole (trials x cells) matrix comes from
    one :meth:`~repro.engine.kernels.TrialKernel.run_batch` call; on a
    mismatch (wrong timing regime, blocked vendor) the task falls back
    to the per-trial reference path.  Both paths key their noise off
    the same measurement context, so results are bit-identical either
    way.
    """

    name = "batched"

    def _run(self, plan: TrialPlan) -> PlanResult:
        started = time.perf_counter()
        delta = EngineMetrics(executor=self.name, workers=1)
        self._apply_environment(plan, delta)
        execute_started = time.perf_counter()
        outcomes: List[TaskOutcome] = []
        for task in plan.tasks:
            bench = plan.benches[task.bench_index]
            kernel = plan.kernel
            probe_started = time.perf_counter()
            kernel.setup(bench, task, plan.point)
            semantic = self._probe(bench, task, plan.point)
            delta.apa_programs += 1
            delta.add_stage("probe", time.perf_counter() - probe_started)
            if kernel.batched_semantic in (None, semantic):
                batch_started = time.perf_counter()
                outcomes.append(self._run_batched(kernel, plan, bench, task))
                delta.add_stage("batch", time.perf_counter() - batch_started)
            else:
                fallback_started = time.perf_counter()
                outcomes.append(
                    run_task_serial(
                        kernel, plan.point, plan.checkpoints, bench, task
                    )
                )
                delta.apa_programs += task.trials
                delta.add_stage(
                    "fallback", time.perf_counter() - fallback_started
                )
            delta.tasks += 1
            delta.trials += task.trials
            delta.cells += task.cells
        delta.execute_s += time.perf_counter() - execute_started
        delta.busy_s = delta.execute_s
        return self._finish(plan, delta, outcomes, started)

    def _probe(
        self, bench: TestBench, task: TrialTask, point: OperatingPoint
    ) -> str:
        return _probe_semantic(bench, task, point)

    def _run_batched(
        self,
        kernel: TrialKernel,
        plan: TrialPlan,
        bench: TestBench,
        task: TrialTask,
    ) -> TaskOutcome:
        matrix = np.asarray(
            kernel.run_batch(bench, task, plan.point), dtype=bool
        )
        if matrix.shape != (task.trials, task.cells):
            raise ExperimentError(
                f"kernel {kernel.op_name!r} batch returned shape "
                f"{matrix.shape}, expected ({task.trials}, {task.cells})"
            )
        running = np.logical_and.accumulate(matrix, axis=0)
        snapshots = tuple(
            (count, float(np.mean(running[count - 1])))
            for count in plan.checkpoints
            if 1 <= count <= task.trials
        )
        mask = running[-1].copy()
        audit = kernel.finalize(bench, task, plan.point)
        if audit is not None:
            mask &= np.asarray(audit, dtype=bool)
        return TaskOutcome(
            index=task.index,
            rate=float(np.mean(mask)),
            trials=task.trials,
            cells=task.cells,
            mask=mask,
            checkpoint_rates=snapshots,
        )


class FusedExecutor(ExecutorBase):
    """Evaluates whole plans as fused array programs over bit-planes.

    Extends the batched executor's idea from one task to a whole plan:
    per bench, every probe-passing task's (site x row-group x trial)
    keyed draws are gathered into a handful of block RNG calls
    (``ReliabilityModel.context_noise_block``,
    ``DataPattern.row_bits_block``) and the trials-to-mask reduction
    runs over packed uint64 bit-planes (:mod:`repro.engine.bitplane`).
    The per-task APA semantic probe gate and the per-trial serial
    fallback are retained unchanged, so the executor is bit-identical
    to :class:`SerialExecutor` by the same argument as
    :class:`BatchedExecutor` -- it just makes orders of magnitude
    fewer RNG and bench round trips.
    """

    name = "fused"

    def _run(self, plan: TrialPlan) -> PlanResult:
        started = time.perf_counter()
        delta = EngineMetrics(executor=self.name, workers=1)
        self._apply_environment(plan, delta)
        execute_started = time.perf_counter()
        shards: Dict[int, List[TrialTask]] = {}
        for task in plan.tasks:
            shards.setdefault(task.bench_index, []).append(task)
            delta.tasks += 1
            delta.trials += task.trials
            delta.cells += task.cells
        outcomes: List[TaskOutcome] = []
        for bench_index in sorted(shards):
            bench = plan.benches[bench_index]
            outcomes.extend(
                run_tasks_fused(
                    plan.kernel, plan.point, plan.checkpoints,
                    bench, shards[bench_index], delta,
                )
            )
        delta.execute_s += time.perf_counter() - execute_started
        delta.busy_s = delta.execute_s
        return self._finish(plan, delta, outcomes, started)


def make_executor(
    name: Optional[str],
    jobs: Optional[int] = None,
    chaos: Optional[ChaosConfig] = None,
    shard_deadline_s: Optional[float] = None,
    max_pool_restarts: int = 2,
    cache: Optional[TrialCache] = None,
) -> ExecutorBase:
    """Build an executor from a CLI-style name."""
    if name in (None, "serial"):
        return SerialExecutor(cache=cache)
    if name in ("parallel", "fused-parallel"):
        return ProcessPoolExecutor(
            jobs=jobs,
            chaos=chaos,
            shard_deadline_s=shard_deadline_s,
            max_pool_restarts=max_pool_restarts,
            strategy="fused" if name == "fused-parallel" else "serial",
            cache=cache,
        )
    if name == "batched":
        return BatchedExecutor(cache=cache)
    if name == "fused":
        return FusedExecutor(cache=cache)
    raise ExperimentError(
        f"unknown executor {name!r}; choose serial, parallel, batched, "
        "fused, or fused-parallel"
    )


def run_plan(plan: TrialPlan, executor: Optional[ExecutorBase] = None) -> PlanResult:
    """Run a plan on the given executor (default: a fresh serial one)."""
    return (executor or SerialExecutor()).run(plan)
