"""Pluggable executors for :class:`~repro.engine.plan.TrialPlan`.

Three strategies, one contract: for a given plan and simulation seed,
every executor produces bit-identical task outcomes (and therefore
bit-identical :class:`~repro.characterization.stats.DistributionSummary`
results).  The serial executor is the reference; the process-pool
executor shards tasks across benches and rebuilds each bench from its
catalog spec in the worker; the batched executor pushes whole trial
batches down into the behavior model as vectorized numpy, gated by a
real APA probe per task so the vectorized math only runs in the regime
it reproduces.

The process-pool executor additionally owns a *persistent* worker
pool: the pool spins up lazily on first use, survives across plans
(and across experiments, when driven by
:class:`~repro.engine.scheduler.CampaignScheduler` through
:meth:`ExecutorBase.run_many`), and is torn down by ``close()`` / the
context-manager exit.  Workers cache their rebuilt benches between
shards and hand results back as columnar arrays
(:mod:`repro.engine.columnar`) with masks in shared memory, so
neither pool spawns nor pickled Python objects dominate campaign
wall-clock.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import os
import time
from dataclasses import replace
from multiprocessing import shared_memory
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from .. import rng
from ..bender.program import apa_program
from ..bender.testbench import TestBench
from ..chaos import ChaosConfig, ChaosHarness, FaultKind
from ..errors import ExperimentError, TransientInfrastructureError
from . import bitplane
from .cache import TrialCache
from .columnar import (
    OutcomeColumns,
    TaskColumns,
    pack_outcomes,
    pack_tasks,
    unpack_outcomes,
    unpack_tasks,
)
from .kernels import TrialKernel, measurement_context, point_token
from .metrics import EngineMetrics
from .plan import PlanResult, TaskOutcome, TrialPlan, TrialTask

if TYPE_CHECKING:  # characterization imports the engine; avoid the cycle
    from ..characterization.experiment import OperatingPoint


def available_cpu_count() -> int:
    """CPUs actually usable by this process (cgroup/affinity-aware).

    ``os.cpu_count()`` reports the machine; a containerized CI job is
    usually pinned to far fewer.  Prefer ``os.process_cpu_count``
    (3.13+), fall back to the scheduler affinity mask, then to the
    machine count -- so worker defaults never oversubscribe a
    cgroup-limited runner.
    """
    counter = getattr(os, "process_cpu_count", None)
    if counter is not None:
        count = counter()
        if count:
            return count
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


def run_task_serial(
    kernel: TrialKernel,
    point: OperatingPoint,
    checkpoints: Sequence[int],
    bench: TestBench,
    task: TrialTask,
) -> TaskOutcome:
    """Reference execution of one task: trial loop through the bench.

    Every trial runs with the bank's noise context pinned to the
    measurement identity, so the model's coin flips do not depend on
    how many operations preceded this trial.
    """
    device_bank = bench.module.bank(task.bank)
    kernel.setup(bench, task, point)
    checkpoint_set = set(checkpoints)
    snapshots: List[Tuple[int, float]] = []
    mask = np.ones(task.cells, dtype=bool)
    trial_rates: List[float] = []
    # The context tokens only vary in the trial index; build the
    # invariant prefix once instead of re-deriving the point token
    # (string formatting) every trial.
    context_prefix = (kernel.signature, point_token(point), task.group_token)
    # ``trial`` is the absolute index (offset by any round slicing) so
    # the noise stream matches a one-shot run; ``local`` counts within
    # this slice for checkpoints and accumulation.
    for local, trial in enumerate(
        range(task.trial_offset, task.trial_offset + task.trials)
    ):
        with device_bank.noise_context(*context_prefix, trial):
            correct = np.asarray(
                kernel.run_trial(bench, task, point, trial), dtype=bool
            )
        if correct.shape != (task.cells,):
            raise ExperimentError(
                f"kernel {kernel.op_name!r} returned shape {correct.shape}, "
                f"expected ({task.cells},)"
            )
        trial_rates.append(float(np.mean(correct)))
        mask &= correct
        if (local + 1) in checkpoint_set:
            snapshots.append((local + 1, float(np.mean(mask))))
    audit = kernel.finalize(bench, task, point)
    if audit is not None:
        mask &= np.asarray(audit, dtype=bool)
    return TaskOutcome(
        index=task.index,
        rate=float(np.mean(mask)),
        trials=task.trials,
        cells=task.cells,
        mask=mask,
        checkpoint_rates=tuple(snapshots),
        trial_rates=tuple(trial_rates),
    )


def _probe_semantic(
    bench: TestBench, task: TrialTask, point: "OperatingPoint"
) -> str:
    """One real APA through the bench; the bank's resolved semantic."""
    subarray_rows = bench.module.profile.subarray_rows
    rf_global, rs_global = task.group.global_pair(subarray_rows)
    bench.run(
        apa_program(task.bank, rf_global, rs_global, point.t1_ns, point.t2_ns)
    )
    event = bench.module.bank(task.bank).last_event
    return event.semantic if event is not None else "none"


def _outcome_from_planes(
    kernel: TrialKernel,
    point: "OperatingPoint",
    checkpoints: Sequence[int],
    bench: TestBench,
    task: TrialTask,
    planes: np.ndarray,
) -> TaskOutcome:
    """Reduce one task's packed trial planes to a TaskOutcome.

    The AND-over-trials reduction and every rate stay in the packed
    domain (popcount / cells == np.mean of the bool mask, exactly), so
    the outcome is bit-identical to the serial reference.
    """
    expected_shape = (task.trials, bitplane.words_for(task.cells))
    if planes.shape != expected_shape:
        raise ExperimentError(
            f"kernel {kernel.op_name!r} slice returned shape {planes.shape}, "
            f"expected {expected_shape}"
        )
    running = bitplane.and_accumulate(planes)
    snapshots = tuple(
        (count, bitplane.rate(running[count - 1], task.cells))
        for count in checkpoints
        if 1 <= count <= task.trials
    )
    # popcount / cells is exactly np.mean over the unpacked booleans,
    # so the per-trial rates stay bit-identical to the serial path.
    trial_rates = tuple(
        bitplane.rate(planes[i], task.cells) for i in range(task.trials)
    )
    mask_words = running[-1].copy()
    audit = kernel.finalize(bench, task, point)
    if audit is not None:
        mask_words &= bitplane.pack_matrix(np.asarray(audit, dtype=bool))
    return TaskOutcome(
        index=task.index,
        rate=bitplane.rate(mask_words, task.cells),
        trials=task.trials,
        cells=task.cells,
        mask=bitplane.unpack_mask(mask_words, task.cells),
        checkpoint_rates=snapshots,
        trial_rates=trial_rates,
    )


def run_tasks_fused(
    kernel: TrialKernel,
    point: "OperatingPoint",
    checkpoints: Sequence[int],
    bench: TestBench,
    tasks: Sequence[TrialTask],
    delta: EngineMetrics,
) -> List[TaskOutcome]:
    """Fused execution of one bench's tasks.

    Probes each task with one real APA program, evaluates every
    probe-passing task in a single :meth:`TrialKernel.run_slice` call
    (block RNG + packed bit-plane reduction), and falls back to the
    per-trial serial reference for any task whose probe resolved a
    different semantic.  ``delta`` receives probe/fuse/fallback stage
    timings and APA program counts.
    """
    outcomes: List[TaskOutcome] = []
    sliceable: List[TrialTask] = []
    for task in tasks:
        probe_started = time.perf_counter()
        kernel.setup(bench, task, point)
        semantic = _probe_semantic(bench, task, point)
        delta.apa_programs += 1
        delta.add_stage("probe", time.perf_counter() - probe_started)
        if kernel.batched_semantic in (None, semantic):
            sliceable.append(task)
        else:
            fallback_started = time.perf_counter()
            outcomes.append(
                run_task_serial(kernel, point, checkpoints, bench, task)
            )
            delta.apa_programs += task.trials
            delta.add_stage("fallback", time.perf_counter() - fallback_started)
    if sliceable:
        fuse_started = time.perf_counter()
        planes_list = kernel.run_slice(bench, sliceable, point)
        if len(planes_list) != len(sliceable):
            raise ExperimentError(
                f"kernel {kernel.op_name!r} slice returned "
                f"{len(planes_list)} plane stacks for {len(sliceable)} tasks"
            )
        for task, planes in zip(sliceable, planes_list):
            outcomes.append(
                _outcome_from_planes(
                    kernel, point, checkpoints, bench, task, planes
                )
            )
        delta.add_stage("fuse", time.perf_counter() - fuse_started)
    return outcomes


_CACHE_COUNTER_FIELDS = (
    "cache_hits",
    "cache_misses",
    "cache_bytes_read",
    "cache_bytes_written",
)


class ExecutorBase:
    """Shared surface: ``run(plan) -> PlanResult`` plus cumulative metrics.

    With a :class:`~repro.engine.cache.TrialCache` attached, ``run``
    becomes a read-through wrapper: tasks whose outcome is already
    cached are served from disk, the remainder run as a sub-plan on
    the concrete executor (``_run``), and fresh outcomes are stored
    back under the executor's name as their origin.  Because every
    executor is bit-identical, a cached outcome is interchangeable
    with a recomputed one -- except for audits, which pass a cache
    with ``require_origin`` set so they never certify an executor
    against its own stored output.

    Executors also expose an explicit lifecycle -- ``start()`` /
    ``close()`` / context manager.  In-process executors hold no
    external resources, so the default hooks are no-ops; the
    process-pool executor uses them to manage its persistent worker
    pool (creation stays lazy either way).
    """

    name = "base"
    supports_pipelining = False
    """Whether :meth:`run_many` overlaps plans on shared workers."""

    def __init__(self, cache: Optional[TrialCache] = None) -> None:
        self.metrics = EngineMetrics(executor=self.name)
        self.cache = cache
        self._merge_skip_windows = False
        """While True (pipelined batches), per-plan deltas merge into
        the cumulative metrics without their wall/execute windows --
        overlapping plans would otherwise multi-count the same
        seconds; the batch adds one real window instead."""

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Eagerly acquire execution resources (no-op by default)."""

    def close(self) -> None:
        """Release execution resources (no-op by default)."""

    def __enter__(self) -> "ExecutorBase":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @contextlib.contextmanager
    def chaos_profile(
        self, chaos: Optional[ChaosConfig]
    ) -> Iterator["ExecutorBase"]:
        """Temporarily swap the executor's chaos profile.

        Restoration happens in a ``finally`` block, so an error raised
        anywhere in the body can never leave the executor pointing at
        the caller's chaos engine.  Executors without a ``chaos``
        attribute (every in-process one) make this a no-op.
        """
        if not hasattr(self, "chaos"):
            yield self
            return
        saved = self.chaos
        self.chaos = chaos
        try:
            yield self
        finally:
            self.chaos = saved

    # -- execution ------------------------------------------------------------

    def run(self, plan: TrialPlan) -> PlanResult:
        if self.cache is None:
            return self._run(plan)
        return self._run_cached(plan)

    def run_many(
        self,
        plans: Sequence[TrialPlan],
        on_result: Optional[
            Callable[[int, Union[PlanResult, Exception]], None]
        ] = None,
    ) -> List[Union[PlanResult, Exception]]:
        """Run plans back to back, isolating per-plan failures.

        The default implementation is strictly sequential; pipelining
        executors override it to keep their workers saturated across
        plan boundaries.  The returned list is parallel to ``plans``:
        each element is the plan's :class:`PlanResult`, or the
        exception that plan died of.

        ``on_result`` streams each settled plan (index, result-or-
        exception) to the caller as soon as it is available, strictly
        in plan order -- the hook incremental campaign commits hang
        off.  Exceptions it raises propagate to the caller (a
        ``KeyboardInterrupt`` mid-stream leaves already-streamed plans
        delivered).
        """
        results: List[Union[PlanResult, Exception]] = []
        for index, plan in enumerate(plans):
            try:
                result: Union[PlanResult, Exception] = self.run(plan)
            except Exception as exc:
                result = exc
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results

    def _run(self, plan: TrialPlan) -> PlanResult:
        raise NotImplementedError

    def _run_cached(self, plan: TrialPlan) -> PlanResult:
        cache = self.cache
        assert cache is not None
        started = time.perf_counter()
        before = cache.counters()
        ptoken = point_token(plan.point)
        checkpoints = tuple(plan.checkpoints)
        keys: Dict[int, str] = {}
        served: List[TaskOutcome] = []
        missing: List[TrialTask] = []
        for task in plan.tasks:
            config = plan.benches[task.bench_index].module.config
            key = cache.key_for(config, plan.kernel, ptoken, task, checkpoints)
            keys[task.index] = key
            outcome = cache.load(key, task)
            if outcome is None:
                missing.append(task)
            else:
                served.append(outcome)
        if missing:
            sub_result = self._run(replace(plan, tasks=missing))
            for outcome in sub_result.outcomes:
                cache.store(keys[outcome.index], outcome, origin=self.name)
            delta = sub_result.metrics
            outcomes = sorted(
                served + list(sub_result.outcomes),
                key=lambda outcome: outcome.index,
            )
        else:
            # Every task served from cache: the plan still counts, but
            # no tasks/trials were *executed* -- the hit counters tell
            # that story.
            delta = EngineMetrics(executor=self.name, workers=1)
            delta.plans += 1
            delta.wall_s += time.perf_counter() - started
            self.metrics.merge(delta)
            outcomes = sorted(served, key=lambda outcome: outcome.index)
        # Attribute this plan's cache activity to both the returned
        # delta and the cumulative metrics (the sub-plan's delta was
        # already merged by _finish, so mutate both explicitly).
        after = cache.counters()
        for field in _CACHE_COUNTER_FIELDS:
            gained = after[field] - before[field]
            setattr(delta, field, getattr(delta, field) + gained)
            setattr(
                self.metrics, field, getattr(self.metrics, field) + gained
            )
        return PlanResult(plan_name=plan.name, outcomes=outcomes, metrics=delta)

    def _apply_environment(self, plan: TrialPlan, delta: EngineMetrics) -> None:
        if not plan.apply_environment:
            return
        started = time.perf_counter()
        for bench in plan.benches:
            bench.set_temperature(plan.point.temperature_c)
            bench.set_vpp(plan.point.vpp)
        delta.environment_s += time.perf_counter() - started

    def _finish(self, plan: TrialPlan, delta: EngineMetrics,
                outcomes: List[TaskOutcome], started: float) -> PlanResult:
        reduce_started = time.perf_counter()
        outcomes.sort(key=lambda outcome: outcome.index)
        delta.plans += 1
        delta.reduce_s += time.perf_counter() - reduce_started
        delta.wall_s += time.perf_counter() - started
        self.metrics.merge(delta, skip_windows=self._merge_skip_windows)
        return PlanResult(plan_name=plan.name, outcomes=outcomes, metrics=delta)


class SerialExecutor(ExecutorBase):
    """Reference executor: every trial through the full bench, in order."""

    name = "serial"

    def _run(self, plan: TrialPlan) -> PlanResult:
        started = time.perf_counter()
        delta = EngineMetrics(executor=self.name, workers=1)
        self._apply_environment(plan, delta)
        execute_started = time.perf_counter()
        outcomes: List[TaskOutcome] = []
        for task in plan.tasks:
            bench = plan.benches[task.bench_index]
            outcomes.append(
                run_task_serial(plan.kernel, plan.point, plan.checkpoints, bench, task)
            )
            delta.tasks += 1
            delta.trials += task.trials
            delta.cells += task.cells
            delta.apa_programs += task.trials
        delta.execute_s += time.perf_counter() - execute_started
        delta.busy_s = delta.execute_s
        return self._finish(plan, delta, outcomes, started)


_BENCH_CACHE: Dict[Tuple[str, Any], TestBench] = {}
"""Worker-local benches keyed by (module serial, simulation config).

Rebuilding a bench from its catalog spec costs more than most shards;
with a persistent pool the same worker sees the same modules over and
over, so benches are cached for the process lifetime.  A cached bench
is reset to the baseline environment before reuse, which -- because
the thermal controller settles exactly and all trial noise is keyed
by measurement context, never execution history -- makes it
indistinguishable from a freshly built one.
"""

_BENCH_CACHE_LIMIT = 32


def _bench_for_section(section: Dict[str, Any]) -> Tuple[TestBench, bool]:
    """A (possibly cached) bench for one slice section; True when reused."""
    key = (section["serial"], section["config"])
    bench = _BENCH_CACHE.get(key)
    if bench is not None:
        # Same starting point as a fresh build: baseline environment,
        # applied before any chaos harness goes in (a fresh bench's
        # constructor drives the same settings pre-harness).
        bench.reset_environment()
        return bench, True
    bench = TestBench.for_spec(
        section["spec"], section["instance"], config=section["config"]
    )
    while len(_BENCH_CACHE) >= _BENCH_CACHE_LIMIT:
        _BENCH_CACHE.pop(next(iter(_BENCH_CACHE)))
    _BENCH_CACHE[key] = bench
    return bench, False


def _write_masks(outcomes: List[TaskOutcome], payload: Dict[str, Any]) -> None:
    """Write packed final masks into the shard's shared-memory window.

    Each task owns a fixed packed-word slot, so duplicate shard
    executions (stragglers, pool rebuilds) are harmless overwrites
    with identical bits.
    """
    layout: Dict[int, Tuple[int, int]] = payload["mask_layout"]
    shm = shared_memory.SharedMemory(name=payload["mask_shm"])
    words_view = np.ndarray((shm.size // 8,), dtype=np.uint64, buffer=shm.buf)
    for outcome in outcomes:
        offset, words = layout[outcome.index]
        packed = bitplane.pack_matrix(np.asarray(outcome.mask, dtype=bool))
        words_view[offset:offset + words] = packed
    del words_view
    shm.close()


def _run_slice(
    payload: Dict[str, Any],
) -> Tuple[
    Optional[OutcomeColumns], Dict[str, Any], Dict[str, int], Optional[Exception]
]:
    """Worker entry point: run one contiguous slice of a plan.

    Module-level so it pickles under the default process start method.
    A slice spans one or more bench *sections* -- the payload carries a
    section table (spec/serial/config/chaos per bench) plus the slice's
    task specs as one :class:`~repro.engine.columnar.TaskColumns`
    message, so a dispatch amortizes its round-trip, bench
    rebuild/fingerprint check, and chaos-harness install over many
    tasks instead of paying them per bench shard.  Tasks run serially
    (the reference path) or fused, per the payload's ``strategy``.

    Results come back *columnar* too: masks go into the parent's
    shared-memory window (when one is attached) and everything else is
    packed into :class:`~repro.engine.columnar.OutcomeColumns`, so the
    pickle channel carries a few flat arrays instead of per-trial
    Python objects.  Alongside travel a stats dict (busy time,
    worker-side APA programs, stage timings, bench reuses, tasks run),
    the per-kind chaos faults the local harnesses injected, and any
    *transient* error the slice died of.  Transient errors travel back
    as data rather than through ``future.result()`` so the parent can
    credit the injected faults to its ``max_faults_per_kind`` ledger
    before re-raising -- a slice that faulted and raised would
    otherwise never be accounted, and a rate-keyed chaotic campaign
    would retry against an undiminished fault budget forever.
    """
    if payload.get("kill_worker"):
        # Chaos proof load: this slice's worker dies abruptly, the way
        # an OOM kill or segfault would -- no exception, no cleanup.
        os._exit(86)
    started = time.perf_counter()
    sections: List[Dict[str, Any]] = payload["sections"]
    tasks = unpack_tasks(
        payload["tasks"], [section["serial"] for section in sections]
    )
    by_slot: Dict[int, List[TrialTask]] = {}
    for task in tasks:
        by_slot.setdefault(task.bench_index, []).append(task)
    outcomes: List[TaskOutcome] = []
    stats: Dict[str, Any] = {
        "apa_programs": 0,
        "stages": {},
        "bench_reuses": 0,
        "tasks_run": 0,
    }
    injected: Dict[str, int] = {}
    error: Optional[Exception] = None
    point: OperatingPoint = payload["point"]
    for slot in sorted(by_slot):
        section = sections[slot]
        bench, reused = _bench_for_section(section)
        if reused:
            stats["bench_reuses"] += 1
        harness: Optional[ChaosHarness] = None
        if section["chaos"] is not None:
            harness = ChaosHarness(section["chaos"])
            harness.install(bench)
        try:
            if payload["apply_environment"]:
                bench.set_temperature(point.temperature_c)
                bench.set_vpp(point.vpp)
            if payload.get("strategy") == "fused":
                scratch = EngineMetrics(executor="slice")
                outcomes.extend(
                    run_tasks_fused(
                        payload["kernel"], point, payload["checkpoints"],
                        bench, by_slot[slot], scratch,
                    )
                )
                stats["apa_programs"] += scratch.apa_programs
                for stage, seconds in scratch.stages.items():
                    stats["stages"][stage] = (
                        stats["stages"].get(stage, 0.0) + seconds
                    )
            else:
                for task in by_slot[slot]:
                    outcomes.append(
                        run_task_serial(
                            payload["kernel"], point, payload["checkpoints"],
                            bench, task,
                        )
                    )
            stats["tasks_run"] += len(by_slot[slot])
        except TransientInfrastructureError as exc:
            error = exc
        finally:
            if harness is not None:
                for kind, count in harness.engine.stats.injected.items():
                    if count:
                        injected[kind] = injected.get(kind, 0) + count
                harness.uninstall()
        if error is not None:
            break
    columns: Optional[OutcomeColumns] = None
    if error is None:
        if payload.get("mask_shm") is not None:
            _write_masks(outcomes, payload)
            columns = pack_outcomes(outcomes, include_masks=False)
        else:
            columns = pack_outcomes(outcomes, include_masks=True)
    stats["busy_s"] = time.perf_counter() - started
    return columns, stats, injected, error


class _PendingPlan:
    """One plan moving through prepare -> slice -> execute -> finalize."""

    __slots__ = (
        "plan", "started", "delta", "sections", "section_tasks",
        "run_tasks", "served", "keys", "cache_before", "all_served",
        "shm", "layout", "execute_started", "shard_columns", "error",
    )

    def __init__(self, plan: TrialPlan, started: float) -> None:
        self.plan = plan
        self.started = started
        self.delta: Optional[EngineMetrics] = None
        self.sections: List[Dict[str, Any]] = []
        """Per-bench rebuild recipes (spec/instance/serial/config/chaos)."""
        self.section_tasks: List[List[TrialTask]] = []
        """Tasks per section, parallel to ``sections``, in plan order."""
        self.run_tasks: List[TrialTask] = []
        self.served: List[TaskOutcome] = []
        self.keys: Optional[Dict[int, str]] = None
        self.cache_before: Optional[Dict[str, int]] = None
        self.all_served = False
        self.shm: Optional[shared_memory.SharedMemory] = None
        self.layout: Dict[int, Tuple[int, int]] = {}
        self.execute_started: float = started
        self.shard_columns: Dict[int, Tuple[OutcomeColumns, float]] = {}
        self.error: Optional[Exception] = None


class ProcessPoolExecutor(ExecutorBase):
    """Shards a plan's tasks across benches and runs shards in processes.

    Workers rebuild each bench from its catalog spec (``module.spec``),
    which is what makes the shards picklable; benches built by hand
    around a bare :class:`~repro.dram.module.Module` cannot be shipped
    and raise :class:`~repro.errors.ExperimentError`.  When ``chaos``
    is set, each worker installs its own fault harness so fault
    injection composes with sharded execution; worker-side injection
    counts surface in ``metrics.chaos_faults_injected``, and the
    parent keeps a per-kind ledger of them so ``max_faults_per_kind``
    holds across shard re-executions (see :meth:`_worker_chaos`).

    The worker pool is *persistent*: it spins up lazily on the first
    plan (sized to the work at hand, capped at ``jobs``), is reused by
    every subsequent plan -- including a whole pipelined campaign
    through :meth:`run_many` -- and grows on demand.  ``close()`` (or
    the context-manager exit) tears it down; garbage collection does
    too, as a backstop.  Workers cache rebuilt benches between shards
    and reset them to the baseline environment on reuse, which the
    exact thermal settle makes bit-identical to a fresh rebuild.

    The pool is also *supervised*: a worker that dies mid-shard (the
    pool surfaces it as ``BrokenProcessPool``) does not sink the plan.
    The dead worker's unfinished shards are re-issued onto a rebuilt
    pool -- safe because every trial's noise is keyed by measurement
    context, never execution history, so re-running a shard lands on
    identical bits -- and after ``max_pool_restarts`` rebuilds the
    survivors run serially in-process.  With ``shard_deadline_s`` set,
    a straggler detector speculatively re-issues any shard that is
    overdue (once per shard); the first copy to finish wins, and
    duplicates are discarded, which the same determinism makes
    harmless.
    """

    name = "parallel"
    supports_pipelining = True

    def __init__(
        self,
        jobs: Optional[int] = None,
        chaos: Optional[ChaosConfig] = None,
        shard_deadline_s: Optional[float] = None,
        max_pool_restarts: int = 2,
        strategy: str = "serial",
        cache: Optional[TrialCache] = None,
        dispatch_target_s: float = 0.05,
    ) -> None:
        if strategy not in ("serial", "fused"):
            raise ExperimentError(
                f"unknown shard strategy {strategy!r}; choose serial or fused"
            )
        if strategy == "fused":
            self.name = "fused-parallel"
        super().__init__(cache=cache)
        if shard_deadline_s is not None and shard_deadline_s < 0:
            raise ExperimentError("shard_deadline_s must be non-negative")
        if max_pool_restarts < 0:
            raise ExperimentError("max_pool_restarts must be non-negative")
        if dispatch_target_s < 0:
            raise ExperimentError("dispatch_target_s must be non-negative")
        self.jobs = jobs
        self.chaos = chaos
        self.shard_deadline_s = shard_deadline_s
        self.max_pool_restarts = max_pool_restarts
        self.strategy = strategy
        self.dispatch_target_s = dispatch_target_s
        """Minimum estimated compute per dispatch; slices are sized so
        each round-trip amortizes over at least this much work."""
        self._task_cost_ema: Optional[float] = None
        """Exponential moving average of observed per-task worker
        seconds, feeding the adaptive slice sizing."""
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._pool_workers = 0
        self._kills_done: set = set()
        """Module serials whose one-shot chaos worker-kill already fired."""
        self._faults_spent: Dict[str, int] = {}
        """Worker-injected faults per kind, accumulated across every
        plan this executor has run -- the parent-side ledger that makes
        ``max_faults_per_kind`` hold across shard re-executions."""
        self._chaos_epoch = 0
        """Plan-run counter salting the worker chaos schedule, so a
        retried shard does not deterministically replay the exact
        fault sequence that just failed it."""

    # -- pool lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Spin the worker pool up eagerly (it is lazy otherwise)."""
        self._ensure_pool(self._pool_target())

    def close(self) -> None:
        """Shut the persistent worker pool down (idempotent).

        The pool reference is detached before the shutdown call, so a
        second ``close()`` -- or ``close()`` from an interrupt handler
        racing the context-manager exit -- is a no-op rather than a
        double shutdown.  In-flight futures are cancelled; running
        shards are waited out, never killed mid-write.
        """
        pool, self._pool, self._pool_workers = self._pool, None, 0
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _pool_target(self) -> int:
        return max(1, self.jobs or available_cpu_count())

    def _ensure_pool(self, need: int) -> concurrent.futures.ProcessPoolExecutor:
        """The persistent pool, created lazily and grown by recreation."""
        want = max(1, min(self._pool_target(), need))
        if self._pool is not None:
            if self._pool_workers >= want:
                self.metrics.pool_reuses += 1
                return self._pool
            self.close()
        self._pool = concurrent.futures.ProcessPoolExecutor(max_workers=want)
        self._pool_workers = want
        return self._pool

    # -- plan execution -------------------------------------------------------

    def _run(self, plan: TrialPlan) -> PlanResult:
        pending = self._prepare(plan, manage_cache=False)
        try:
            self._execute_batch([pending])
        except BaseException:
            self._release(pending)
            raise
        return self._finalize(pending)

    def run_many(
        self,
        plans: Sequence[TrialPlan],
        on_result: Optional[
            Callable[[int, Union[PlanResult, Exception]], None]
        ] = None,
    ) -> List[Union[PlanResult, Exception]]:
        """Pipelined execution: one task stream over the shared pool.

        Every plan is prepared up front, all shards are submitted as a
        single supervised stream (so the pool stays saturated across
        plan boundaries), and results are finalized strictly in plan
        order -- a failing plan surfaces as its exception without
        disturbing its neighbours.

        With ``on_result`` set, each plan is finalized and streamed to
        the caller as soon as its last shard lands (still strictly in
        plan order), instead of after the whole batch drains -- so a
        crash mid-batch loses only plans whose results were never
        delivered.  Exceptions the callback raises abort the batch:
        in-flight shards are abandoned, shared memory is released, and
        the exception propagates.
        """
        batch_started = time.perf_counter()
        pendings: List[_PendingPlan] = []
        for plan in plans:
            try:
                pending = self._prepare(
                    plan, manage_cache=self.cache is not None
                )
            except Exception as exc:
                pending = _PendingPlan(plan, time.perf_counter())
                pending.error = exc
            pendings.append(pending)
        order = {id(pending): index for index, pending in enumerate(pendings)}
        settled: Dict[int, Union[PlanResult, Exception]] = {}
        next_emit = [0]

        def settle(pending: _PendingPlan) -> None:
            index = order[id(pending)]
            if index in settled:
                return
            try:
                settled[index] = self._finalize(pending)
            except Exception as exc:
                settled[index] = exc
            while next_emit[0] in settled:
                if on_result is not None:
                    on_result(next_emit[0], settled[next_emit[0]])
                next_emit[0] += 1

        live = [p for p in pendings if p.error is None and p.sections]
        # Per-plan wall/execute windows overlap across a pipelined
        # batch; merging them all would multi-count the same seconds
        # (a 2 s batch of 60 plans once reported 129 s of wall).  Plans
        # keep their own windows in their PlanResult deltas, but the
        # cumulative metrics take exactly one batch-level window.
        self._merge_skip_windows = True
        execute_started = time.perf_counter()
        try:
            try:
                # Plans that never reach the pool (prepare errors, fully
                # cache-served) settle up front so their stream position
                # never blocks a later live plan's delivery.
                for pending in pendings:
                    if pending not in live:
                        settle(pending)
                if live:
                    self._execute_batch(live, on_complete=settle)
            except BaseException:
                for pending in pendings:
                    self._release(pending)
                raise
            for pending in pendings:
                settle(pending)
        finally:
            self._merge_skip_windows = False
            now = time.perf_counter()
            if live:
                self.metrics.execute_s += now - execute_started
            self.metrics.wall_s += now - batch_started
        return [settled[index] for index in range(len(pendings))]

    def _prepare(self, plan: TrialPlan, manage_cache: bool) -> _PendingPlan:
        """Cache split, environment, bench sections, and the mask window."""
        pending = _PendingPlan(plan, time.perf_counter())
        run_tasks = list(plan.tasks)
        if manage_cache and self.cache is not None:
            cache = self.cache
            pending.cache_before = cache.counters()
            ptoken = point_token(plan.point)
            checkpoints = tuple(plan.checkpoints)
            pending.keys = {}
            missing: List[TrialTask] = []
            for task in plan.tasks:
                config = plan.benches[task.bench_index].module.config
                key = cache.key_for(
                    config, plan.kernel, ptoken, task, checkpoints
                )
                pending.keys[task.index] = key
                outcome = cache.load(key, task)
                if outcome is None:
                    missing.append(task)
                else:
                    pending.served.append(outcome)
            if not missing:
                pending.all_served = True
                return pending
            run_tasks = missing
        pending.run_tasks = run_tasks
        self._chaos_epoch += 1
        delta = EngineMetrics(executor=self.name)
        pending.delta = delta
        # Drive the local benches too, so the rig observable to the
        # caller ends in the same state a serial run would leave.
        self._apply_environment(plan, delta)
        shards: Dict[int, List[TrialTask]] = {}
        for task in run_tasks:
            shards.setdefault(task.bench_index, []).append(task)
        for bench_index in sorted(shards):
            bench = plan.benches[bench_index]
            module = bench.module
            if module.spec is None:
                raise ExperimentError(
                    "parallel executor requires catalog-built benches; "
                    f"module {module.serial!r} has no spec to rebuild from"
                )
            serial = module.serial
            instance = (
                int(serial.rsplit("#", 1)[1]) if "#" in serial else 0
            )
            kill_worker = (
                self.chaos is not None
                and serial in self.chaos.worker_kill_serials
                and serial not in self._kills_done
            )
            if kill_worker:
                self._kills_done.add(serial)
            pending.sections.append(
                {
                    "spec": module.spec,
                    "instance": instance,
                    "serial": serial,
                    "config": module.config,
                    "chaos": self._worker_chaos(serial),
                    "kill_worker": kill_worker,
                }
            )
            pending.section_tasks.append(shards[bench_index])
        if pending.sections:
            # Slices hand their masks back through one preallocated
            # shared-memory window instead of the pickle channel; each
            # task owns a fixed packed-word slot, so duplicate slice
            # executions (stragglers, pool rebuilds) are harmless
            # overwrites with identical bits.
            offset = 0
            for task in run_tasks:
                words = bitplane.words_for(task.cells)
                pending.layout[task.index] = (offset, words)
                offset += words
            pending.shm = shared_memory.SharedMemory(
                create=True, size=max(8, offset * 8)
            )
        pending.execute_started = time.perf_counter()
        return pending

    def _build_slices(self, pending: _PendingPlan) -> List[Dict[str, Any]]:
        """Chunk one plan's prepared work into contiguous slice payloads.

        The flattened (section, task) stream is cut into at most
        ``workers`` contiguous slices -- one dispatch per worker is the
        O(workers) round-trip floor, versus the old payload-per-bench
        shape that paid a pool round-trip for every shard.  Once a
        per-task cost estimate exists (EMA over observed worker busy
        seconds, see :meth:`_harvest`), the slice count also adapts
        *downward* so every dispatch carries at least
        ``dispatch_target_s`` of estimated compute: tiny plans collapse
        toward a single dispatch instead of fanning out work that costs
        less than its own round-trip.

        Each payload carries a slice-local section table (bench rebuild
        recipes for just the benches the slice touches) and the slice's
        tasks as one :class:`~repro.engine.columnar.TaskColumns`
        message; tasks reference sections by slot, so the worker
        rebuilds/fingerprint-checks each bench once per slice.
        """
        flat: List[Tuple[int, TrialTask]] = []
        for section_index, tasks in enumerate(pending.section_tasks):
            for task in tasks:
                flat.append((section_index, task))
        if not flat:
            return []
        delta = pending.delta
        assert delta is not None
        total = len(flat)
        n_slices = max(1, min(self._pool_target(), total))
        if self._task_cost_ema and self.dispatch_target_s > 0:
            affordable = int(
                total * self._task_cost_ema / self.dispatch_target_s
            )
            n_slices = max(1, min(n_slices, affordable))
        base, extra = divmod(total, n_slices)
        payloads: List[Dict[str, Any]] = []
        cursor = 0
        for slice_index in range(n_slices):
            size = base + (1 if slice_index < extra else 0)
            chunk = flat[cursor:cursor + size]
            cursor += size
            if not chunk:
                continue
            slot_of: Dict[int, int] = {}
            sections: List[Dict[str, Any]] = []
            slots: List[int] = []
            tasks: List[TrialTask] = []
            kill = False
            for section_index, task in chunk:
                slot = slot_of.get(section_index)
                if slot is None:
                    section = pending.sections[section_index]
                    slot = len(sections)
                    slot_of[section_index] = slot
                    sections.append(section)
                    kill = kill or bool(section["kill_worker"])
                slots.append(slot)
                tasks.append(task)
            columns = pack_tasks(tasks, slots)
            payload: Dict[str, Any] = {
                "sections": sections,
                "tasks": columns,
                "kernel": pending.plan.kernel,
                "point": pending.plan.point,
                "checkpoints": tuple(pending.plan.checkpoints),
                "apply_environment": pending.plan.apply_environment,
                "strategy": self.strategy,
                "kill_worker": kill,
                "mask_shm": None,
            }
            if pending.shm is not None:
                payload["mask_shm"] = pending.shm.name
                payload["mask_layout"] = {
                    task.index: pending.layout[task.index] for task in tasks
                }
            delta.dispatches += 1
            delta.bytes_shipped_down += columns.nbytes()
            payloads.append(payload)
        delta.workers = max(1, min(self._pool_target(), len(payloads)))
        return payloads

    def _execute_batch(
        self,
        pendings: List[_PendingPlan],
        on_complete: Optional[Callable[[_PendingPlan], None]] = None,
    ) -> None:
        """Run every pending plan's slices to completion, supervised.

        All slices share one job stream over the persistent pool.
        Per-plan accounting (stragglers, resharded tasks, chaos
        faults) lands in each owner's delta; whole-batch events (pool
        rebuilds) are credited once -- to the single owner's delta
        when one plan runs alone (the historical shape), or straight
        to the cumulative metrics for a pipelined batch.

        ``on_complete`` fires the moment a plan has no outstanding
        slices left -- every slice harvested, or the plan abandoned on
        its first error -- which is what lets :meth:`run_many` stream
        finalized plans mid-batch.
        """
        jobs: Dict[int, Tuple[_PendingPlan, Dict[str, Any]]] = {}
        for pending in pendings:
            for payload in self._build_slices(pending):
                jobs[len(jobs)] = (pending, payload)
        if not jobs:
            return
        outstanding: Dict[int, int] = {}
        for owner, _ in jobs.values():
            outstanding[id(owner)] = outstanding.get(id(owner), 0) + 1

        def job_settled(owner: _PendingPlan) -> None:
            outstanding[id(owner)] -= 1
            if outstanding[id(owner)] == 0 and on_complete is not None:
                on_complete(owner)
        batch_extra = (
            pendings[0].delta
            if len(pendings) == 1
            else EngineMetrics(executor=self.name)
        )
        assert batch_extra is not None
        pending_jobs = dict(jobs)
        restarts = 0
        while pending_jobs:
            if restarts > self.max_pool_restarts:
                # Out of pool rebuilds: finish the survivors serially
                # in-process (the kill flag must not reach this path,
                # or os._exit would take down the campaign itself).
                for index in sorted(pending_jobs):
                    owner, payload = pending_jobs[index]
                    if owner.error is None:
                        try:
                            owner.shard_columns[index] = self._harvest(
                                _run_slice(dict(payload, kill_worker=False)),
                                owner.delta,
                            )
                        except TransientInfrastructureError as exc:
                            owner.error = exc
                    job_settled(owner)
                pending_jobs.clear()
                break
            broke = False
            pool = self._ensure_pool(len(pending_jobs))
            try:
                future_job: Dict[concurrent.futures.Future, int] = {}
                for index in sorted(pending_jobs):
                    future_job[
                        pool.submit(_run_slice, pending_jobs[index][1])
                    ] = index
                active = set(future_job)
                reissued: set = set()
                while active:
                    deadline = self.shard_deadline_s
                    if deadline is not None and all(
                        future_job[f] in reissued for f in active
                    ):
                        deadline = None  # every shard already duplicated
                    done, _ = concurrent.futures.wait(
                        active,
                        timeout=deadline,
                        return_when=concurrent.futures.FIRST_COMPLETED,
                    )
                    if not done:
                        # Deadline elapsed with nothing finishing:
                        # speculatively re-issue overdue shards (once
                        # each).  First copy back wins; re-execution is
                        # bit-identical, so duplicates are discarded.
                        for future in list(active):
                            index = future_job[future]
                            if index in reissued or index not in pending_jobs:
                                continue
                            owner, payload = pending_jobs[index]
                            reissued.add(index)
                            owner.delta.stragglers_reissued += 1
                            duplicate = pool.submit(
                                _run_slice,
                                dict(payload, kill_worker=False),
                            )
                            future_job[duplicate] = index
                            active.add(duplicate)
                        continue
                    round_failed = False
                    for future in done:
                        active.discard(future)
                        index = future_job[future]
                        if index not in pending_jobs:
                            continue  # duplicate of a finished shard
                        owner, _payload = pending_jobs[index]
                        try:
                            harvested = self._harvest(
                                future.result(), owner.delta
                            )
                        except concurrent.futures.process.BrokenProcessPool:
                            raise
                        except Exception as exc:
                            # Keep harvesting (and crediting) the rest
                            # of this round before the owner's failure
                            # takes effect.
                            if owner.error is None:
                                owner.error = exc
                            round_failed = True
                            continue
                        owner.shard_columns[index] = harvested
                        del pending_jobs[index]
                        job_settled(owner)
                    if round_failed:
                        # Abandon every remaining shard of each failed
                        # plan; sibling plans keep running.
                        abandoned = {
                            index
                            for index, (owner, _) in pending_jobs.items()
                            if owner.error is not None
                        }
                        for future in list(active):
                            if future_job[future] in abandoned:
                                future.cancel()
                                active.discard(future)
                        for index in abandoned:
                            owner, _payload = pending_jobs.pop(index)
                            job_settled(owner)
            except concurrent.futures.process.BrokenProcessPool:
                broke = True
                self.close()  # discard the broken pool
            if broke:
                restarts += 1
                batch_extra.pool_restarts += 1
                for owner, payload in pending_jobs.values():
                    owner.delta.tasks_resharded += len(payload["tasks"])
                    # A chaos kill flag fires once: clear it before the
                    # shard is re-issued, or the rebuilt pool dies too.
                    payload["kill_worker"] = False
        if len(pendings) > 1:
            self.metrics.merge(batch_extra)

    def _finalize(self, pending: _PendingPlan) -> PlanResult:
        """Unpack, account, cache-store, and commit one plan, in order."""
        plan = pending.plan
        cache = self.cache if pending.keys is not None else None
        try:
            if pending.error is not None:
                raise pending.error
            if pending.all_served:
                delta = EngineMetrics(executor=self.name, workers=1)
                delta.plans += 1
                delta.wall_s += time.perf_counter() - pending.started
                self.metrics.merge(
                    delta, skip_windows=self._merge_skip_windows
                )
                outcomes = sorted(
                    pending.served, key=lambda outcome: outcome.index
                )
                result = PlanResult(
                    plan_name=plan.name, outcomes=outcomes, metrics=delta
                )
            else:
                delta = pending.delta
                assert delta is not None
                fresh: List[TaskOutcome] = []
                words_view = None
                if pending.shm is not None:
                    words_view = np.ndarray(
                        (pending.shm.size // 8,),
                        dtype=np.uint64,
                        buffer=pending.shm.buf,
                    )
                try:
                    for index in sorted(pending.shard_columns):
                        columns, busy_s = pending.shard_columns[index]
                        delta.busy_s += busy_s
                        fresh.extend(
                            unpack_outcomes(
                                columns,
                                words_view=words_view,
                                layout=(
                                    pending.layout
                                    if words_view is not None
                                    else None
                                ),
                            )
                        )
                finally:
                    del words_view
                for task in pending.run_tasks:
                    delta.tasks += 1
                    delta.trials += task.trials
                    delta.cells += task.cells
                    if self.strategy == "serial":
                        delta.apa_programs += task.trials
                delta.execute_s += time.perf_counter() - pending.execute_started
                if cache is not None:
                    for outcome in fresh:
                        cache.store(
                            pending.keys[outcome.index], outcome,
                            origin=self.name,
                        )
                    sub = self._finish(plan, delta, fresh, pending.started)
                    outcomes = sorted(
                        pending.served + sub.outcomes,
                        key=lambda outcome: outcome.index,
                    )
                    result = PlanResult(
                        plan_name=plan.name, outcomes=outcomes, metrics=delta
                    )
                else:
                    result = self._finish(plan, delta, fresh, pending.started)
            if cache is not None:
                after = cache.counters()
                for field in _CACHE_COUNTER_FIELDS:
                    gained = after[field] - pending.cache_before[field]
                    setattr(delta, field, getattr(delta, field) + gained)
                    setattr(
                        self.metrics, field,
                        getattr(self.metrics, field) + gained,
                    )
            return result
        finally:
            self._release(pending)

    @staticmethod
    def _release(pending: _PendingPlan) -> None:
        """Free the plan's shared-memory mask window (idempotent)."""
        shm, pending.shm = pending.shm, None
        if shm is not None:
            shm.close()
            shm.unlink()

    _RATE_FIELDS = {
        FaultKind.PROGRAM_DROP: "program_drop_rate",
        FaultKind.READBACK_CORRUPTION: "readback_corruption_rate",
        FaultKind.THERMAL_EXCURSION: "thermal_excursion_rate",
        FaultKind.VPP_BROWNOUT: "vpp_brownout_rate",
    }

    def _worker_chaos(self, serial: str) -> Optional[ChaosConfig]:
        """The chaos profile one shard's worker should install.

        Worker harnesses are rebuilt per shard, so two properties the
        serial harness gets for free must be restored here:

        - **caps persist**: a fault kind whose accumulated worker-side
          injections have reached ``max_faults_per_kind`` is shipped
          with rate 0, so a retried plan eventually runs fault-free
          and a chaotic campaign converges;
        - **schedules advance**: the seed is salted with a per-plan
          epoch (and the shard's serial), so a retried shard does not
          deterministically replay the exact fault sequence that just
          failed it.

        Target-keyed faults (bench failures, worker kills) are
        unaffected: they ignore the seed and are capped elsewhere.
        """
        chaos = self.chaos
        if chaos is None:
            return None
        rated = [
            field
            for field in self._RATE_FIELDS.values()
            if getattr(chaos, field) > 0.0
        ]
        if not rated:
            return chaos
        overrides: Dict[str, Any] = {}
        cap = chaos.max_faults_per_kind
        if cap is not None:
            for kind, field in self._RATE_FIELDS.items():
                if (
                    field in rated
                    and self._faults_spent.get(kind.value, 0) >= cap
                ):
                    overrides[field] = 0.0
        salt = rng.generator(
            "worker-chaos", chaos.seed, self._chaos_epoch, serial
        )
        overrides["seed"] = int(salt.integers(0, 2**31))
        return replace(chaos, **overrides)

    def _harvest(
        self,
        shard: Tuple[
            Optional[OutcomeColumns],
            Dict[str, Any],
            Dict[str, int],
            Optional[Exception],
        ],
        delta: EngineMetrics,
    ) -> Tuple[OutcomeColumns, float]:
        """Account one finished shard, re-raising its transient error.

        The fault ledger is credited *before* the raise so that a
        retried plan runs against a diminished budget -- the property
        that makes chaotic parallel campaigns converge.
        """
        columns, stats, injected, error = shard
        delta.chaos_faults_injected += sum(injected.values())
        for kind, count in injected.items():
            self._faults_spent[kind] = self._faults_spent.get(kind, 0) + count
        if error is not None:
            raise error
        delta.apa_programs += stats.get("apa_programs", 0)
        for stage, seconds in stats.get("stages", {}).items():
            delta.add_stage(stage, seconds)
        delta.worker_bench_reuses += stats.get("bench_reuses", 0)
        delta.bytes_shipped += columns.nbytes()
        tasks_run = int(stats.get("tasks_run", 0))
        if tasks_run:
            # Adaptive slice sizing input: observed per-task worker
            # seconds, smoothed so one outlier slice cannot whipsaw
            # the next plan's dispatch count.
            per_task = stats["busy_s"] / tasks_run
            if self._task_cost_ema is None:
                self._task_cost_ema = per_task
            else:
                self._task_cost_ema = (
                    0.5 * self._task_cost_ema + 0.5 * per_task
                )
        return columns, stats["busy_s"]


class BatchedExecutor(ExecutorBase):
    """Vectorizes whole tasks down into the behavior model.

    Per task it issues ONE real APA program through the bench (the
    probe -- also the point where chaos faults can fire) and checks the
    bank resolved it with the semantic the kernel's batched math
    models.  On a match the whole (trials x cells) matrix comes from
    one :meth:`~repro.engine.kernels.TrialKernel.run_batch` call; on a
    mismatch (wrong timing regime, blocked vendor) the task falls back
    to the per-trial reference path.  Both paths key their noise off
    the same measurement context, so results are bit-identical either
    way.
    """

    name = "batched"

    def _run(self, plan: TrialPlan) -> PlanResult:
        started = time.perf_counter()
        delta = EngineMetrics(executor=self.name, workers=1)
        self._apply_environment(plan, delta)
        execute_started = time.perf_counter()
        outcomes: List[TaskOutcome] = []
        for task in plan.tasks:
            bench = plan.benches[task.bench_index]
            kernel = plan.kernel
            probe_started = time.perf_counter()
            kernel.setup(bench, task, plan.point)
            semantic = self._probe(bench, task, plan.point)
            delta.apa_programs += 1
            delta.add_stage("probe", time.perf_counter() - probe_started)
            if kernel.batched_semantic in (None, semantic):
                batch_started = time.perf_counter()
                outcomes.append(self._run_batched(kernel, plan, bench, task))
                delta.add_stage("batch", time.perf_counter() - batch_started)
            else:
                fallback_started = time.perf_counter()
                outcomes.append(
                    run_task_serial(
                        kernel, plan.point, plan.checkpoints, bench, task
                    )
                )
                delta.apa_programs += task.trials
                delta.add_stage(
                    "fallback", time.perf_counter() - fallback_started
                )
            delta.tasks += 1
            delta.trials += task.trials
            delta.cells += task.cells
        delta.execute_s += time.perf_counter() - execute_started
        delta.busy_s = delta.execute_s
        return self._finish(plan, delta, outcomes, started)

    def _probe(
        self, bench: TestBench, task: TrialTask, point: OperatingPoint
    ) -> str:
        return _probe_semantic(bench, task, point)

    def _run_batched(
        self,
        kernel: TrialKernel,
        plan: TrialPlan,
        bench: TestBench,
        task: TrialTask,
    ) -> TaskOutcome:
        matrix = np.asarray(
            kernel.run_batch(bench, task, plan.point), dtype=bool
        )
        if matrix.shape != (task.trials, task.cells):
            raise ExperimentError(
                f"kernel {kernel.op_name!r} batch returned shape "
                f"{matrix.shape}, expected ({task.trials}, {task.cells})"
            )
        running = np.logical_and.accumulate(matrix, axis=0)
        snapshots = tuple(
            (count, float(np.mean(running[count - 1])))
            for count in plan.checkpoints
            if 1 <= count <= task.trials
        )
        mask = running[-1].copy()
        audit = kernel.finalize(bench, task, plan.point)
        if audit is not None:
            mask &= np.asarray(audit, dtype=bool)
        return TaskOutcome(
            index=task.index,
            rate=float(np.mean(mask)),
            trials=task.trials,
            cells=task.cells,
            mask=mask,
            checkpoint_rates=snapshots,
            trial_rates=tuple(float(r) for r in matrix.mean(axis=1)),
        )


class FusedExecutor(ExecutorBase):
    """Evaluates whole plans as fused array programs over bit-planes.

    Extends the batched executor's idea from one task to a whole plan:
    per bench, every probe-passing task's (site x row-group x trial)
    keyed draws are gathered into a handful of block RNG calls
    (``ReliabilityModel.context_noise_block``,
    ``DataPattern.row_bits_block``) and the trials-to-mask reduction
    runs over packed uint64 bit-planes (:mod:`repro.engine.bitplane`).
    The per-task APA semantic probe gate and the per-trial serial
    fallback are retained unchanged, so the executor is bit-identical
    to :class:`SerialExecutor` by the same argument as
    :class:`BatchedExecutor` -- it just makes orders of magnitude
    fewer RNG and bench round trips.
    """

    name = "fused"

    def _run(self, plan: TrialPlan) -> PlanResult:
        started = time.perf_counter()
        delta = EngineMetrics(executor=self.name, workers=1)
        self._apply_environment(plan, delta)
        execute_started = time.perf_counter()
        shards: Dict[int, List[TrialTask]] = {}
        for task in plan.tasks:
            shards.setdefault(task.bench_index, []).append(task)
            delta.tasks += 1
            delta.trials += task.trials
            delta.cells += task.cells
        outcomes: List[TaskOutcome] = []
        for bench_index in sorted(shards):
            bench = plan.benches[bench_index]
            outcomes.extend(
                run_tasks_fused(
                    plan.kernel, plan.point, plan.checkpoints,
                    bench, shards[bench_index], delta,
                )
            )
        delta.execute_s += time.perf_counter() - execute_started
        delta.busy_s = delta.execute_s
        return self._finish(plan, delta, outcomes, started)


def make_executor(
    name: Optional[str],
    jobs: Optional[int] = None,
    chaos: Optional[ChaosConfig] = None,
    shard_deadline_s: Optional[float] = None,
    max_pool_restarts: int = 2,
    cache: Optional[TrialCache] = None,
    dispatch_target_s: Optional[float] = None,
) -> ExecutorBase:
    """Build an executor from a CLI-style name."""
    if name in (None, "serial"):
        return SerialExecutor(cache=cache)
    if name in ("parallel", "fused-parallel"):
        return ProcessPoolExecutor(
            jobs=jobs,
            chaos=chaos,
            shard_deadline_s=shard_deadline_s,
            max_pool_restarts=max_pool_restarts,
            strategy="fused" if name == "fused-parallel" else "serial",
            cache=cache,
            dispatch_target_s=(
                0.05 if dispatch_target_s is None else dispatch_target_s
            ),
        )
    if name == "batched":
        return BatchedExecutor(cache=cache)
    if name == "fused":
        return FusedExecutor(cache=cache)
    raise ExperimentError(
        f"unknown executor {name!r}; choose serial, parallel, batched, "
        "fused, or fused-parallel"
    )


def run_plan(plan: TrialPlan, executor: Optional[ExecutorBase] = None) -> PlanResult:
    """Run a plan on the given executor (default: a fresh serial one)."""
    return (executor or SerialExecutor()).run(plan)
