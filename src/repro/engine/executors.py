"""Pluggable executors for :class:`~repro.engine.plan.TrialPlan`.

Three strategies, one contract: for a given plan and simulation seed,
every executor produces bit-identical task outcomes (and therefore
bit-identical :class:`~repro.characterization.stats.DistributionSummary`
results).  The serial executor is the reference; the process-pool
executor shards tasks across benches and rebuilds each bench from its
catalog spec in the worker; the batched executor pushes whole trial
batches down into the behavior model as vectorized numpy, gated by a
real APA probe per task so the vectorized math only runs in the regime
it reproduces.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bender.program import apa_program
from ..bender.testbench import TestBench
from ..chaos import ChaosConfig, ChaosHarness
from ..errors import ExperimentError
from .kernels import TrialKernel, measurement_context
from .metrics import EngineMetrics
from .plan import PlanResult, TaskOutcome, TrialPlan, TrialTask

if TYPE_CHECKING:  # characterization imports the engine; avoid the cycle
    from ..characterization.experiment import OperatingPoint


def run_task_serial(
    kernel: TrialKernel,
    point: OperatingPoint,
    checkpoints: Sequence[int],
    bench: TestBench,
    task: TrialTask,
) -> TaskOutcome:
    """Reference execution of one task: trial loop through the bench.

    Every trial runs with the bank's noise context pinned to the
    measurement identity, so the model's coin flips do not depend on
    how many operations preceded this trial.
    """
    device_bank = bench.module.bank(task.bank)
    kernel.setup(bench, task, point)
    checkpoint_set = set(checkpoints)
    snapshots: List[Tuple[int, float]] = []
    mask = np.ones(task.cells, dtype=bool)
    for trial in range(task.trials):
        with device_bank.noise_context(
            *measurement_context(kernel, point, task, trial)
        ):
            correct = np.asarray(
                kernel.run_trial(bench, task, point, trial), dtype=bool
            )
        if correct.shape != (task.cells,):
            raise ExperimentError(
                f"kernel {kernel.op_name!r} returned shape {correct.shape}, "
                f"expected ({task.cells},)"
            )
        mask &= correct
        if (trial + 1) in checkpoint_set:
            snapshots.append((trial + 1, float(np.mean(mask))))
    audit = kernel.finalize(bench, task, point)
    if audit is not None:
        mask &= np.asarray(audit, dtype=bool)
    return TaskOutcome(
        index=task.index,
        rate=float(np.mean(mask)),
        trials=task.trials,
        cells=task.cells,
        mask=mask,
        checkpoint_rates=tuple(snapshots),
    )


class ExecutorBase:
    """Shared surface: ``run(plan) -> PlanResult`` plus cumulative metrics."""

    name = "base"

    def __init__(self) -> None:
        self.metrics = EngineMetrics(executor=self.name)

    def run(self, plan: TrialPlan) -> PlanResult:
        raise NotImplementedError

    def _apply_environment(self, plan: TrialPlan, delta: EngineMetrics) -> None:
        if not plan.apply_environment:
            return
        started = time.perf_counter()
        for bench in plan.benches:
            bench.set_temperature(plan.point.temperature_c)
            bench.set_vpp(plan.point.vpp)
        delta.environment_s += time.perf_counter() - started

    def _finish(self, plan: TrialPlan, delta: EngineMetrics,
                outcomes: List[TaskOutcome], started: float) -> PlanResult:
        reduce_started = time.perf_counter()
        outcomes.sort(key=lambda outcome: outcome.index)
        delta.plans += 1
        delta.reduce_s += time.perf_counter() - reduce_started
        delta.wall_s += time.perf_counter() - started
        self.metrics.merge(delta)
        return PlanResult(plan_name=plan.name, outcomes=outcomes, metrics=delta)


class SerialExecutor(ExecutorBase):
    """Reference executor: every trial through the full bench, in order."""

    name = "serial"

    def run(self, plan: TrialPlan) -> PlanResult:
        started = time.perf_counter()
        delta = EngineMetrics(executor=self.name, workers=1)
        self._apply_environment(plan, delta)
        execute_started = time.perf_counter()
        outcomes: List[TaskOutcome] = []
        for task in plan.tasks:
            bench = plan.benches[task.bench_index]
            outcomes.append(
                run_task_serial(plan.kernel, plan.point, plan.checkpoints, bench, task)
            )
            delta.tasks += 1
            delta.trials += task.trials
            delta.cells += task.cells
            delta.apa_programs += task.trials
        delta.execute_s += time.perf_counter() - execute_started
        delta.busy_s = delta.execute_s
        return self._finish(plan, delta, outcomes, started)


def _run_shard(payload: Dict[str, Any]) -> Tuple[List[TaskOutcome], float, int]:
    """Worker entry point: rebuild the bench, run its tasks serially.

    Module-level so it pickles under the default process start method.
    Returns the outcomes plus the worker's busy time and how many chaos
    faults its local harness injected (worker-side counts are reported
    in engine metrics, separate from the campaign's main harness).
    """
    started = time.perf_counter()
    bench = TestBench.for_spec(
        payload["spec"], payload["instance"], config=payload["config"]
    )
    harness: Optional[ChaosHarness] = None
    if payload["chaos"] is not None:
        harness = ChaosHarness(payload["chaos"])
        harness.install(bench)
    try:
        point: OperatingPoint = payload["point"]
        if payload["apply_environment"]:
            bench.set_temperature(point.temperature_c)
            bench.set_vpp(point.vpp)
        outcomes = [
            run_task_serial(
                payload["kernel"], point, payload["checkpoints"], bench, task
            )
            for task in payload["tasks"]
        ]
    finally:
        injected = harness.engine.stats.total_injected if harness else 0
        if harness is not None:
            harness.uninstall()
    return outcomes, time.perf_counter() - started, injected


class ProcessPoolExecutor(ExecutorBase):
    """Shards a plan's tasks across benches and runs shards in processes.

    Workers rebuild each bench from its catalog spec (``module.spec``),
    which is what makes the shards picklable; benches built by hand
    around a bare :class:`~repro.dram.module.Module` cannot be shipped
    and raise :class:`~repro.errors.ExperimentError`.  When ``chaos``
    is set, each worker installs its own fault harness so fault
    injection composes with sharded execution; worker-side injection
    counts surface in ``metrics.chaos_faults_injected``.
    """

    name = "parallel"

    def __init__(
        self,
        jobs: Optional[int] = None,
        chaos: Optional[ChaosConfig] = None,
    ) -> None:
        super().__init__()
        self.jobs = jobs
        self.chaos = chaos

    def run(self, plan: TrialPlan) -> PlanResult:
        started = time.perf_counter()
        delta = EngineMetrics(executor=self.name)
        # Drive the local benches too, so the rig observable to the
        # caller ends in the same state a serial run would leave.
        self._apply_environment(plan, delta)
        shards: Dict[int, List[TrialTask]] = {}
        for task in plan.tasks:
            shards.setdefault(task.bench_index, []).append(task)
        payloads: List[Dict[str, Any]] = []
        for bench_index in sorted(shards):
            bench = plan.benches[bench_index]
            module = bench.module
            if module.spec is None:
                raise ExperimentError(
                    "parallel executor requires catalog-built benches; "
                    f"module {module.serial!r} has no spec to rebuild from"
                )
            serial = module.serial
            instance = (
                int(serial.rsplit("#", 1)[1]) if "#" in serial else 0
            )
            payloads.append(
                {
                    "spec": module.spec,
                    "instance": instance,
                    "config": module.config,
                    "kernel": plan.kernel,
                    "point": plan.point,
                    "checkpoints": tuple(plan.checkpoints),
                    "apply_environment": plan.apply_environment,
                    "tasks": shards[bench_index],
                    "chaos": self.chaos,
                }
            )
        execute_started = time.perf_counter()
        outcomes: List[TaskOutcome] = []
        if payloads:
            workers = self.jobs or (os.cpu_count() or 1)
            workers = max(1, min(workers, len(payloads)))
            delta.workers = workers
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            ) as pool:
                futures = [
                    pool.submit(_run_shard, payload) for payload in payloads
                ]
                for future in futures:
                    shard_outcomes, busy_s, injected = future.result()
                    outcomes.extend(shard_outcomes)
                    delta.busy_s += busy_s
                    delta.chaos_faults_injected += injected
        for task in plan.tasks:
            delta.tasks += 1
            delta.trials += task.trials
            delta.cells += task.cells
            delta.apa_programs += task.trials
        delta.execute_s += time.perf_counter() - execute_started
        return self._finish(plan, delta, outcomes, started)


class BatchedExecutor(ExecutorBase):
    """Vectorizes whole tasks down into the behavior model.

    Per task it issues ONE real APA program through the bench (the
    probe -- also the point where chaos faults can fire) and checks the
    bank resolved it with the semantic the kernel's batched math
    models.  On a match the whole (trials x cells) matrix comes from
    one :meth:`~repro.engine.kernels.TrialKernel.run_batch` call; on a
    mismatch (wrong timing regime, blocked vendor) the task falls back
    to the per-trial reference path.  Both paths key their noise off
    the same measurement context, so results are bit-identical either
    way.
    """

    name = "batched"

    def run(self, plan: TrialPlan) -> PlanResult:
        started = time.perf_counter()
        delta = EngineMetrics(executor=self.name, workers=1)
        self._apply_environment(plan, delta)
        execute_started = time.perf_counter()
        outcomes: List[TaskOutcome] = []
        for task in plan.tasks:
            bench = plan.benches[task.bench_index]
            kernel = plan.kernel
            probe_started = time.perf_counter()
            kernel.setup(bench, task, plan.point)
            semantic = self._probe(bench, task, plan.point)
            delta.apa_programs += 1
            delta.add_stage("probe", time.perf_counter() - probe_started)
            if kernel.batched_semantic in (None, semantic):
                batch_started = time.perf_counter()
                outcomes.append(self._run_batched(kernel, plan, bench, task))
                delta.add_stage("batch", time.perf_counter() - batch_started)
            else:
                fallback_started = time.perf_counter()
                outcomes.append(
                    run_task_serial(
                        kernel, plan.point, plan.checkpoints, bench, task
                    )
                )
                delta.apa_programs += task.trials
                delta.add_stage(
                    "fallback", time.perf_counter() - fallback_started
                )
            delta.tasks += 1
            delta.trials += task.trials
            delta.cells += task.cells
        delta.execute_s += time.perf_counter() - execute_started
        delta.busy_s = delta.execute_s
        return self._finish(plan, delta, outcomes, started)

    def _probe(
        self, bench: TestBench, task: TrialTask, point: OperatingPoint
    ) -> str:
        subarray_rows = bench.module.profile.subarray_rows
        rf_global, rs_global = task.group.global_pair(subarray_rows)
        bench.run(
            apa_program(task.bank, rf_global, rs_global, point.t1_ns, point.t2_ns)
        )
        event = bench.module.bank(task.bank).last_event
        return event.semantic if event is not None else "none"

    def _run_batched(
        self,
        kernel: TrialKernel,
        plan: TrialPlan,
        bench: TestBench,
        task: TrialTask,
    ) -> TaskOutcome:
        matrix = np.asarray(
            kernel.run_batch(bench, task, plan.point), dtype=bool
        )
        if matrix.shape != (task.trials, task.cells):
            raise ExperimentError(
                f"kernel {kernel.op_name!r} batch returned shape "
                f"{matrix.shape}, expected ({task.trials}, {task.cells})"
            )
        running = np.logical_and.accumulate(matrix, axis=0)
        snapshots = tuple(
            (count, float(np.mean(running[count - 1])))
            for count in plan.checkpoints
            if 1 <= count <= task.trials
        )
        mask = running[-1].copy()
        audit = kernel.finalize(bench, task, plan.point)
        if audit is not None:
            mask &= np.asarray(audit, dtype=bool)
        return TaskOutcome(
            index=task.index,
            rate=float(np.mean(mask)),
            trials=task.trials,
            cells=task.cells,
            mask=mask,
            checkpoint_rates=snapshots,
        )


def make_executor(
    name: Optional[str],
    jobs: Optional[int] = None,
    chaos: Optional[ChaosConfig] = None,
) -> ExecutorBase:
    """Build an executor from a CLI-style name."""
    if name in (None, "serial"):
        return SerialExecutor()
    if name == "parallel":
        return ProcessPoolExecutor(jobs=jobs, chaos=chaos)
    if name == "batched":
        return BatchedExecutor()
    raise ExperimentError(
        f"unknown executor {name!r}; choose serial, parallel, or batched"
    )


def run_plan(plan: TrialPlan, executor: Optional[ExecutorBase] = None) -> PlanResult:
    """Run a plan on the given executor (default: a fresh serial one)."""
    return (executor or SerialExecutor()).run(plan)
