"""Unified trial-execution engine.

One pipeline layer under every characterization: modules build
declarative :class:`TrialPlan` objects (which sites, which row groups,
how many trials, which :class:`~repro.engine.kernels.TrialKernel`) and
executors run them -- serially through the full bender path, sharded
across worker processes, or vectorized straight into the behavior
model.  The engine's hard contract is determinism: for a given plan
and simulation seed, every executor produces bit-identical results.
"""

from .cache import TrialCache
from .columnar import (
    OutcomeColumns,
    TaskColumns,
    columns_from_arrays,
    columns_to_arrays,
    pack_outcomes,
    pack_tasks,
    unpack_outcomes,
    unpack_tasks,
)
from .executors import (
    BatchedExecutor,
    ExecutorBase,
    FusedExecutor,
    ProcessPoolExecutor,
    SerialExecutor,
    available_cpu_count,
    make_executor,
    run_plan,
    run_task_serial,
    run_tasks_fused,
)
from .fleet import (
    FleetDispatcher,
    FleetItem,
    FleetOutcome,
    LocalFleet,
    fleet_scope,
    recv_columns,
    recv_frame,
    run_fleet_campaign,
    run_worker,
    send_columns,
    send_frame,
)
from .kernels import (
    ActivationKernel,
    DisturbanceKernel,
    MajXKernel,
    MultiRowCopyKernel,
    TrialKernel,
    measurement_context,
    point_token,
)
from .metrics import EngineMetrics, render_stats_dict
from .scheduler import CampaignScheduler, ExperimentProgram, PlanStep
from .plan import (
    PlanResult,
    TaskOutcome,
    TrialPlan,
    TrialTask,
    checkpoint_means,
    checkpoint_rates_by_count,
    merge_outcomes,
    rates_by_serial,
    slice_plan,
    tasks_for_scope,
)
from .planner import (
    AdaptiveConfig,
    AdaptiveOutcome,
    AdaptivePlanner,
    CellReport,
    allocate_round,
)

__all__ = [
    "ActivationKernel",
    "AdaptiveConfig",
    "AdaptiveOutcome",
    "AdaptivePlanner",
    "BatchedExecutor",
    "CellReport",
    "CampaignScheduler",
    "DisturbanceKernel",
    "EngineMetrics",
    "ExecutorBase",
    "ExperimentProgram",
    "FleetDispatcher",
    "FleetItem",
    "FleetOutcome",
    "FusedExecutor",
    "LocalFleet",
    "MajXKernel",
    "MultiRowCopyKernel",
    "OutcomeColumns",
    "PlanResult",
    "PlanStep",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "TaskColumns",
    "TaskOutcome",
    "TrialCache",
    "TrialKernel",
    "TrialPlan",
    "TrialTask",
    "allocate_round",
    "available_cpu_count",
    "checkpoint_means",
    "checkpoint_rates_by_count",
    "merge_outcomes",
    "slice_plan",
    "columns_from_arrays",
    "columns_to_arrays",
    "fleet_scope",
    "make_executor",
    "measurement_context",
    "pack_outcomes",
    "pack_tasks",
    "point_token",
    "rates_by_serial",
    "recv_columns",
    "recv_frame",
    "render_stats_dict",
    "run_fleet_campaign",
    "run_plan",
    "run_task_serial",
    "run_tasks_fused",
    "run_worker",
    "send_columns",
    "send_frame",
    "tasks_for_scope",
    "unpack_outcomes",
    "unpack_tasks",
]
