"""Unified trial-execution engine.

One pipeline layer under every characterization: modules build
declarative :class:`TrialPlan` objects (which sites, which row groups,
how many trials, which :class:`~repro.engine.kernels.TrialKernel`) and
executors run them -- serially through the full bender path, sharded
across worker processes, or vectorized straight into the behavior
model.  The engine's hard contract is determinism: for a given plan
and simulation seed, every executor produces bit-identical results.
"""

from .cache import TrialCache
from .columnar import OutcomeColumns, pack_outcomes, unpack_outcomes
from .executors import (
    BatchedExecutor,
    ExecutorBase,
    FusedExecutor,
    ProcessPoolExecutor,
    SerialExecutor,
    make_executor,
    run_plan,
    run_task_serial,
    run_tasks_fused,
)
from .kernels import (
    ActivationKernel,
    DisturbanceKernel,
    MajXKernel,
    MultiRowCopyKernel,
    TrialKernel,
    measurement_context,
    point_token,
)
from .metrics import EngineMetrics, render_stats_dict
from .scheduler import CampaignScheduler, ExperimentProgram, PlanStep
from .plan import (
    PlanResult,
    TaskOutcome,
    TrialPlan,
    TrialTask,
    checkpoint_means,
    checkpoint_rates_by_count,
    rates_by_serial,
    tasks_for_scope,
)

__all__ = [
    "ActivationKernel",
    "BatchedExecutor",
    "CampaignScheduler",
    "DisturbanceKernel",
    "EngineMetrics",
    "ExecutorBase",
    "ExperimentProgram",
    "FusedExecutor",
    "MajXKernel",
    "MultiRowCopyKernel",
    "OutcomeColumns",
    "PlanResult",
    "PlanStep",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "TaskOutcome",
    "TrialCache",
    "TrialKernel",
    "TrialPlan",
    "TrialTask",
    "checkpoint_means",
    "checkpoint_rates_by_count",
    "make_executor",
    "measurement_context",
    "pack_outcomes",
    "point_token",
    "rates_by_serial",
    "render_stats_dict",
    "run_plan",
    "run_task_serial",
    "run_tasks_fused",
    "tasks_for_scope",
    "unpack_outcomes",
]
