"""Declarative measurement plans for the trial-execution engine.

A characterization module no longer walks (site x group x trial)
itself; it builds a :class:`TrialPlan` -- the site/group/trial
selection plus a :class:`~repro.engine.kernels.TrialKernel` describing
the operation -- and hands it to an executor.  The plan is pure data
(tasks and kernels are picklable) so the same plan can run serially,
sharded across processes, or vectorized in batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bender.testbench import TestBench
from ..core.rowgroups import RowGroup
from .metrics import EngineMetrics

if TYPE_CHECKING:  # characterization imports the engine; avoid the cycle
    from ..characterization.experiment import CharacterizationScope, OperatingPoint


@dataclass(frozen=True)
class TrialTask:
    """One accumulator's worth of work: a row group at one site."""

    index: int
    """Position in the plan; results are always reduced in this order."""
    bench_index: int
    serial: str
    bank: int
    subarray: int
    group: RowGroup
    trials: int
    cells: int
    """Cells the per-trial correctness vector covers."""
    trial_offset: int = 0
    """First absolute trial index this task covers.

    Measurement noise is keyed by the *absolute* trial index, so a
    task sliced into ``[offset, offset + trials)`` windows draws
    exactly the bits a one-shot run of the same total count would --
    the mechanism behind round-sliced adaptive planning.
    """

    @property
    def group_token(self) -> str:
        """Stable identity of the row group for noise keying."""
        rows = ",".join(str(r) for r in sorted(self.group.rows))
        return f"{self.group.subarray}:{rows}"


@dataclass
class TrialPlan:
    """A full measurement: tasks + kernel + operating point."""

    name: str
    kernel: "TrialKernel"  # noqa: F821 -- avoids a circular import
    point: OperatingPoint
    tasks: List[TrialTask]
    benches: List[TestBench]
    checkpoints: Tuple[int, ...] = ()
    """Trial counts at which to snapshot the running success rate."""
    apply_environment: bool = True
    """Whether executors drive every bench to the operating point."""

    @property
    def total_trials(self) -> int:
        """Trials across all tasks."""
        return sum(task.trials for task in self.tasks)


@dataclass(frozen=True)
class TaskOutcome:
    """Reduction of one task: the AND-accumulated correctness."""

    index: int
    rate: float
    trials: int
    cells: int
    mask: np.ndarray
    """Per-cell True where the cell was correct in every trial."""
    checkpoint_rates: Tuple[Tuple[int, float], ...] = ()
    """(trial count, running success rate) at each plan checkpoint."""
    trial_rates: Tuple[float, ...] = ()
    """Per-trial fraction of cells correct, one entry per trial.

    Unlike :attr:`rate` (the AND over trials, monotone in the trial
    count) these are independent observations of the same estimand,
    so a bootstrap CI over them converges -- the statistic the
    adaptive planner targets.
    """


@dataclass
class PlanResult:
    """What an executor returns: ordered outcomes + a metrics delta."""

    plan_name: str
    outcomes: List[TaskOutcome]
    metrics: EngineMetrics = field(default_factory=EngineMetrics)

    def rates(self) -> List[float]:
        """Per-task success rates in task order."""
        return [outcome.rate for outcome in self.outcomes]


def tasks_for_scope(
    scope: CharacterizationScope,
    group_size: int,
    cells_per_group: Callable[[TestBench], int],
    bench_predicate: Optional[Callable[[TestBench], bool]] = None,
    trials: Optional[int] = None,
) -> List[TrialTask]:
    """Expand a scope into tasks in the canonical site order.

    The order (bench -> bank -> subarray -> group) matches what the
    characterization modules historically produced, so distribution
    summaries line up sample-for-sample with the pre-engine code.
    """
    tasks: List[TrialTask] = []
    per_task_trials = scope.trials if trials is None else trials
    for bench_index, bench in enumerate(scope.benches):
        if bench_predicate is not None and not bench_predicate(bench):
            continue
        for bank in scope.banks:
            for subarray in scope.subarrays:
                for group in scope.groups_for(bench, bank, subarray, group_size):
                    tasks.append(
                        TrialTask(
                            index=len(tasks),
                            bench_index=bench_index,
                            serial=bench.module.serial,
                            bank=bank,
                            subarray=subarray,
                            group=group,
                            trials=per_task_trials,
                            cells=cells_per_group(bench),
                        )
                    )
    return tasks


def slice_plan(plan: TrialPlan, offset: int, trials: int) -> TrialPlan:
    """A copy of ``plan`` covering absolute trials ``[offset, offset+trials)``.

    Works on any built plan -- every plan-builder's output is
    round-sliceable without the builder knowing.  The window is
    independent of the plan's built trial count: measurement noise is
    keyed by the absolute trial index, so any ``[offset, offset +
    trials)`` window draws exactly the bits a one-shot run of
    ``offset + trials`` total trials would -- which is how the
    adaptive planner extends a cell past its built budget up to
    ``max_trials``.  Checkpoints are a running AND over the full trial
    sequence, so checkpointed plans cannot be cut mid-stream; callers
    (the adaptive planner) run them full-budget in a single round
    instead.
    """
    if offset < 0 or trials < 0:
        raise ValueError("slice_plan: offset and trials must be >= 0")
    if plan.checkpoints:
        raise ValueError(
            "slice_plan: checkpointed plans are not sliceable (running-AND "
            "checkpoint semantics span the whole trial sequence)"
        )
    tasks = [
        replace(
            task,
            trial_offset=task.trial_offset + offset,
            trials=trials,
        )
        for task in plan.tasks
    ]
    return TrialPlan(
        name=plan.name,
        kernel=plan.kernel,
        point=plan.point,
        tasks=tasks,
        benches=plan.benches,
        checkpoints=(),
        apply_environment=plan.apply_environment,
    )


def merge_outcomes(earlier: TaskOutcome, later: TaskOutcome) -> TaskOutcome:
    """Combine two slices of the same task into the one-shot outcome.

    The combined mask is the AND of the slice masks -- exactly the
    mask a single run over the union of the trial windows produces --
    and the per-trial rates concatenate, so the merged outcome is
    bit-identical to an unsliced run of ``earlier.trials +
    later.trials`` trials.
    """
    if earlier.index != later.index or earlier.cells != later.cells:
        raise ValueError("merge_outcomes: outcomes belong to different tasks")
    if earlier.checkpoint_rates or later.checkpoint_rates:
        raise ValueError("merge_outcomes: checkpointed outcomes do not merge")
    mask = np.logical_and(earlier.mask, later.mask)
    return TaskOutcome(
        index=earlier.index,
        rate=float(np.mean(mask)) if mask.size else 0.0,
        trials=earlier.trials + later.trials,
        cells=earlier.cells,
        mask=mask,
        checkpoint_rates=(),
        trial_rates=earlier.trial_rates + later.trial_rates,
    )


def rates_by_serial(plan: TrialPlan, result: PlanResult) -> Dict[str, List[float]]:
    """Group per-task rates by module serial, preserving task order."""
    grouped: Dict[str, List[float]] = {}
    for task, outcome in zip(plan.tasks, result.outcomes):
        grouped.setdefault(task.serial, []).append(outcome.rate)
    return grouped


def checkpoint_rates_by_count(
    result: PlanResult, checkpoints: Sequence[int]
) -> Dict[int, np.ndarray]:
    """Per-checkpoint rate arrays, gathered in one vectorized pass.

    Returns ``{T: rates}`` in checkpoint order (first occurrence wins
    for duplicates), skipping checkpoints no task reported; within a
    checkpoint, rates keep task order.
    """
    pairs = [
        pair
        for outcome in result.outcomes
        for pair in outcome.checkpoint_rates
    ]
    if pairs:
        counts = np.fromiter(
            (pair[0] for pair in pairs), dtype=np.int64, count=len(pairs)
        )
        rates = np.fromiter(
            (pair[1] for pair in pairs), dtype=np.float64, count=len(pairs)
        )
    else:
        counts = np.empty(0, dtype=np.int64)
        rates = np.empty(0, dtype=np.float64)
    grouped: Dict[int, np.ndarray] = {}
    for t in dict.fromkeys(checkpoints):
        selected = rates[counts == t]
        if selected.size:
            grouped[t] = selected
    return grouped


def checkpoint_means(
    result: PlanResult, checkpoints: Sequence[int]
) -> Dict[int, float]:
    """Mean running success rate across tasks at each checkpoint."""
    return {
        t: float(np.mean(rates))
        for t, rates in checkpoint_rates_by_count(result, checkpoints).items()
    }
