"""Per-layer instrumentation for the trial-execution engine.

Every executor accounts the same quantities -- plans and tasks
executed, trials measured, APA programs pushed through the bender,
cells audited, wall-time per pipeline stage, and worker occupancy --
so ``simra-dram stats`` can compare runs across executors and stored
campaign results carry a machine-readable cost record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class EngineMetrics:
    """Structured counters for one executor (cumulative across plans)."""

    executor: str = ""
    plans: int = 0
    tasks: int = 0
    trials: int = 0
    apa_programs: int = 0
    cells: int = 0
    workers: int = 1
    environment_s: float = 0.0
    execute_s: float = 0.0
    reduce_s: float = 0.0
    wall_s: float = 0.0
    busy_s: float = 0.0
    """Summed worker compute time (== execute_s for in-process runs)."""
    chaos_faults_injected: int = 0
    """Faults injected by worker-side chaos harnesses (parallel runs)."""
    breaker_trips: int = 0
    """Circuit-breaker trips observed by the supervising health layer."""
    modules_quarantined: int = 0
    """Modules excluded from the scope by quarantine."""
    tasks_resharded: int = 0
    """Tasks re-issued after their worker died mid-shard."""
    stragglers_reissued: int = 0
    """Overdue shards speculatively re-issued by the straggler detector."""
    pool_restarts: int = 0
    """Times a broken worker pool was rebuilt."""
    pool_reuses: int = 0
    """Plan batches served by an already-running persistent pool."""
    worker_bench_reuses: int = 0
    """Shards served by a worker's cached bench instead of a rebuild."""
    bytes_shipped: int = 0
    """Columnar result bytes shipped over the worker pickle channel."""
    dispatches: int = 0
    """Slice payloads submitted to workers (parent round-trips)."""
    bytes_shipped_down: int = 0
    """Columnar task-spec bytes shipped down to workers."""
    fleet_items: int = 0
    """Whole experiment programs dispatched to fleet workers."""
    fleet_reissued: int = 0
    """Fleet items re-issued after a worker died or went overdue."""
    fleet_worker_deaths: int = 0
    """Fleet workers lost mid-campaign (socket death, SIGKILL)."""
    pipelined_plans: int = 0
    """Plans executed through the pipelined campaign scheduler."""
    pipeline_wall_s: float = 0.0
    """Wall-clock spent inside pipelined scheduler batches."""
    pipeline_busy_s: float = 0.0
    """Summed worker compute time within pipelined batches."""
    pipeline_declined_reason: str = ""
    """Why the campaign fell back to sequential execution instead of
    pipelining (``disabled`` / ``no-executor`` /
    ``executor-not-pipelining`` / ``health-supervised`` /
    ``fewer-than-2-eligible-experiments``); empty when pipelining
    ran or was never considered."""
    audit_mismatches: int = 0
    """Artifacts flagged by a result-integrity audit."""
    rounds: int = 0
    """Adaptive-planner rounds executed."""
    cells_converged: int = 0
    """Corner-matrix cells that reached the target CI width early."""
    trials_saved: int = 0
    """Trials the adaptive planner skipped versus its fixed budget."""
    cache_hits: int = 0
    """Tasks whose outcome was served from the trial cache."""
    cache_misses: int = 0
    """Tasks looked up in the trial cache and recomputed."""
    cache_bytes_read: int = 0
    """Bytes of cache entries successfully loaded."""
    cache_bytes_written: int = 0
    """Bytes of cache entries persisted."""
    stages: Dict[str, float] = field(default_factory=dict)
    """Optional extra per-stage wall-times (e.g. ``probe``/``batch``)."""

    @property
    def executor_busy_fraction(self) -> float:
        """Fraction of the pool busy across an executor's *whole life*.

        ``busy_s / (wall_s * workers)`` where ``wall_s`` spans every
        plan the executor ran, including the gaps between plans a
        sequential campaign leaves the pool idle in -- which is why a
        pipelined campaign can report a tiny busy fraction (0.016 on
        the CI shape) next to a high :attr:`pipeline_occupancy`
        (0.96): the two denominators measure different windows.  This
        was historically named ``occupancy``; that alias is kept for
        stored payloads and old callers.
        """
        capacity = self.wall_s * max(1, self.workers)
        if capacity <= 0.0:
            return 0.0
        return min(1.0, self.busy_s / capacity)

    @property
    def occupancy(self) -> float:
        """Legacy alias of :attr:`executor_busy_fraction`."""
        return self.executor_busy_fraction

    @property
    def pipeline_occupancy(self) -> float:
        """Pool occupancy *within* pipelined scheduler batches only.

        ``pipeline_busy_s / (pipeline_wall_s * workers)`` -- the
        denominator counts only the wall-clock spent inside scheduler
        batches, so this measures how well the pipelined scheduler
        packs the pool, not how often the campaign used it (that is
        :attr:`executor_busy_fraction`).
        """
        capacity = self.pipeline_wall_s * max(1, self.workers)
        if capacity <= 0.0:
            return 0.0
        return min(1.0, self.pipeline_busy_s / capacity)

    def add_stage(self, name: str, seconds: float) -> None:
        """Accumulate an extra named stage wall-time."""
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def merge(
        self, other: "EngineMetrics", skip_windows: bool = False
    ) -> None:
        """Fold another metrics record into this one (counters add).

        ``skip_windows=True`` leaves the wall-clock window fields
        (``wall_s`` / ``execute_s``) alone: a pipelined batch prepares
        every plan up front, so the per-plan windows overlap and
        summing them would count the same seconds once per plan (the
        129 s-for-a-2 s-batch artifact).  The batch owner adds its
        single non-overlapping window instead.
        """
        self.plans += other.plans
        self.tasks += other.tasks
        self.trials += other.trials
        self.apa_programs += other.apa_programs
        self.cells += other.cells
        self.environment_s += other.environment_s
        if not skip_windows:
            self.execute_s += other.execute_s
            self.wall_s += other.wall_s
        self.reduce_s += other.reduce_s
        self.busy_s += other.busy_s
        self.chaos_faults_injected += other.chaos_faults_injected
        self.breaker_trips += other.breaker_trips
        self.modules_quarantined += other.modules_quarantined
        self.tasks_resharded += other.tasks_resharded
        self.stragglers_reissued += other.stragglers_reissued
        self.pool_restarts += other.pool_restarts
        self.pool_reuses += other.pool_reuses
        self.worker_bench_reuses += other.worker_bench_reuses
        self.bytes_shipped += other.bytes_shipped
        self.dispatches += other.dispatches
        self.bytes_shipped_down += other.bytes_shipped_down
        self.fleet_items += other.fleet_items
        self.fleet_reissued += other.fleet_reissued
        self.fleet_worker_deaths += other.fleet_worker_deaths
        self.pipelined_plans += other.pipelined_plans
        self.pipeline_wall_s += other.pipeline_wall_s
        self.pipeline_busy_s += other.pipeline_busy_s
        if not self.pipeline_declined_reason:
            self.pipeline_declined_reason = other.pipeline_declined_reason
        self.audit_mismatches += other.audit_mismatches
        self.rounds += other.rounds
        self.cells_converged += other.cells_converged
        self.trials_saved += other.trials_saved
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_bytes_read += other.cache_bytes_read
        self.cache_bytes_written += other.cache_bytes_written
        self.workers = max(self.workers, other.workers)
        for name, seconds in other.stages.items():
            self.add_stage(name, seconds)

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON form (what campaign stores persist)."""
        payload: Dict[str, object] = {
            "executor": self.executor,
            "plans": self.plans,
            "tasks": self.tasks,
            "trials": self.trials,
            "apa_programs": self.apa_programs,
            "cells": self.cells,
            "workers": self.workers,
            "environment_s": self.environment_s,
            "execute_s": self.execute_s,
            "reduce_s": self.reduce_s,
            "wall_s": self.wall_s,
            "busy_s": self.busy_s,
            "executor_busy_fraction": self.executor_busy_fraction,
            # Legacy name of executor_busy_fraction; kept so stored
            # payloads and downstream dashboards keep parsing.
            "occupancy": self.occupancy,
            "chaos_faults_injected": self.chaos_faults_injected,
            "breaker_trips": self.breaker_trips,
            "modules_quarantined": self.modules_quarantined,
            "tasks_resharded": self.tasks_resharded,
            "stragglers_reissued": self.stragglers_reissued,
            "pool_restarts": self.pool_restarts,
            "pool_reuses": self.pool_reuses,
            "worker_bench_reuses": self.worker_bench_reuses,
            "bytes_shipped": self.bytes_shipped,
            "dispatches": self.dispatches,
            "bytes_shipped_down": self.bytes_shipped_down,
            "fleet_items": self.fleet_items,
            "fleet_reissued": self.fleet_reissued,
            "fleet_worker_deaths": self.fleet_worker_deaths,
            "pipelined_plans": self.pipelined_plans,
            "pipeline_wall_s": self.pipeline_wall_s,
            "pipeline_busy_s": self.pipeline_busy_s,
            "pipeline_occupancy": self.pipeline_occupancy,
            "pipeline_declined_reason": self.pipeline_declined_reason,
            "audit_mismatches": self.audit_mismatches,
            "rounds": self.rounds,
            "cells_converged": self.cells_converged,
            "trials_saved": self.trials_saved,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_bytes_read": self.cache_bytes_read,
            "cache_bytes_written": self.cache_bytes_written,
        }
        for name, seconds in sorted(self.stages.items()):
            payload[f"stage_{name}_s"] = seconds
        return payload

    def render(self) -> str:
        """Human-readable stats report."""
        lines = [
            f"engine stats ({self.executor or 'unknown'} executor)",
            f"  plans executed    : {self.plans}",
            f"  tasks executed    : {self.tasks}",
            f"  trials executed   : {self.trials}",
            f"  APA programs      : {self.apa_programs}",
            f"  cells audited     : {self.cells}",
            f"  workers           : {self.workers}",
            f"  wall time         : {self.wall_s:.3f} s",
            f"    environment     : {self.environment_s:.3f} s",
            f"    execute         : {self.execute_s:.3f} s",
            f"    reduce          : {self.reduce_s:.3f} s",
        ]
        for name, seconds in sorted(self.stages.items()):
            lines.append(f"    {name:<15} : {seconds:.3f} s")
        lines.append(
            "  executor busy fraction (occupancy): "
            f"{self.executor_busy_fraction:.1%}"
        )
        if self.chaos_faults_injected:
            lines.append(
                f"  worker chaos faults: {self.chaos_faults_injected}"
            )
        health = [
            ("breaker trips", self.breaker_trips),
            ("modules quarantined", self.modules_quarantined),
            ("tasks re-sharded", self.tasks_resharded),
            ("stragglers re-issued", self.stragglers_reissued),
            ("pool restarts", self.pool_restarts),
            ("audit mismatches", self.audit_mismatches),
            ("fleet items", self.fleet_items),
            ("fleet re-issues", self.fleet_reissued),
            ("fleet worker deaths", self.fleet_worker_deaths),
        ]
        if any(count for _, count in health):
            lines.append("  fleet health")
            for label, count in health:
                lines.append(f"    {label:<18}: {count}")
        if (
            self.pipelined_plans
            or self.pool_reuses
            or self.bytes_shipped
            or self.dispatches
            or self.pipeline_declined_reason
        ):
            # Only non-zero counters print: a serial, non-pipelined run
            # should not render a wall of zero-valued scheduler lines.
            lines.append("  scheduler")
            if self.pool_reuses:
                lines.append(f"    pool reuses       : {self.pool_reuses}")
            if self.worker_bench_reuses:
                lines.append(
                    f"    bench reuses      : {self.worker_bench_reuses}"
                )
            if self.bytes_shipped:
                lines.append(f"    bytes shipped     : {self.bytes_shipped}")
            if self.dispatches:
                lines.append(f"    dispatches        : {self.dispatches}")
                lines.append(
                    f"    bytes shipped down: {self.bytes_shipped_down}"
                )
            if self.pipelined_plans:
                lines.append(
                    f"    pipelined plans   : {self.pipelined_plans}"
                )
                lines.append(
                    f"    pipeline occupancy: {self.pipeline_occupancy:.1%}"
                )
            if self.pipeline_declined_reason:
                lines.append(
                    "    pipeline declined : "
                    f"{self.pipeline_declined_reason}"
                )
        if self.rounds or self.cells_converged or self.trials_saved:
            lines.append("  adaptive planner")
            lines.append(f"    rounds            : {self.rounds}")
            lines.append(f"    cells converged   : {self.cells_converged}")
            lines.append(f"    trials saved      : {self.trials_saved}")
        lookups = self.cache_hits + self.cache_misses
        if lookups:
            hit_rate = self.cache_hits / lookups
            lines.append("  trial cache")
            lines.append(f"    hits              : {self.cache_hits}")
            lines.append(f"    misses            : {self.cache_misses}")
            lines.append(f"    hit rate          : {hit_rate:.1%}")
            lines.append(f"    bytes read        : {self.cache_bytes_read}")
            lines.append(f"    bytes written     : {self.cache_bytes_written}")
        return "\n".join(lines)


def render_stats_dict(payload: Dict[str, object]) -> str:
    """Render a stored :meth:`EngineMetrics.as_dict` payload."""
    metrics = EngineMetrics()
    stage_items: List = []
    for key, value in payload.items():
        if key.startswith("stage_") and key.endswith("_s"):
            stage_items.append((key[len("stage_"):-2], float(value)))
        elif key in (
            "occupancy",
            "executor_busy_fraction",
            "pipeline_occupancy",
        ):
            # Computed properties: derived from the counters below, so
            # stored copies (old or new name) are never assigned.
            continue
        elif hasattr(metrics, key):
            setattr(metrics, key, value)
    for name, seconds in stage_items:
        metrics.add_stage(name, seconds)
    return metrics.render()
