"""Columnar (structure-of-arrays) transport for trial work, both ways.

Worker processes used to hand their shard results back as pickled
lists of :class:`~repro.engine.plan.TaskOutcome` objects -- one Python
object, one bool ndarray, and one tuple-of-tuples per task.  At
campaign scale (thousands of tasks) the pickle channel becomes the
bottleneck: most of the bytes are per-object overhead, not data.

Since the slice-dispatch rework the *downlink* is columnar too:
:class:`TaskColumns` packs a contiguous slice of a plan's
:class:`~repro.engine.plan.TrialTask` specs (row groups in CSR form)
into flat arrays, so a dispatch ships one columnar message per worker
instead of a pickled object graph per task.  Both directions share
the same array-list serialization (:func:`columns_to_arrays` /
:func:`columns_from_arrays`), which is also what the fleet tier's
length-prefixed socket protocol (:mod:`repro.engine.fleet`) puts on
the wire.

For the *uplink*, this module packs a whole shard's outcomes into a
handful of NumPy arrays:

- ``indices`` / ``rates`` / ``trials`` / ``cells``: one element per
  task (rates travel as float64 verbatim, so the round trip is exact
  to the bit);
- checkpoint snapshots in CSR form (``ckpt_offsets`` into parallel
  ``ckpt_counts`` / ``ckpt_rates`` arrays), since tasks may hit a
  ragged subset of the plan's checkpoint schedule;
- masks as packed uint64 bit-planes (:mod:`repro.engine.bitplane`),
  either inline (``mask_offsets`` / ``mask_words``) or written into a
  parent-owned shared-memory window, in which case the columns travel
  mask-less and the parent re-attaches each mask from the buffer.

Packing and unpacking are pure reshapes: every float is copied
bit-for-bit and every mask round-trips through the same
``pack_matrix``/``unpack_mask`` pair the fused executor already uses,
so columnar transport preserves the engine's bit-identity contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import bitplane
from ..core.rowgroups import RowGroup
from .plan import TaskOutcome, TrialTask


@dataclass
class OutcomeColumns:
    """One shard's outcomes as parallel arrays (structure-of-arrays)."""

    indices: np.ndarray
    """Plan-order task indices, int64 ``(n,)``."""
    rates: np.ndarray
    """Final success rates, float64 ``(n,)`` -- exact copies."""
    trials: np.ndarray
    """Trials per task, int64 ``(n,)``."""
    cells: np.ndarray
    """Cells per task, int64 ``(n,)``."""
    ckpt_offsets: np.ndarray
    """CSR row pointers into the checkpoint arrays, int64 ``(n + 1,)``."""
    ckpt_counts: np.ndarray
    """Checkpoint trial counts, int64 ``(total,)``."""
    ckpt_rates: np.ndarray
    """Checkpoint running rates, float64 ``(total,)``."""
    mask_offsets: Optional[np.ndarray] = None
    """CSR word pointers into ``mask_words`` (inline-mask mode only)."""
    mask_words: Optional[np.ndarray] = None
    """Packed uint64 masks, concatenated (inline-mask mode only)."""
    rate_offsets: Optional[np.ndarray] = None
    """CSR row pointers into ``rate_values``, int64 ``(n + 1,)``.

    Optional for wire compatibility with frames packed before
    per-trial rates existed; absent means no per-trial data.
    """
    rate_values: Optional[np.ndarray] = None
    """Per-trial success rates, float64, concatenated -- exact copies."""

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    def nbytes(self) -> int:
        """Bytes this record ships through the pickle channel."""
        total = (
            self.indices.nbytes
            + self.rates.nbytes
            + self.trials.nbytes
            + self.cells.nbytes
            + self.ckpt_offsets.nbytes
            + self.ckpt_counts.nbytes
            + self.ckpt_rates.nbytes
        )
        for name in ("mask_offsets", "mask_words", "rate_offsets",
                     "rate_values"):
            column = getattr(self, name)
            if column is not None:
                total += column.nbytes
        return int(total)


def pack_outcomes(
    outcomes: Sequence[TaskOutcome], include_masks: bool = True
) -> OutcomeColumns:
    """Pack outcomes into columns.

    With ``include_masks=False`` the caller has already written each
    packed mask somewhere out-of-band (the shared-memory window) and
    the columns travel mask-less.
    """
    n = len(outcomes)
    indices = np.fromiter(
        (outcome.index for outcome in outcomes), dtype=np.int64, count=n
    )
    rates = np.fromiter(
        (outcome.rate for outcome in outcomes), dtype=np.float64, count=n
    )
    trials = np.fromiter(
        (outcome.trials for outcome in outcomes), dtype=np.int64, count=n
    )
    cells = np.fromiter(
        (outcome.cells for outcome in outcomes), dtype=np.int64, count=n
    )
    ckpt_offsets = np.zeros(n + 1, dtype=np.int64)
    for i, outcome in enumerate(outcomes):
        ckpt_offsets[i + 1] = ckpt_offsets[i] + len(outcome.checkpoint_rates)
    total = int(ckpt_offsets[-1])
    ckpt_counts = np.zeros(total, dtype=np.int64)
    ckpt_rates = np.zeros(total, dtype=np.float64)
    cursor = 0
    for outcome in outcomes:
        for count, rate in outcome.checkpoint_rates:
            ckpt_counts[cursor] = count
            ckpt_rates[cursor] = rate
            cursor += 1
    rate_offsets = np.zeros(n + 1, dtype=np.int64)
    for i, outcome in enumerate(outcomes):
        rate_offsets[i + 1] = rate_offsets[i] + len(outcome.trial_rates)
    rate_values = np.zeros(int(rate_offsets[-1]), dtype=np.float64)
    cursor = 0
    for outcome in outcomes:
        for rate in outcome.trial_rates:
            rate_values[cursor] = rate
            cursor += 1
    mask_offsets: Optional[np.ndarray] = None
    mask_words: Optional[np.ndarray] = None
    if include_masks:
        mask_offsets = np.zeros(n + 1, dtype=np.int64)
        packed_rows: List[np.ndarray] = []
        for i, outcome in enumerate(outcomes):
            packed = bitplane.pack_matrix(np.asarray(outcome.mask, dtype=bool))
            packed_rows.append(packed)
            mask_offsets[i + 1] = mask_offsets[i] + packed.shape[0]
        mask_words = (
            np.concatenate(packed_rows)
            if packed_rows
            else np.zeros(0, dtype=np.uint64)
        )
    return OutcomeColumns(
        indices=indices,
        rates=rates,
        trials=trials,
        cells=cells,
        ckpt_offsets=ckpt_offsets,
        ckpt_counts=ckpt_counts,
        ckpt_rates=ckpt_rates,
        mask_offsets=mask_offsets,
        mask_words=mask_words,
        rate_offsets=rate_offsets,
        rate_values=rate_values,
    )


def unpack_outcomes(
    columns: OutcomeColumns,
    words_view: Optional[np.ndarray] = None,
    layout: Optional[Dict[int, Tuple[int, int]]] = None,
) -> List[TaskOutcome]:
    """Rebuild :class:`TaskOutcome` objects from columns.

    Masks come either from the columns' inline words or -- when
    ``words_view``/``layout`` name a shared-memory window and each
    task's ``(offset, words)`` slot in it -- from the shared buffer.
    """
    outcomes: List[TaskOutcome] = []
    for i in range(len(columns)):
        index = int(columns.indices[i])
        cells = int(columns.cells[i])
        if words_view is not None and layout is not None:
            offset, words = layout[index]
            mask = bitplane.unpack_mask(words_view[offset:offset + words], cells)
        elif columns.mask_words is not None and columns.mask_offsets is not None:
            lo = int(columns.mask_offsets[i])
            hi = int(columns.mask_offsets[i + 1])
            mask = bitplane.unpack_mask(columns.mask_words[lo:hi], cells)
        else:
            raise ValueError("columns carry no masks and no window was given")
        lo = int(columns.ckpt_offsets[i])
        hi = int(columns.ckpt_offsets[i + 1])
        snapshots = tuple(
            (int(columns.ckpt_counts[j]), float(columns.ckpt_rates[j]))
            for j in range(lo, hi)
        )
        trial_rates: Tuple[float, ...] = ()
        if columns.rate_offsets is not None and columns.rate_values is not None:
            lo = int(columns.rate_offsets[i])
            hi = int(columns.rate_offsets[i + 1])
            trial_rates = tuple(
                float(rate) for rate in columns.rate_values[lo:hi]
            )
        outcomes.append(
            TaskOutcome(
                index=index,
                rate=float(columns.rates[i]),
                trials=int(columns.trials[i]),
                cells=cells,
                mask=mask,
                checkpoint_rates=snapshots,
                trial_rates=trial_rates,
            )
        )
    return outcomes


@dataclass
class TaskColumns:
    """A contiguous slice of a plan's task specs as parallel arrays.

    The downlink twin of :class:`OutcomeColumns`: one dispatch ships a
    whole slice of tasks as eleven flat arrays instead of a pickled
    list of :class:`~repro.engine.plan.TrialTask` objects (each
    dragging a :class:`~repro.core.rowgroups.RowGroup` and its
    frozenset along).  Row groups travel in CSR form
    (``row_offsets`` into ``row_values``), and each task names its
    bench by a slice-local ``slot`` into the dispatch's bench-section
    table -- the worker maps slots back to (spec, instance, serial).
    """

    indices: np.ndarray
    """Plan-order task indices, int64 ``(n,)``."""
    slots: np.ndarray
    """Slice-local bench-section slot per task, int64 ``(n,)``."""
    banks: np.ndarray
    """Bank index per task, int64 ``(n,)``."""
    subarrays: np.ndarray
    """Subarray index per task, int64 ``(n,)``."""
    trials: np.ndarray
    """Trials per task, int64 ``(n,)``."""
    cells: np.ndarray
    """Cells per task, int64 ``(n,)``."""
    group_subarrays: np.ndarray
    """RowGroup.subarray per task, int64 ``(n,)``."""
    row_first: np.ndarray
    """RowGroup.row_first per task, int64 ``(n,)``."""
    row_second: np.ndarray
    """RowGroup.row_second per task, int64 ``(n,)``."""
    row_offsets: np.ndarray
    """CSR row pointers into ``row_values``, int64 ``(n + 1,)``."""
    row_values: np.ndarray
    """Concatenated sorted group rows, int64 ``(total,)``."""
    trial_offsets: Optional[np.ndarray] = None
    """First absolute trial index per task, int64 ``(n,)``.

    Optional for wire compatibility with peers packed before round
    slicing existed; absent means every task starts at trial 0.
    """

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    def nbytes(self) -> int:
        """Bytes this record ships through the dispatch channel."""
        return int(
            sum(
                getattr(self, name).nbytes
                for name in _TASK_COLUMN_FIELDS
                if getattr(self, name) is not None
            )
        )


_TASK_COLUMN_FIELDS = (
    "indices",
    "slots",
    "banks",
    "subarrays",
    "trials",
    "cells",
    "group_subarrays",
    "row_first",
    "row_second",
    "row_offsets",
    "row_values",
    "trial_offsets",
)

_OUTCOME_COLUMN_FIELDS = (
    "indices",
    "rates",
    "trials",
    "cells",
    "ckpt_offsets",
    "ckpt_counts",
    "ckpt_rates",
    "mask_offsets",
    "mask_words",
    "rate_offsets",
    "rate_values",
)


def pack_tasks(tasks: Sequence[TrialTask], slots: Sequence[int]) -> TaskColumns:
    """Pack a slice of tasks into columns.

    ``slots`` is parallel to ``tasks`` and names each task's
    slice-local bench section (the dispatch payload carries the
    section table separately).
    """
    n = len(tasks)
    if len(slots) != n:
        raise ValueError("slots must be parallel to tasks")
    row_offsets = np.zeros(n + 1, dtype=np.int64)
    for i, task in enumerate(tasks):
        row_offsets[i + 1] = row_offsets[i] + len(task.group.rows)
    row_values = np.zeros(int(row_offsets[-1]), dtype=np.int64)
    cursor = 0
    for task in tasks:
        for row in sorted(task.group.rows):
            row_values[cursor] = row
            cursor += 1

    def column(values) -> np.ndarray:
        return np.fromiter(values, dtype=np.int64, count=n)

    return TaskColumns(
        indices=column(task.index for task in tasks),
        slots=np.asarray(list(slots), dtype=np.int64),
        banks=column(task.bank for task in tasks),
        subarrays=column(task.subarray for task in tasks),
        trials=column(task.trials for task in tasks),
        cells=column(task.cells for task in tasks),
        group_subarrays=column(task.group.subarray for task in tasks),
        row_first=column(task.group.row_first for task in tasks),
        row_second=column(task.group.row_second for task in tasks),
        row_offsets=row_offsets,
        row_values=row_values,
        trial_offsets=column(task.trial_offset for task in tasks),
    )


def unpack_tasks(
    columns: TaskColumns, serials: Sequence[str]
) -> List[TrialTask]:
    """Rebuild :class:`TrialTask` objects from columns.

    ``serials`` maps each slice-local slot to its module serial; the
    reconstructed tasks carry the slot as their ``bench_index``, which
    is exactly how the worker's section loop addresses them.  Group
    rows round-trip through sorted order, which
    :attr:`TrialTask.group_token` (the noise key) sorts anyway, so
    reconstruction is bit-transparent.
    """
    tasks: List[TrialTask] = []
    for i in range(len(columns)):
        lo = int(columns.row_offsets[i])
        hi = int(columns.row_offsets[i + 1])
        slot = int(columns.slots[i])
        group = RowGroup(
            subarray=int(columns.group_subarrays[i]),
            row_first=int(columns.row_first[i]),
            row_second=int(columns.row_second[i]),
            rows=frozenset(int(row) for row in columns.row_values[lo:hi]),
        )
        tasks.append(
            TrialTask(
                index=int(columns.indices[i]),
                bench_index=slot,
                serial=serials[slot],
                bank=int(columns.banks[i]),
                subarray=int(columns.subarrays[i]),
                group=group,
                trials=int(columns.trials[i]),
                cells=int(columns.cells[i]),
                trial_offset=(
                    int(columns.trial_offsets[i])
                    if columns.trial_offsets is not None
                    else 0
                ),
            )
        )
    return tasks


def columns_to_arrays(
    columns,
) -> Tuple[Dict[str, object], List[np.ndarray]]:
    """Flatten a columns record into (header, array list) for the wire.

    Works for both :class:`TaskColumns` and :class:`OutcomeColumns`
    (mask-less outcome columns mark the absent fields in the header
    instead of shipping empty placeholders).  The inverse is
    :func:`columns_from_arrays`.
    """
    if isinstance(columns, TaskColumns):
        fields = [
            name
            for name in _TASK_COLUMN_FIELDS
            if getattr(columns, name) is not None
        ]
        kind = "tasks"
    elif isinstance(columns, OutcomeColumns):
        fields = [
            name
            for name in _OUTCOME_COLUMN_FIELDS
            if getattr(columns, name) is not None
        ]
        kind = "outcomes"
    else:
        raise TypeError(f"not a columns record: {type(columns).__name__}")
    return {"kind": kind, "fields": fields}, [
        np.ascontiguousarray(getattr(columns, name)) for name in fields
    ]


def columns_from_arrays(header: Dict[str, object], arrays: Sequence[np.ndarray]):
    """Rebuild a :func:`columns_to_arrays` record from the wire form."""
    fields = list(header["fields"])
    if len(fields) != len(arrays):
        raise ValueError(
            f"header names {len(fields)} fields but {len(arrays)} arrays "
            "arrived"
        )
    values = dict(zip(fields, arrays))
    if header.get("kind") == "tasks":
        return TaskColumns(**values)
    if header.get("kind") == "outcomes":
        return OutcomeColumns(**values)
    raise ValueError(f"unknown columns kind {header.get('kind')!r}")
