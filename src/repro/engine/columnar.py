"""Columnar (structure-of-arrays) transport for trial outcomes.

Worker processes used to hand their shard results back as pickled
lists of :class:`~repro.engine.plan.TaskOutcome` objects -- one Python
object, one bool ndarray, and one tuple-of-tuples per task.  At
campaign scale (thousands of tasks) the pickle channel becomes the
bottleneck: most of the bytes are per-object overhead, not data.

This module packs a whole shard's outcomes into a handful of NumPy
arrays instead:

- ``indices`` / ``rates`` / ``trials`` / ``cells``: one element per
  task (rates travel as float64 verbatim, so the round trip is exact
  to the bit);
- checkpoint snapshots in CSR form (``ckpt_offsets`` into parallel
  ``ckpt_counts`` / ``ckpt_rates`` arrays), since tasks may hit a
  ragged subset of the plan's checkpoint schedule;
- masks as packed uint64 bit-planes (:mod:`repro.engine.bitplane`),
  either inline (``mask_offsets`` / ``mask_words``) or written into a
  parent-owned shared-memory window, in which case the columns travel
  mask-less and the parent re-attaches each mask from the buffer.

Packing and unpacking are pure reshapes: every float is copied
bit-for-bit and every mask round-trips through the same
``pack_matrix``/``unpack_mask`` pair the fused executor already uses,
so columnar transport preserves the engine's bit-identity contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import bitplane
from .plan import TaskOutcome


@dataclass
class OutcomeColumns:
    """One shard's outcomes as parallel arrays (structure-of-arrays)."""

    indices: np.ndarray
    """Plan-order task indices, int64 ``(n,)``."""
    rates: np.ndarray
    """Final success rates, float64 ``(n,)`` -- exact copies."""
    trials: np.ndarray
    """Trials per task, int64 ``(n,)``."""
    cells: np.ndarray
    """Cells per task, int64 ``(n,)``."""
    ckpt_offsets: np.ndarray
    """CSR row pointers into the checkpoint arrays, int64 ``(n + 1,)``."""
    ckpt_counts: np.ndarray
    """Checkpoint trial counts, int64 ``(total,)``."""
    ckpt_rates: np.ndarray
    """Checkpoint running rates, float64 ``(total,)``."""
    mask_offsets: Optional[np.ndarray] = None
    """CSR word pointers into ``mask_words`` (inline-mask mode only)."""
    mask_words: Optional[np.ndarray] = None
    """Packed uint64 masks, concatenated (inline-mask mode only)."""

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    def nbytes(self) -> int:
        """Bytes this record ships through the pickle channel."""
        total = (
            self.indices.nbytes
            + self.rates.nbytes
            + self.trials.nbytes
            + self.cells.nbytes
            + self.ckpt_offsets.nbytes
            + self.ckpt_counts.nbytes
            + self.ckpt_rates.nbytes
        )
        if self.mask_offsets is not None:
            total += self.mask_offsets.nbytes
        if self.mask_words is not None:
            total += self.mask_words.nbytes
        return int(total)


def pack_outcomes(
    outcomes: Sequence[TaskOutcome], include_masks: bool = True
) -> OutcomeColumns:
    """Pack outcomes into columns.

    With ``include_masks=False`` the caller has already written each
    packed mask somewhere out-of-band (the shared-memory window) and
    the columns travel mask-less.
    """
    n = len(outcomes)
    indices = np.fromiter(
        (outcome.index for outcome in outcomes), dtype=np.int64, count=n
    )
    rates = np.fromiter(
        (outcome.rate for outcome in outcomes), dtype=np.float64, count=n
    )
    trials = np.fromiter(
        (outcome.trials for outcome in outcomes), dtype=np.int64, count=n
    )
    cells = np.fromiter(
        (outcome.cells for outcome in outcomes), dtype=np.int64, count=n
    )
    ckpt_offsets = np.zeros(n + 1, dtype=np.int64)
    for i, outcome in enumerate(outcomes):
        ckpt_offsets[i + 1] = ckpt_offsets[i] + len(outcome.checkpoint_rates)
    total = int(ckpt_offsets[-1])
    ckpt_counts = np.zeros(total, dtype=np.int64)
    ckpt_rates = np.zeros(total, dtype=np.float64)
    cursor = 0
    for outcome in outcomes:
        for count, rate in outcome.checkpoint_rates:
            ckpt_counts[cursor] = count
            ckpt_rates[cursor] = rate
            cursor += 1
    mask_offsets: Optional[np.ndarray] = None
    mask_words: Optional[np.ndarray] = None
    if include_masks:
        mask_offsets = np.zeros(n + 1, dtype=np.int64)
        packed_rows: List[np.ndarray] = []
        for i, outcome in enumerate(outcomes):
            packed = bitplane.pack_matrix(np.asarray(outcome.mask, dtype=bool))
            packed_rows.append(packed)
            mask_offsets[i + 1] = mask_offsets[i] + packed.shape[0]
        mask_words = (
            np.concatenate(packed_rows)
            if packed_rows
            else np.zeros(0, dtype=np.uint64)
        )
    return OutcomeColumns(
        indices=indices,
        rates=rates,
        trials=trials,
        cells=cells,
        ckpt_offsets=ckpt_offsets,
        ckpt_counts=ckpt_counts,
        ckpt_rates=ckpt_rates,
        mask_offsets=mask_offsets,
        mask_words=mask_words,
    )


def unpack_outcomes(
    columns: OutcomeColumns,
    words_view: Optional[np.ndarray] = None,
    layout: Optional[Dict[int, Tuple[int, int]]] = None,
) -> List[TaskOutcome]:
    """Rebuild :class:`TaskOutcome` objects from columns.

    Masks come either from the columns' inline words or -- when
    ``words_view``/``layout`` name a shared-memory window and each
    task's ``(offset, words)`` slot in it -- from the shared buffer.
    """
    outcomes: List[TaskOutcome] = []
    for i in range(len(columns)):
        index = int(columns.indices[i])
        cells = int(columns.cells[i])
        if words_view is not None and layout is not None:
            offset, words = layout[index]
            mask = bitplane.unpack_mask(words_view[offset:offset + words], cells)
        elif columns.mask_words is not None and columns.mask_offsets is not None:
            lo = int(columns.mask_offsets[i])
            hi = int(columns.mask_offsets[i + 1])
            mask = bitplane.unpack_mask(columns.mask_words[lo:hi], cells)
        else:
            raise ValueError("columns carry no masks and no window was given")
        lo = int(columns.ckpt_offsets[i])
        hi = int(columns.ckpt_offsets[i + 1])
        snapshots = tuple(
            (int(columns.ckpt_counts[j]), float(columns.ckpt_rates[j]))
            for j in range(lo, hi)
        )
        outcomes.append(
            TaskOutcome(
                index=index,
                rate=float(columns.rates[i]),
                trials=int(columns.trials[i]),
                cells=cells,
                mask=mask,
                checkpoint_rates=snapshots,
            )
        )
    return outcomes
