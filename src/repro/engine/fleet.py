"""Multi-process / multi-host campaign fleet.

The third scheduling tier, above the in-plan executors and the
single-pool :class:`~repro.engine.scheduler.CampaignScheduler`::

    CampaignScheduler          one pool, plans pipelined
        FleetDispatcher        whole programs across workers/hosts
            host workers       ``simra-dram worker`` processes

A :class:`FleetDispatcher` distributes whole experiment programs
(figure id + scope recipe) across *fleet workers* -- separate
processes on this host or ``simra-dram worker`` processes on other
hosts -- over a length-prefixed columnar socket protocol.  Each frame
is an 8-byte length, a JSON header, and zero or more raw numpy array
segments: exactly the serialization of
:func:`~repro.engine.columnar.columns_to_arrays`, so task-spec and
outcome columns travel the wire in the same form the process-pool
executor ships them through pickle.

Supervision semantics match the single-pool tier:

- **breakers**: each worker is guarded by a
  :class:`~repro.health.breaker.CircuitBreaker`; repeated failures
  quarantine it and work routes to the survivors;
- **worker-death recovery**: a dead connection's in-flight item is
  re-issued to another worker (or run locally when none remain);
- **straggler re-issue**: with a deadline set, an overdue item is
  speculatively duplicated onto an idle worker, first result wins;
- **deterministic commit order**: results are delivered strictly in
  item order regardless of which worker finished first;
- **bit-identical artifacts**: workers rebuild the scope from its
  recipe and group sampling / measurement noise are serial-keyed,
  so a fleet campaign commits exactly the bytes the serial reference
  would.

Because the simulated fleet is a pure function of
(spec, instance, config), :func:`fleet_scope` can sample instances
*beyond* the paper's physical module counts -- scaling a campaign from
the 120 tested chips to thousands of vendor-profile chips without new
catalog data.
"""

from __future__ import annotations

import contextlib
import json
import os
import select
import socket
import struct
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExperimentError
from ..health.breaker import BreakerPolicy, CircuitBreaker
from .columnar import columns_from_arrays, columns_to_arrays
from .metrics import EngineMetrics

MAX_FRAME_BYTES = 1 << 30
"""Refuse frames above this size: a corrupt length prefix should fail
loudly, not allocate the machine away."""

_LENGTH = struct.Struct(">Q")
_HEADER_LENGTH = struct.Struct(">I")


# -- frame protocol --------------------------------------------------------


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            raise EOFError(
                "peer closed mid-frame"
                if chunks
                else "peer closed the connection"
            )
        chunks.extend(chunk)
    return bytes(chunks)


def send_frame(
    sock: socket.socket,
    header: Dict[str, Any],
    arrays: Sequence[np.ndarray] = (),
) -> None:
    """Ship one length-prefixed frame: JSON header + raw array segments.

    The header must be JSON-serializable; arrays travel as contiguous
    bytes described (dtype, shape) in the header, in order -- the wire
    twin of :func:`~repro.engine.columnar.columns_to_arrays`.
    """
    specs: List[Dict[str, Any]] = []
    segments: List[bytes] = []
    for array in arrays:
        array = np.ascontiguousarray(array)
        specs.append({"dtype": array.dtype.str, "shape": list(array.shape)})
        segments.append(array.tobytes())
    head = dict(header)
    head["arrays"] = specs
    head_bytes = json.dumps(head, sort_keys=True).encode("utf-8")
    payload = b"".join(
        [_HEADER_LENGTH.pack(len(head_bytes)), head_bytes, *segments]
    )
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_frame(
    sock: socket.socket,
) -> Tuple[Dict[str, Any], List[np.ndarray]]:
    """Receive one frame; raises :class:`EOFError` on a closed peer."""
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > MAX_FRAME_BYTES:
        raise ExperimentError(
            f"fleet frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit (corrupt stream?)"
        )
    payload = _recv_exact(sock, length)
    (head_len,) = _HEADER_LENGTH.unpack(payload[: _HEADER_LENGTH.size])
    cursor = _HEADER_LENGTH.size + head_len
    header = json.loads(payload[_HEADER_LENGTH.size:cursor].decode("utf-8"))
    arrays: List[np.ndarray] = []
    for spec in header.pop("arrays", []):
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(dim) for dim in spec["shape"])
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        arrays.append(
            np.frombuffer(payload[cursor:cursor + nbytes], dtype=dtype)
            .reshape(shape)
            .copy()
        )
        cursor += nbytes
    if cursor != len(payload):
        raise ExperimentError(
            f"fleet frame misdeclared its segments: {len(payload) - cursor} "
            "trailing bytes"
        )
    return header, arrays


def send_columns(
    sock: socket.socket, header: Dict[str, Any], columns
) -> None:
    """Ship a columns record (task or outcome) as one frame."""
    column_header, arrays = columns_to_arrays(columns)
    merged = dict(header)
    merged["columns"] = column_header
    send_frame(sock, merged, arrays)


def recv_columns(sock: socket.socket) -> Tuple[Dict[str, Any], Any]:
    """Receive a frame and rebuild its columns record (or ``None``)."""
    header, arrays = recv_frame(sock)
    column_header = header.get("columns")
    if column_header is None:
        return header, None
    return header, columns_from_arrays(column_header, arrays)


# -- scope recipes ---------------------------------------------------------


def scope_to_spec(scope) -> Dict[str, Any]:
    """A JSON-safe recipe a worker can rebuild the scope from.

    Benches must be catalog-built (serial ``identifier#instance``);
    the recipe is pure data, so shipping it to another host yields a
    bit-identical fleet there.
    """
    modules: List[List[Any]] = []
    for bench in scope.benches:
        serial = bench.module.serial
        identifier, sep, instance = serial.rpartition("#")
        if not sep:
            raise ExperimentError(
                "fleet dispatch requires catalog-built benches; "
                f"module {serial!r} has no instance-tagged serial"
            )
        modules.append([identifier, int(instance)])
    return {
        "config": asdict(scope.benches[0].module.config),
        "modules": modules,
        "banks": list(scope.banks),
        "subarrays": list(scope.subarrays),
        "groups_per_size": scope.groups_per_size,
        "trials": scope.trials,
    }


def scope_from_spec(spec: Dict[str, Any]):
    """Rebuild a :class:`CharacterizationScope` from its recipe."""
    # Imported lazily: characterization sits above the engine in the
    # package graph.
    from ..bender.testbench import TestBench
    from ..characterization.experiment import CharacterizationScope
    from ..config import SimulationConfig
    from ..dram.vendor import TESTED_MODULES

    config = SimulationConfig(**spec["config"])
    specs_by_identifier = {
        module.module_identifier: module for module in TESTED_MODULES
    }
    benches = []
    for identifier, instance in spec["modules"]:
        module_spec = specs_by_identifier.get(identifier)
        if module_spec is None:
            raise ExperimentError(
                f"scope recipe names unknown module {identifier!r}"
            )
        benches.append(
            TestBench.for_spec(module_spec, int(instance), config=config)
        )
    return CharacterizationScope(
        benches=benches,
        banks=tuple(spec["banks"]),
        subarrays=tuple(spec["subarrays"]),
        groups_per_size=int(spec["groups_per_size"]),
        trials=int(spec["trials"]),
    )


def fleet_scope(
    chips: int,
    config=None,
    banks: Sequence[int] = (0,),
    subarrays: Sequence[int] = (0,),
    groups_per_size: int = 2,
    trials: int = 4,
):
    """A sampled vendor-profile fleet of ``chips`` modules.

    Instances round-robin across the catalog's specs with *unbounded*
    instance indices: the simulated fleet is a pure function of
    (spec, instance, config), so instance indices beyond the paper's
    physical ``n_modules`` sample fresh chips from the same vendor
    process-variation envelope.  This is how a campaign scales from
    the paper's 120 tested chips to thousands.
    """
    from ..bender.testbench import TestBench
    from ..characterization.experiment import CharacterizationScope
    from ..config import SimulationConfig
    from ..dram.vendor import TESTED_MODULES

    if chips < 1:
        raise ExperimentError("fleet needs at least one chip")
    if config is None:
        config = SimulationConfig.quick()
    benches = [
        TestBench.for_spec(
            TESTED_MODULES[index % len(TESTED_MODULES)],
            index // len(TESTED_MODULES),
            config=config,
        )
        for index in range(chips)
    ]
    return CharacterizationScope(
        benches=benches,
        banks=tuple(banks),
        subarrays=tuple(subarrays),
        groups_per_size=groups_per_size,
        trials=trials,
    )


# -- worker side -----------------------------------------------------------


def serve_connection(
    sock: socket.socket,
    executor_name: str = "serial",
    jobs: Optional[int] = None,
) -> int:
    """Serve one dispatcher connection until shutdown or EOF.

    Items arrive as ``run`` frames naming a figure and a scope recipe;
    the worker rebuilds the scope (cached across items, so a campaign
    pays the bench builds once), runs the figure's experiment program
    on its local executor, and replies with the result in the store's
    encoded form -- the exact JSON-safe bytes-determining form the
    dispatcher will commit, so fleet artifacts are byte-equal to the
    serial reference.  Returns the number of items served.
    """
    from ..characterization.campaign import EXPERIMENT_PROGRAMS
    from ..characterization.reader import _encode, storable
    from .executors import make_executor

    send_frame(
        sock,
        {"type": "hello", "pid": os.getpid(), "executor": executor_name},
    )
    served = 0
    scope_cache: Dict[str, Any] = {}
    executor = make_executor(executor_name, jobs=jobs)
    try:
        while True:
            try:
                header, _ = recv_frame(sock)
            except (EOFError, OSError):
                return served
            kind = header.get("type")
            if kind == "shutdown":
                return served
            if kind == "ping":
                send_frame(sock, {"type": "pong"})
                continue
            if kind != "run":
                send_frame(
                    sock,
                    {"type": "error", "error": f"unknown frame {kind!r}"},
                )
                continue
            started = time.perf_counter()
            reply: Dict[str, Any] = {
                "type": "result",
                "item": header["item"],
                "figure": header["figure"],
            }
            try:
                key = json.dumps(header["scope"], sort_keys=True)
                scope = scope_cache.get(key)
                if scope is None:
                    # One fleet's benches at a time: a new recipe
                    # replaces the cache instead of growing it.
                    scope_cache.clear()
                    scope = scope_from_spec(header["scope"])
                    scope_cache[key] = scope
                program = EXPERIMENT_PROGRAMS[header["figure"]](scope)
                data = program.run(executor)
                reply["status"] = "ok"
                reply["data"] = _encode(storable(data))
            except Exception as exc:  # noqa: BLE001 -- travels as data
                reply["status"] = "error"
                reply["error"] = f"{type(exc).__name__}: {exc}"
            reply["elapsed_s"] = time.perf_counter() - started
            send_frame(sock, reply)
            served += 1
    finally:
        executor.close()


def run_worker(
    connect: str,
    executor_name: str = "serial",
    jobs: Optional[int] = None,
) -> int:
    """CLI entry: dial the dispatcher and serve until shutdown."""
    host, sep, port = connect.rpartition(":")
    if not sep or not host:
        raise ExperimentError(
            f"worker --connect wants HOST:PORT, got {connect!r}"
        )
    sock = socket.create_connection((host, int(port)))
    with contextlib.closing(sock):
        serve_connection(sock, executor_name=executor_name, jobs=jobs)
    return 0


# -- dispatcher side -------------------------------------------------------


@dataclass(frozen=True)
class FleetItem:
    """One unit of fleet work: a figure over a scope recipe."""

    index: int
    figure: str
    scope_spec: Dict[str, Any]


@dataclass
class FleetOutcome:
    """One settled fleet item."""

    figure: str
    status: str
    """``"ok"`` or ``"error"``."""
    data: Any = None
    """Decoded figure data (``status == "ok"``)."""
    error: Optional[str] = None
    worker: str = ""
    """Which worker's result won (``"local"`` for the fallback path)."""
    elapsed_s: float = 0.0


class _WorkerHandle:
    """Dispatcher-side state for one fleet worker connection."""

    def __init__(
        self, name: str, sock: socket.socket, policy: Optional[BreakerPolicy]
    ) -> None:
        self.name = name
        self.sock = sock
        self.breaker = CircuitBreaker(name, policy)
        self.alive = True
        self.item: Optional[int] = None
        self.issued_at = 0.0


class FleetDispatcher:
    """Distributes whole experiment programs across fleet workers.

    ``connections`` are ``(name, socket)`` pairs whose peers speak the
    worker protocol (:func:`serve_connection`) -- subprocesses from
    :class:`LocalFleet`, or ``simra-dram worker`` processes dialed in
    from other hosts.  :meth:`run` drives a batch of
    :class:`FleetItem` to completion with the supervision semantics
    described in the module docstring, and accounts everything on
    ``metrics`` (``fleet_items`` / ``fleet_reissued`` /
    ``fleet_worker_deaths`` plus the shared busy/wall counters).
    """

    def __init__(
        self,
        connections: Sequence[Tuple[str, socket.socket]],
        breaker_policy: Optional[BreakerPolicy] = None,
        item_deadline_s: Optional[float] = None,
    ) -> None:
        if item_deadline_s is not None and item_deadline_s <= 0:
            raise ExperimentError("item_deadline_s must be positive")
        self.metrics = EngineMetrics(executor="fleet")
        self.item_deadline_s = item_deadline_s
        self._workers = [
            _WorkerHandle(name, sock, breaker_policy)
            for name, sock in connections
        ]
        self.metrics.workers = max(1, len(self._workers))

    @property
    def workers(self) -> List[str]:
        """Names of the workers still alive."""
        return [w.name for w in self._workers if w.alive]

    def close(self) -> None:
        """Send shutdown to every live worker and close the sockets."""
        for worker in self._workers:
            if worker.alive:
                with contextlib.suppress(OSError):
                    send_frame(worker.sock, {"type": "shutdown"})
            worker.alive = False
            with contextlib.suppress(OSError):
                worker.sock.close()

    def __enter__(self) -> "FleetDispatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- internals ---------------------------------------------------------

    def _handshake(self, worker: _WorkerHandle) -> None:
        header, _ = recv_frame(worker.sock)
        if header.get("type") != "hello":
            raise ExperimentError(
                f"worker {worker.name} opened with {header.get('type')!r}, "
                "expected hello"
            )

    def _mark_dead(
        self,
        worker: _WorkerHandle,
        queue: List[int],
        results: Dict[int, FleetOutcome],
        running: Dict[int, int],
    ) -> None:
        """Bury one worker; re-queue its in-flight item if it is orphaned."""
        worker.alive = False
        worker.breaker.record_failure()
        self.metrics.fleet_worker_deaths += 1
        with contextlib.suppress(OSError):
            worker.sock.close()
        item = worker.item
        worker.item = None
        if item is None or item in results:
            return
        running[item] -= 1
        if running[item] <= 0:
            # No duplicate still carries this item: re-issue it.
            queue.insert(0, item)
            self.metrics.fleet_reissued += 1

    def _issue(
        self,
        worker: _WorkerHandle,
        item: FleetItem,
        running: Dict[int, int],
    ) -> bool:
        try:
            send_frame(
                worker.sock,
                {
                    "type": "run",
                    "item": item.index,
                    "figure": item.figure,
                    "scope": item.scope_spec,
                },
            )
        except OSError:
            return False
        worker.item = item.index
        worker.issued_at = time.perf_counter()
        running[item.index] = running.get(item.index, 0) + 1
        return True

    def _run_local(self, item: FleetItem) -> FleetOutcome:
        """Last-resort in-process execution (every worker gone/tripped)."""
        from ..characterization.campaign import EXPERIMENT_PROGRAMS

        started = time.perf_counter()
        try:
            scope = scope_from_spec(item.scope_spec)
            data = EXPERIMENT_PROGRAMS[item.figure](scope).run()
        except Exception as exc:  # noqa: BLE001 -- isolate items
            return FleetOutcome(
                figure=item.figure,
                status="error",
                error=f"{type(exc).__name__}: {exc}",
                worker="local",
                elapsed_s=time.perf_counter() - started,
            )
        from ..characterization.reader import canonical_data

        return FleetOutcome(
            figure=item.figure,
            status="ok",
            data=canonical_data(data),
            worker="local",
            elapsed_s=time.perf_counter() - started,
        )

    def run(
        self,
        items: Sequence[FleetItem],
        on_result: Optional[Callable[[int, FleetOutcome], None]] = None,
    ) -> List[FleetOutcome]:
        """Drive every item to a settled outcome, supervised.

        ``on_result`` streams ``(index, outcome)`` strictly in item
        order -- the hook fleet campaigns commit through, mirroring
        :meth:`~repro.engine.executors.ExecutorBase.run_many`.
        Exceptions it raises propagate (in-flight items are abandoned).
        """
        from ..characterization.reader import _decode

        started = time.perf_counter()
        for worker in self._workers:
            if worker.alive and worker.item is None and worker.issued_at == 0:
                try:
                    self._handshake(worker)
                except (EOFError, OSError, ExperimentError):
                    worker.alive = False
                    self.metrics.fleet_worker_deaths += 1
                worker.issued_at = time.perf_counter()
        queue: List[int] = [item.index for item in items]
        by_index = {item.index: item for item in items}
        if len(by_index) != len(items):
            raise ExperimentError("fleet items must have unique indices")
        results: Dict[int, FleetOutcome] = {}
        running: Dict[int, int] = {}
        emit_order = sorted(by_index)

        def deliver() -> None:
            while emit_order and emit_order[0] in results:
                index = emit_order.pop(0)
                if on_result is not None:
                    on_result(index, results[index])

        while len(results) < len(items):
            available = [
                w
                for w in self._workers
                if w.alive and w.item is None and w.breaker.allows()
            ]
            # Fill idle workers from the queue, in item order.
            while queue and available:
                index = queue.pop(0)
                if index in results:
                    continue
                worker = available.pop(0)
                if not self._issue(worker, by_index[index], running):
                    self._mark_dead(worker, queue, results, running)
                    queue.insert(0, index)
            busy = [w for w in self._workers if w.alive and w.item is not None]
            if not busy:
                # Nothing in flight and nothing issuable: the fleet is
                # gone (dead or breaker-tripped).  Preserve the
                # campaign by finishing the remainder in-process --
                # bit-identical by the usual serial-keying argument.
                for index in sorted(by_index):
                    if index not in results:
                        results[index] = self._run_local(by_index[index])
                        self.metrics.fleet_items += 1
                        self.metrics.busy_s += results[index].elapsed_s
                        deliver()
                break
            timeout = None
            if self.item_deadline_s is not None:
                overdue_at = (
                    min(w.issued_at for w in busy) + self.item_deadline_s
                )
                timeout = max(0.05, overdue_at - time.perf_counter())
            readable, _, _ = select.select(
                [w.sock for w in busy], [], [], timeout
            )
            if not readable:
                # Deadline passed with nothing finishing: duplicate the
                # most-overdue item onto an idle worker (once per
                # check); first result back wins, the loser's reply is
                # discarded -- harmless, results are bit-identical.
                idle = [
                    w
                    for w in self._workers
                    if w.alive and w.item is None and w.breaker.allows()
                ]
                now = time.perf_counter()
                for worker in sorted(busy, key=lambda w: w.issued_at):
                    if not idle:
                        break
                    assert self.item_deadline_s is not None
                    if now - worker.issued_at < self.item_deadline_s:
                        break
                    index = worker.item
                    if index is None or running.get(index, 0) > 1:
                        continue
                    spare = idle.pop(0)
                    if self._issue(spare, by_index[index], running):
                        self.metrics.stragglers_reissued += 1
                    else:
                        self._mark_dead(spare, queue, results, running)
                continue
            ready = {id(sock) for sock in readable}
            for worker in list(busy):
                if id(worker.sock) not in ready:
                    continue
                try:
                    header, _ = recv_frame(worker.sock)
                except (EOFError, OSError):
                    self._mark_dead(worker, queue, results, running)
                    continue
                if header.get("type") != "result":
                    continue
                index = int(header["item"])
                worker.item = None
                running[index] = max(0, running.get(index, 0) - 1)
                worker.breaker.record_success()
                if index in results:
                    continue  # a duplicate already won this item
                elapsed = float(header.get("elapsed_s", 0.0))
                if header.get("status") == "ok":
                    results[index] = FleetOutcome(
                        figure=header["figure"],
                        status="ok",
                        data=_decode(header["data"]),
                        worker=worker.name,
                        elapsed_s=elapsed,
                    )
                else:
                    results[index] = FleetOutcome(
                        figure=header["figure"],
                        status="error",
                        error=str(header.get("error")),
                        worker=worker.name,
                        elapsed_s=elapsed,
                    )
                self.metrics.fleet_items += 1
                self.metrics.busy_s += elapsed
                deliver()
        deliver()
        self.metrics.wall_s += time.perf_counter() - started
        return [results[item.index] for item in items]


# -- localhost backend -----------------------------------------------------


class LocalFleet:
    """Spawn localhost worker subprocesses speaking the fleet protocol.

    The test/CI backend: a listener on ``127.0.0.1`` accepts one
    dial-in per spawned ``python -m repro.cli worker`` subprocess.
    Context-manager exit shuts the workers down; :meth:`kill_worker`
    SIGKILLs one mid-run to exercise the dispatcher's death recovery.
    """

    def __init__(
        self,
        workers: int = 2,
        executor_name: str = "serial",
        jobs: Optional[int] = None,
        spawn_timeout_s: float = 60.0,
    ) -> None:
        if workers < 1:
            raise ExperimentError("fleet needs at least one worker")
        self.worker_count = workers
        self.executor_name = executor_name
        self.jobs = jobs
        self.spawn_timeout_s = spawn_timeout_s
        self.connections: List[Tuple[str, socket.socket]] = []
        self.processes: List[subprocess.Popen] = []
        self._listener: Optional[socket.socket] = None

    def start(self) -> "LocalFleet":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(self.worker_count)
        listener.settimeout(self.spawn_timeout_s)
        self._listener = listener
        port = listener.getsockname()[1]
        src_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        src_root = os.path.dirname(src_root)  # .../src
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--executor",
            self.executor_name,
        ]
        if self.jobs is not None:
            command += ["--jobs", str(self.jobs)]
        try:
            for index in range(self.worker_count):
                self.processes.append(
                    subprocess.Popen(command, env=env, stdin=subprocess.DEVNULL)
                )
            for index in range(self.worker_count):
                conn, _ = listener.accept()
                self.connections.append((f"worker-{index}", conn))
        except (socket.timeout, OSError) as exc:
            self.close()
            raise ExperimentError(
                f"fleet workers failed to dial in: {exc}"
            ) from exc
        return self

    def dispatcher(self, **kwargs) -> FleetDispatcher:
        """A dispatcher over this fleet's live connections."""
        return FleetDispatcher(self.connections, **kwargs)

    def kill_worker(self, index: int) -> int:
        """SIGKILL one worker process (chaos for death-recovery tests)."""
        process = self.processes[index]
        process.kill()
        process.wait(timeout=30)
        return process.pid

    def close(self) -> None:
        for _, conn in self.connections:
            with contextlib.suppress(OSError):
                send_frame(conn, {"type": "shutdown"})
            with contextlib.suppress(OSError):
                conn.close()
        self.connections = []
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
            self._listener = None
        for process in self.processes:
            with contextlib.suppress(Exception):
                process.wait(timeout=10)
        for process in self.processes:
            if process.poll() is None:
                with contextlib.suppress(Exception):
                    process.kill()
                    process.wait(timeout=10)
        self.processes = []

    def __enter__(self) -> "LocalFleet":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# -- fleet campaigns -------------------------------------------------------


@dataclass
class FleetCampaignResult:
    """Outcome of one fleet-distributed campaign."""

    completed: List[str] = field(default_factory=list)
    failures: Dict[str, str] = field(default_factory=dict)
    data: Dict[str, Any] = field(default_factory=dict)
    outcomes: List[FleetOutcome] = field(default_factory=list)
    engine_stats: Optional[Dict[str, Any]] = None

    @property
    def succeeded(self) -> bool:
        return not self.failures


def _fleet_fingerprint(scope) -> Dict[str, Any]:
    """Mirror of ``Campaign._fingerprint``: config + scope knobs."""
    config = scope.benches[0].module.config
    fingerprint = dict(config.fingerprint())
    fingerprint.update(
        modules=len(scope.benches),
        banks=list(scope.banks),
        subarrays=list(scope.subarrays),
        groups_per_size=scope.groups_per_size,
        trials=scope.trials,
    )
    return fingerprint


def run_fleet_campaign(
    scope,
    figures: Sequence[str],
    dispatcher: FleetDispatcher,
    store=None,
) -> FleetCampaignResult:
    """Run a campaign's figures distributed across a fleet.

    Commits mirror :class:`~repro.characterization.campaign.Campaign`
    exactly -- journal intent, atomic artifact write, manifest update,
    journal done, strictly in figure order -- so the stored artifacts
    are byte-equal to a serial run and ``simra-dram audit`` passes on
    the result with no fleet-specific handling.
    """
    from ..characterization.campaign import EXPERIMENT_PROGRAMS
    from ..characterization.reader import storable
    from ..characterization.store import CampaignManifest

    unknown = [name for name in figures if name not in EXPERIMENT_PROGRAMS]
    if unknown:
        raise ExperimentError(
            f"unknown experiments {unknown}; "
            f"known: {sorted(EXPERIMENT_PROGRAMS)}"
        )
    if not figures:
        raise ExperimentError("fleet campaign needs at least one figure")
    spec = scope_to_spec(scope)
    items = [
        FleetItem(index=index, figure=name, scope_spec=spec)
        for index, name in enumerate(figures)
    ]
    result = FleetCampaignResult()
    config = scope.benches[0].module.config
    lock = store.locked() if store is not None else contextlib.nullcontext()
    with lock:
        manifest: Optional[CampaignManifest] = None
        if store is not None:
            store.clean_stale_tmp()
            store.clear_journal()
            manifest = CampaignManifest(
                planned=list(figures),
                completed=[],
                fingerprint=_fleet_fingerprint(scope),
                serials=[bench.module.serial for bench in scope.benches],
            )
            store.save_manifest(manifest)

        def commit(index: int, outcome: FleetOutcome) -> None:
            name = outcome.figure
            if outcome.status != "ok":
                result.failures[name] = outcome.error or "unknown error"
                return
            result.data[name] = outcome.data
            if store is not None and manifest is not None:
                store.journal_append(
                    {"event": "commit-intent", "experiment": name}
                )
                store.save(
                    name,
                    storable(outcome.data),
                    config=config,
                    notes=f"campaign experiment {name}",
                )
                if name not in manifest.completed:
                    manifest.completed.append(name)
                store.save_manifest(manifest)
                store.journal_append(
                    {"event": "commit-done", "experiment": name}
                )
            result.completed.append(name)

        result.outcomes = dispatcher.run(items, on_result=commit)
    result.engine_stats = dispatcher.metrics.as_dict()
    return result
