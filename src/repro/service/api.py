"""Route handling for the result query service (transport-agnostic).

:class:`ResultService` maps HTTP-shaped requests onto the storage
read path and the PR 5 analytics, returning plain
:class:`ServiceResponse` records the asyncio transport (or a test)
serializes.  Keeping it synchronous and transport-free means the same
handler is exercised by unit tests, the stdlib HTTP server, and the
load benchmark without a socket in sight.

Endpoints (all ``GET``/``HEAD``):

- ``/`` -- endpoint index and store location;
- ``/figures`` -- stored figure inventory (name, format, ETag);
- ``/figures/{name}`` -- one figure's metadata + decoded payload;
- ``/fleet/summary`` -- campaign manifest + per-figure summary
  statistics across the module fleet;
- ``/ci/{name}`` -- seeded percentile-bootstrap CI over the figure's
  per-group summary means (``?confidence=&resamples=&seed=``);
- ``/audit/status`` -- last stored ``audit-report``, lock holder, and
  journal depth;
- ``/healthz`` / ``/readyz`` / ``/metrics`` -- liveness, readiness
  (store reachable, not draining, store-read breaker closed), and the
  resilience counters.  These are *control* endpoints: the transport
  answers them inline on the event loop -- never admitted against the
  request budget, never offloaded to the read pool -- so probes keep
  working while the store path is saturated or broken.

Conditional requests: every 200 carries a strong ``ETag`` derived
from the store's content digests (``"sha256:<digest>"`` for one
figure -- stable across a v2->v3 ``migrate`` because both encodings
share a digest -- and a state-token digest for list endpoints); a
matching ``If-None-Match`` short-circuits to ``304`` without loading
anything.

Error mapping: an absent artifact is ``404``; a stored artifact that
fails integrity (:class:`~repro.errors.ResultCorruptionError`,
including checksum mismatches) is ``409 Conflict`` -- the data exists
but cannot be trusted; a store locked against the operation
(:class:`~repro.errors.StoreLockedError`) is ``503`` with
``Retry-After``; a *transient* read fault (``OSError`` out of the
filesystem) is also ``503 + Retry-After`` -- retryable, unlike the
409s; malformed query parameters are ``400``.

Figure reads are guarded by the store-read circuit breaker in the
bound :class:`~repro.service.resilience.ResilienceState`: repeated
read faults trip it, an open breaker turns figure reads into fast
``503``s (and flips ``/readyz``) until a half-open probe read
succeeds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from ..characterization.reader import ResultReader, _encode
from ..characterization.stats import bootstrap_mean_ci, summarize
from ..errors import (
    ExperimentError,
    ResultCorruptionError,
    StoreLockedError,
)
from .cache import HotFigureCache
from .resilience import ResilienceState

_JSON_TYPE = "application/json; charset=utf-8"

CONTROL_PATHS = ("/healthz", "/readyz", "/metrics")
"""Endpoints the transport must answer inline (no admission, no
offload): degradation signals have to work while the store path
doesn't."""


@dataclass
class ServiceResponse:
    """One materialized HTTP response (status, headers, JSON body)."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def reason(self) -> str:
        return {
            200: "OK",
            304: "Not Modified",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            409: "Conflict",
            500: "Internal Server Error",
            503: "Service Unavailable",
            504: "Gateway Timeout",
        }.get(self.status, "Unknown")


class _HttpError(Exception):
    """Internal routing error carrying an HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _json_response(
    status: int,
    payload: Any,
    etag: Optional[str] = None,
    extra_headers: Optional[Dict[str, str]] = None,
) -> ServiceResponse:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    headers = {"Content-Type": _JSON_TYPE}
    if etag is not None:
        headers["ETag"] = etag
    if extra_headers:
        headers.update(extra_headers)
    return ServiceResponse(status=status, headers=headers, body=body)


def _etag_matches(header_value: str, etag: str) -> bool:
    """Whether an ``If-None-Match`` header revalidates this ETag."""
    for candidate in header_value.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:].strip()
        if candidate == "*" or candidate == etag:
            return True
    return False


def _walk_summaries(encoded: Any, means: List[float]) -> None:
    """Collect every encoded summary's mean, in document order."""
    if isinstance(encoded, dict):
        if encoded.get("__distribution_summary__"):
            means.append(float(encoded["mean"]))
            return
        for item in encoded.values():
            _walk_summaries(item, means)
    elif isinstance(encoded, list):
        for item in encoded:
            _walk_summaries(item, means)


class ResultService:
    """The query service's routing and representation layer."""

    def __init__(
        self,
        reader: ResultReader,
        cache: Optional[HotFigureCache] = None,
        resilience: Optional[ResilienceState] = None,
    ):
        self._reader = reader
        self._cache = cache if cache is not None else HotFigureCache(reader)
        self._resilience = (
            resilience if resilience is not None else ResilienceState()
        )
        self.requests = 0
        self.not_modified = 0

    @property
    def reader(self) -> ResultReader:
        """The lock-free read path this service fronts."""
        return self._reader

    @property
    def cache(self) -> HotFigureCache:
        """The digest-keyed hot-figure cache."""
        return self._cache

    @property
    def resilience(self) -> ResilienceState:
        """The resilience state behind /readyz, /metrics, and the
        store-read breaker."""
        return self._resilience

    def bind_resilience(self, state: ResilienceState) -> None:
        """Adopt the transport's resilience state (budgets + stats).

        The server calls this on construction so the breaker the
        routing layer feeds is the one whose trips the transport's
        ``/metrics`` and ``/readyz`` report.  A service used without a
        server keeps its own default state, so the control endpoints
        and breaker guard work in unit tests and the benchmark too.
        """
        self._resilience = state

    # -- request entry point -------------------------------------------------

    def handle(
        self,
        method: str,
        target: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> ServiceResponse:
        """Route one request; never raises.

        ``headers`` keys are matched case-insensitively.  ``HEAD`` is
        handled by the transport (same headers, no body), so it routes
        like ``GET`` here.
        """
        self.requests += 1
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        if method.upper() not in ("GET", "HEAD"):
            return _json_response(
                405,
                {"error": f"method {method} not allowed"},
                extra_headers={"Allow": "GET, HEAD"},
            )
        split = urlsplit(target)
        path = unquote(split.path)
        query = parse_qs(split.query)
        if path in CONTROL_PATHS:
            return self._control(path)
        try:
            etag, payload = self._route(path, query)
        except _HttpError as exc:
            extra = (
                {"Retry-After": "1"} if exc.status == 503 else None
            )
            return _json_response(
                exc.status, {"error": str(exc)}, extra_headers=extra
            )
        except ResultCorruptionError as exc:
            return _json_response(409, {"error": str(exc)})
        except StoreLockedError as exc:
            return _json_response(
                503, {"error": str(exc)}, extra_headers={"Retry-After": "1"}
            )
        except OSError as exc:
            # A transient filesystem fault (EIO, chaos injection): the
            # client should retry -- unlike a 409, nothing is known to
            # be damaged.
            self._resilience.stats.count("read_faults")
            return _json_response(
                503,
                {"error": f"transient store read fault: {exc}"},
                extra_headers={"Retry-After": "1"},
            )
        except ExperimentError as exc:
            return _json_response(500, {"error": str(exc)})
        if etag is not None:
            conditional = headers.get("if-none-match")
            if conditional and _etag_matches(conditional, etag):
                self.not_modified += 1
                return ServiceResponse(status=304, headers={"ETag": etag})
        return _json_response(200, payload, etag=etag)

    # -- routing ---------------------------------------------------------------

    def _route(
        self, path: str, query: Dict[str, List[str]]
    ) -> Tuple[Optional[str], Any]:
        if path in ("", "/"):
            return None, self._index()
        if path == "/figures":
            return self._figures()
        if path.startswith("/figures/"):
            return self._figure(path[len("/figures/"):])
        if path == "/fleet/summary":
            return self._fleet_summary()
        if path.startswith("/ci/"):
            return self._ci(path[len("/ci/"):], query)
        if path == "/audit/status":
            return self._audit_status()
        raise _HttpError(404, f"no such endpoint {path!r}")

    def _index(self) -> Dict[str, Any]:
        return {
            "service": "simra-dram results",
            "store": str(self._reader.directory),
            "endpoints": [
                "/figures",
                "/figures/{name}",
                "/fleet/summary",
                "/ci/{name}",
                "/audit/status",
                "/healthz",
                "/readyz",
                "/metrics",
            ],
            "cache": self._cache.stats(),
        }

    # -- degradation signals ---------------------------------------------------

    def _control(self, path: str) -> ServiceResponse:
        """``/healthz`` / ``/readyz`` / ``/metrics`` (no ETags: live
        signals, not cacheable representations)."""
        if path == "/healthz":
            # Liveness: the process answers, nothing more is claimed.
            return _json_response(200, {"status": "alive"})
        if path == "/readyz":
            ready, checks = self._resilience.readiness(self._reader)
            status = 200 if ready else 503
            extra = None if ready else {"Retry-After": "1"}
            return _json_response(
                status,
                {"ready": ready, "checks": checks},
                extra_headers=extra,
            )
        return _json_response(200, self._metrics())

    def _metrics(self) -> Dict[str, Any]:
        """The counters behind ``/metrics`` (plain JSON, no scraping
        format -- consistent with the rest of the JSON API)."""
        state = self._resilience
        return {
            "server": state.stats.as_dict(),
            "admission": state.admission.as_dict(),
            "breaker": state.breaker.as_dict(),
            "draining": state.draining,
            "service": {
                "requests": self.requests,
                "not_modified": self.not_modified,
            },
            "cache": self._cache.stats(),
        }

    def _figure_name(self, raw: str) -> str:
        name = raw.strip("/")
        if not name or "/" in name or name.startswith("."):
            raise _HttpError(404, f"invalid figure name {raw!r}")
        return name

    def _load(self, name: str) -> Tuple[str, Any]:
        """``(digest, decoded payload)`` with HTTP error mapping.

        Guarded by the store-read circuit breaker: an open breaker
        short-circuits to ``503`` without touching the disk; read
        faults (I/O errors, integrity failures) feed it, successes
        close it again from half-open.  A plain 404 is not a fault.
        """
        breaker = self._resilience.breaker
        if not breaker.allows():
            raise _HttpError(
                503,
                "store-read circuit breaker is open after repeated read "
                "faults; retry shortly",
            )
        if not self._reader.has(name):
            raise _HttpError(404, f"no stored result named {name!r}")
        try:
            result = self._cache.get(name)
        except (ResultCorruptionError, OSError):
            breaker.record_failure()
            raise
        breaker.record_success()
        return result

    def _figures(self) -> Tuple[str, Any]:
        listing = []
        for name in self._reader.names():
            entry: Dict[str, Any] = {"name": name}
            # The coarse integrity verdict ("ok" / "legacy" /
            # "corrupt" / "mismatch"); damaged entries stay listed --
            # hiding them would make damage look like deletion -- but
            # carry no ETag or metadata.
            entry["status"] = self._reader.verify(name)
            if entry["status"] in ("ok", "legacy"):
                meta = self._reader.metadata(name)
                entry["format_version"] = meta.get("format_version")
                entry["notes"] = meta.get("notes")
                entry["etag"] = f'"sha256:{self._reader.content_digest(name)}"'
            listing.append(entry)
        etag = f'"state:{self._reader.state_token()}"'
        return etag, {"figures": listing, "count": len(listing)}

    def _figure(self, raw: str) -> Tuple[str, Any]:
        name = self._figure_name(raw)
        digest, payload = self._load(name)
        etag = f'"sha256:{digest}"'
        meta = self._reader.metadata(name)
        return etag, {
            "name": name,
            "etag": etag,
            "format_version": meta.get("format_version"),
            "library_version": meta.get("library_version"),
            "config": meta.get("config"),
            "notes": meta.get("notes"),
            "quality": meta.get("quality"),
            # Decoded payloads carry DistributionSummary objects;
            # re-encode to the marker-dict JSON form clients parse.
            "data": _encode(payload),
        }

    def _fleet_summary(self) -> Tuple[str, Any]:
        manifest = self._reader.load_manifest()
        figures: Dict[str, Any] = {}
        for name in self._reader.names():
            try:
                _, payload = self._load(name)
            except (_HttpError, ResultCorruptionError):
                continue
            means: List[float] = []
            _walk_summaries(_encode(payload), means)
            if not means:
                continue
            figures[name] = {
                "summaries": len(means),
                "across_groups": _encode(summarize(means)),
            }
        etag = f'"state:{self._reader.state_token()}"'
        return etag, {
            "figures": figures,
            "manifest": (
                None
                if manifest is None
                else {
                    "planned": list(manifest.planned),
                    "completed": list(manifest.completed),
                    "failures": sorted(manifest.failures),
                    "modules": len(manifest.serials),
                }
            ),
        }

    def _ci(
        self, raw: str, query: Dict[str, List[str]]
    ) -> Tuple[str, Any]:
        name = self._figure_name(raw)

        def _param(key: str, default: float, cast) -> Any:
            values = query.get(key)
            if not values:
                return default
            try:
                return cast(values[-1])
            except (TypeError, ValueError):
                raise _HttpError(
                    400, f"query parameter {key}={values[-1]!r} is not a "
                    f"{cast.__name__}"
                )

        confidence = _param("confidence", 0.95, float)
        resamples = _param("resamples", 2000, int)
        seed = _param("seed", 0, int)
        digest, payload = self._load(name)
        means: List[float] = []
        _walk_summaries(_encode(payload), means)
        if not means:
            raise _HttpError(
                400,
                f"stored result {name!r} carries no distribution "
                "summaries to bootstrap",
            )
        try:
            ci = bootstrap_mean_ci(
                means, confidence=confidence, resamples=resamples, seed=seed
            )
        except ExperimentError as exc:
            raise _HttpError(400, str(exc))
        # The CI depends on the query knobs as well as the content, so
        # its ETag extends the artifact digest with them.
        ci_etag = f'"sha256:{digest}:ci:{confidence}:{resamples}:{seed}"'
        return ci_etag, {
            "name": name,
            "groups": len(means),
            "confidence": ci.confidence,
            "resamples": ci.resamples,
            "seed": seed,
            "mean": ci.mean,
            "low": ci.low,
            "high": ci.high,
            "halfwidth": ci.halfwidth,
        }

    def _audit_status(self) -> Tuple[str, Any]:
        report: Optional[Any] = None
        status = "never-audited"
        if self._reader.has("audit-report"):
            _, report = self._load("audit-report")
            report = _encode(report)
            status = "pass" if report.get("passed") else "fail"
        manifest = self._reader.load_manifest()
        etag = f'"state:{self._reader.state_token()}"'
        return etag, {
            "status": status,
            "report": report,
            "lock_holder": self._reader.lock_holder(),
            "journal_entries": len(self._reader.journal_entries()),
            "completed": (
                len(manifest.completed) if manifest is not None else 0
            ),
        }
