"""HTTP read service over a stored characterization campaign.

The service tier sits on the storage layer's read path
(:class:`~repro.characterization.reader.ResultReader`) and never
writes: it serves stored figures, fleet summaries, bootstrap
confidence intervals, and audit status over a small stdlib-only
asyncio HTTP API (``simra-dram serve``), with ETags keyed off the
store's content digests and an in-process hot-figure cache shared
with the CLI.
"""

from .cache import HotFigureCache
from .resilience import (
    AdmissionController,
    ResiliencePolicy,
    ResilienceState,
    ServerStats,
    StoreReadBreaker,
)
from .api import ResultService, ServiceResponse
from .http import ResultServer

__all__ = [
    "HotFigureCache",
    "AdmissionController",
    "ResiliencePolicy",
    "ResilienceState",
    "ServerStats",
    "StoreReadBreaker",
    "ResultService",
    "ServiceResponse",
    "ResultServer",
]
