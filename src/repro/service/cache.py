"""In-process hot-figure cache for the result read path.

Decoded figure payloads are expensive relative to a ``stat`` call
(JSON parse + summary reconstruction), and the figures millions of
readers want are few: exactly the shape an LRU over content digests
serves well.  :class:`HotFigureCache` keys every entry by the
artifact's sha256 content digest (what the store records at save time
and :meth:`~repro.characterization.reader.ResultReader.content_digest`
memoizes per stat signature), so:

- a **hit** costs two ``stat`` calls and no hashing, parsing, or
  verification;
- any committed write changes the artifact's stat signature, the
  digest lookup sees a different ETag, and the stale entry is replaced
  -- the journal/mtime watch *is* the digest check, there is no timer
  to race;
- because version-2 and version-3 encodings of the same data share a
  digest, a ``simra-dram migrate`` does not evict anything.

The same instance backs the CLI and the HTTP service, so a service
colocated with analytics tooling shares one working set.

The cache is thread-safe: the server offloads store reads to a small
thread pool (PR 8), so ``get`` races itself.  A lock guards the LRU
bookkeeping; the miss-path load runs *outside* it (a slow disk read
must not serialize every other reader), so two racing misses may both
load -- the second insert simply wins, which is harmless because
entries are keyed by content digest.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from ..characterization.reader import ResultReader


class HotFigureCache:
    """LRU of decoded figure payloads keyed by content digest."""

    def __init__(self, reader: ResultReader, capacity: int = 32):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self._reader = reader
        self._capacity = int(capacity)
        self._entries: "OrderedDict[str, Tuple[str, Any]]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._state_token: Optional[str] = None

    @property
    def reader(self) -> ResultReader:
        """The read path this cache fronts."""
        return self._reader

    @property
    def capacity(self) -> int:
        """Maximum number of resident figures."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self,
        name: str,
        loader: Optional[Callable[[str], Any]] = None,
    ) -> Tuple[str, Any]:
        """``(etag, payload)`` of one stored figure, cached by digest.

        The digest lookup itself is stat-memoized by the reader, so a
        hit never parses or hashes anything.  ``loader`` overrides the
        miss path (defaults to a verified ``reader.load``); corruption
        and missing-artifact errors propagate to the caller untouched
        -- a damaged artifact is never cached.
        """
        etag = self._reader.content_digest(name)
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None and entry[0] == etag:
                self.hits += 1
                self._entries.move_to_end(name)
                return etag, entry[1]
            if entry is not None:
                self.invalidations += 1
                self._entries.pop(name, None)
            self.misses += 1
        # The load runs unlocked: a slow read must not serialize every
        # other reader.  Racing misses both load; last insert wins.
        payload = (loader or self._reader.load)(name)
        with self._lock:
            self._entries[name] = (etag, payload)
            self._entries.move_to_end(name)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return etag, payload

    def watch(self) -> bool:
        """Coarse store-change probe; drops everything on a change.

        Compares the reader's :meth:`~repro.characterization.reader.
        ResultReader.state_token` (artifact stat signatures + manifest
        + journal) against the last observed one and clears the cache
        when it moved.  Per-entry digest checks already make stale
        hits impossible; this is the belt-and-braces sweep a
        long-running service runs between requests so deleted
        artifacts do not pin memory.  Returns whether a change was
        seen.
        """
        token = self._reader.state_token()
        with self._lock:
            if token == self._state_token:
                return False
            changed = self._state_token is not None
            self._state_token = token
            if changed and self._entries:
                self.invalidations += len(self._entries)
                self._entries.clear()
            return changed

    def clear(self) -> None:
        """Drop every resident entry."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Counters for ``/figures`` headers and the benchmark report."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self._capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
