"""Stdlib-asyncio HTTP/1.1 transport for the result query service.

One :class:`ResultServer` wraps a :class:`~repro.service.api.
ResultService` behind ``asyncio.start_server``: thousands of
concurrent keep-alive connections multiplex onto one event loop, and
because every request resolves through the lock-free read path (stat
calls + the hot-figure cache), the per-request handler never blocks
the loop on anything slower than a small file read.

Protocol scope (deliberately minimal -- this is a results API, not a
general web server): ``GET``/``HEAD`` only, no request bodies, no TLS,
no chunked encoding; responses always carry ``Content-Length`` and
honor ``Connection: close``.  Malformed requests get a ``400`` and the
connection is closed.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Optional, Set, Tuple

from .api import ResultService, ServiceResponse

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_LINES = 100
_DEFAULT_KEEPALIVE_S = 30.0


class ResultServer:
    """Asyncio HTTP server over one :class:`ResultService`."""

    def __init__(
        self,
        service: ResultService,
        host: str = "127.0.0.1",
        port: int = 0,
        keepalive_s: float = _DEFAULT_KEEPALIVE_S,
        backlog: int = 1024,
    ):
        self._service = service
        self._host = host
        self._port = port
        self._keepalive_s = keepalive_s
        self._backlog = backlog
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self.connections = 0
        self.requests = 0

    @property
    def service(self) -> ResultService:
        """The routing layer this transport serves."""
        return self._service

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves on start)."""
        if self._server is None or not self._server.sockets:
            return (self._host, self._port)
        sock = self._server.sockets[0]
        name = sock.getsockname()
        return (name[0], name[1])

    async def start(self) -> None:
        """Bind and start accepting connections."""
        # The default backlog (100) RSTs connection bursts bigger than
        # the accept queue -- a thousand readers arriving together is
        # exactly this service's design load, so ask for more (the
        # kernel still clamps to net.core.somaxconn).
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self._host,
            port=self._port,
            backlog=self._backlog,
        )

    async def stop(self) -> None:
        """Stop accepting, then close idle keep-alive connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Keep-alive handlers otherwise linger until their read times
        # out; cancelling here lets asyncio.run() exit without noise.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()

    async def serve_forever(self) -> None:
        """Run until cancelled (what ``simra-dram serve`` awaits)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self.connections += 1
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader), timeout=self._keepalive_s
                    )
                except asyncio.TimeoutError:
                    break
                if request is None:
                    break
                method, target, headers, malformed = request
                if malformed:
                    await self._write_response(
                        writer,
                        "GET",
                        ServiceResponse(
                            status=400,
                            headers={"Content-Type": "text/plain"},
                            body=b"malformed request",
                        ),
                        close=True,
                    )
                    break
                self.requests += 1
                response = self._service.handle(method, target, headers)
                close = headers.get("connection", "").lower() == "close"
                await self._write_response(
                    writer, method, response, close=close
                )
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown.  Exit normally instead of cancelled:
            # the stdlib stream protocol's done-callback calls
            # task.exception() unguarded, which re-raises for tasks
            # that finish cancelled and spams the loop's error log.
            pass
        finally:
            writer.close()
            with contextlib.suppress(
                ConnectionError, OSError, asyncio.CancelledError
            ):
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, dict, bool]]:
        """Parse one request head; ``None`` on clean EOF.

        Returns ``(method, target, headers, malformed)``.
        """
        line = await reader.readline()
        if not line:
            return None
        if len(line) > _MAX_REQUEST_LINE:
            return ("GET", "/", {}, True)
        parts = line.decode("latin1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            return ("GET", "/", {}, True)
        method, target, _version = parts
        headers = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if not line:
                return None
            text = line.decode("latin1").strip()
            if not text:
                break
            key, sep, value = text.partition(":")
            if not sep:
                return (method, target, headers, True)
            headers[key.strip().lower()] = value.strip()
        else:
            return (method, target, headers, True)
        # GET/HEAD carry no body; anything that declares one is out of
        # protocol scope for this read-only API.
        if headers.get("content-length", "0") not in ("", "0"):
            return (method, target, headers, True)
        return (method, target, headers, False)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        response: ServiceResponse,
        close: bool,
    ) -> None:
        body = b"" if method.upper() == "HEAD" else response.body
        head = [f"HTTP/1.1 {response.status} {response.reason}"]
        headers = dict(response.headers)
        headers["Content-Length"] = str(
            0 if response.status == 304 else len(response.body)
        )
        headers["Connection"] = "close" if close else "keep-alive"
        for key, value in headers.items():
            head.append(f"{key}: {value}")
        payload = ("\r\n".join(head) + "\r\n\r\n").encode("latin1")
        if response.status != 304:
            payload += body
        writer.write(payload)
        await writer.drain()
