"""Stdlib-asyncio HTTP/1.1 transport for the result query service.

One :class:`ResultServer` wraps a :class:`~repro.service.api.
ResultService` behind ``asyncio.start_server``: thousands of
concurrent keep-alive connections multiplex onto one event loop.
Store-backed requests are offloaded to a small thread pool with a
per-request deadline, so one slow or faulted disk read occupies one
pool thread instead of freezing every connection, and the event loop
itself only ever touches sockets, counters, and the admission gate.

Production posture (PR 8) -- the transport enforces the budgets in
:class:`~repro.service.resilience.ResiliencePolicy`:

- **admission control**: at most ``max_concurrent_requests`` offloaded
  requests in flight; excess requests get an immediate
  ``503 + Retry-After`` (counted as shed) instead of queueing
  unboundedly.  ``max_connections`` bounds the socket count the same
  way.
- **request deadlines**: an offloaded read past ``request_timeout_s``
  answers ``504`` and the connection closes; the worker thread
  finishes into the void but keeps its admission slot until it does,
  so a stalled disk cannot admit unbounded work behind itself.
- **bounded writes**: ``writer.drain()`` is capped by
  ``write_timeout_s``; a client that stops reading gets aborted
  instead of pinning its connection task forever.
- **graceful drain**: :meth:`ResultServer.drain` stops accepting,
  lets every in-flight request finish within ``drain_timeout_s``
  (responses during a drain carry ``Connection: close``), and only
  then cancels stragglers.  ``/healthz``, ``/readyz``, and
  ``/metrics`` are answered inline on the loop -- never admitted,
  never offloaded -- so health probes keep working while the store
  path is saturated or broken.

Protocol scope (deliberately minimal -- this is a results API, not a
general web server): ``GET``/``HEAD`` only, no request bodies, no TLS,
no chunked encoding; responses always carry ``Content-Length`` and
honor ``Connection: close``.  Malformed requests get a ``400`` and the
connection is closed.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Set, Tuple

from .api import CONTROL_PATHS, ResultService, ServiceResponse
from .resilience import ResiliencePolicy, ResilienceState

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_LINES = 100
_DEFAULT_KEEPALIVE_S = 30.0

_DRAINING = object()
"""Sentinel: the drain began while this connection sat idle."""


def _overload_response(message: str) -> ServiceResponse:
    """A fast ``503 + Retry-After`` the loop can emit without routing."""
    return ServiceResponse(
        status=503,
        headers={
            "Content-Type": "application/json; charset=utf-8",
            "Retry-After": "1",
        },
        body=json.dumps({"error": message}).encode("utf-8"),
    )


def _timeout_response(seconds: float) -> ServiceResponse:
    """The ``504`` an offloaded read that misses its deadline gets."""
    return ServiceResponse(
        status=504,
        headers={
            "Content-Type": "application/json; charset=utf-8",
            "Retry-After": "1",
        },
        body=json.dumps(
            {"error": f"store read exceeded the {seconds:g}s deadline"}
        ).encode("utf-8"),
    )


class ResultServer:
    """Asyncio HTTP server over one :class:`ResultService`."""

    def __init__(
        self,
        service: ResultService,
        host: str = "127.0.0.1",
        port: int = 0,
        keepalive_s: float = _DEFAULT_KEEPALIVE_S,
        backlog: int = 1024,
        policy: Optional[ResiliencePolicy] = None,
    ):
        self._service = service
        self._host = host
        self._port = port
        self._keepalive_s = keepalive_s
        self._backlog = backlog
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._drain_event: Optional[asyncio.Event] = None
        self.resilience = ResilienceState(policy)
        # The routing layer serves /readyz and /metrics off the same
        # state the transport enforces.
        service.bind_resilience(self.resilience)
        self.connections = 0
        self.requests = 0

    @property
    def service(self) -> ResultService:
        """The routing layer this transport serves."""
        return self._service

    @property
    def policy(self) -> ResiliencePolicy:
        """The resilience budgets in force."""
        return self.resilience.policy

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves on start)."""
        if self._server is None or not self._server.sockets:
            return (self._host, self._port)
        sock = self._server.sockets[0]
        name = sock.getsockname()
        return (name[0], name[1])

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._drain_event = asyncio.Event()
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.policy.read_workers,
                thread_name_prefix="simra-read",
            )
        # The default backlog (100) RSTs connection bursts bigger than
        # the accept queue -- a thousand readers arriving together is
        # exactly this service's design load, so ask for more (the
        # kernel still clamps to net.core.somaxconn).
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self._host,
            port=self._port,
            backlog=self._backlog,
        )

    async def drain(self) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight work.

        Closes the listener, flips :attr:`ResilienceState.draining`
        (``/readyz`` answers ``503`` from here on), nudges idle
        keep-alive connections closed, and waits up to
        ``drain_timeout_s`` for every connection task to finish its
        in-flight response.  Returns ``True`` when every task finished
        inside the budget; stragglers past it are cancelled and the
        drain reports unclean.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.resilience.begin_drain()
        if self._drain_event is not None:
            self._drain_event.set()
        clean = True
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                set(self._conn_tasks),
                timeout=self.policy.drain_timeout_s,
            )
            if pending:
                clean = False
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
        self._conn_tasks.clear()
        return clean

    async def stop(self) -> None:
        """Stop accepting, then close idle keep-alive connections.

        The abrupt path (tests, benchmark teardown): in-flight
        connection tasks are cancelled, not drained.  Use
        :meth:`drain` first for the graceful choreography.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Keep-alive handlers otherwise linger until their read times
        # out; cancelling here lets asyncio.run() exit without noise.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    async def serve_forever(self) -> None:
        """Run until cancelled (what ``simra-dram serve`` awaits)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        stats = self.resilience.stats
        self.connections += 1
        stats.connection_opened()
        try:
            if stats.connections_active > self.policy.max_connections:
                stats.count("shed_connections")
                await self._write_response(
                    writer,
                    "GET",
                    _overload_response("connection budget exhausted"),
                    close=True,
                )
                return
            await self._serve_requests(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown.  Exit normally instead of cancelled:
            # the stdlib stream protocol's done-callback calls
            # task.exception() unguarded, which re-raises for tasks
            # that finish cancelled and spams the loop's error log.
            pass
        finally:
            stats.connection_closed()
            writer.close()
            with contextlib.suppress(
                ConnectionError, OSError, asyncio.CancelledError
            ):
                await writer.wait_closed()

    async def _serve_requests(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """The keep-alive request loop of one connection."""
        stats = self.resilience.stats
        while True:
            if self._draining:
                break
            try:
                request = await asyncio.wait_for(
                    self._read_request_or_drain(reader),
                    timeout=self._keepalive_s,
                )
            except asyncio.TimeoutError:
                break
            if request is _DRAINING or request is None:
                break
            method, target, headers, malformed = request
            if malformed:
                # The parsed method governs the body: a malformed HEAD
                # must not receive one (HTTP/1.1), only the 400 head.
                await self._write_response(
                    writer,
                    method,
                    ServiceResponse(
                        status=400,
                        headers={"Content-Type": "text/plain"},
                        body=b"malformed request",
                    ),
                    close=True,
                )
                stats.record_response(400)
                break
            self.requests += 1
            close = headers.get("connection", "").lower() == "close"
            path = target.partition("?")[0]
            if path in CONTROL_PATHS:
                # Health probes and metrics answer inline on the loop:
                # cheap, never admitted, never offloaded -- they must
                # work precisely when the store path does not.
                response = self._service.handle(method, target, headers)
                stats.record_response(response.status)
            elif not self.resilience.admission.try_acquire():
                response = _overload_response(
                    "server at capacity; request shed"
                )
                stats.count("shed_requests")
                stats.record_response(response.status)
            else:
                response, close_after = await self._offloaded_handle(
                    method, target, headers
                )
                close = close or close_after
            close = close or self._draining
            await self._write_response(writer, method, response, close=close)
            if close:
                break

    @property
    def _draining(self) -> bool:
        return self._drain_event is not None and self._drain_event.is_set()

    async def _offloaded_handle(
        self, method: str, target: str, headers: dict
    ) -> Tuple[ServiceResponse, bool]:
        """Run one admitted request on the read pool with a deadline.

        Returns ``(response, close_connection)``.  The admission slot
        is released by the pool future's done callback -- i.e. when
        the worker thread actually finishes -- so a timed-out read
        keeps holding its slot while it grinds, which is what bounds
        the total work behind a stalled disk.
        """
        stats = self.resilience.stats
        pool = self._pool
        if pool is None:  # stopped mid-request
            return _overload_response("server is shutting down"), True
        started = time.perf_counter()
        future = pool.submit(self._service.handle, method, target, headers)
        future.add_done_callback(
            lambda _f: self.resilience.admission.release()
        )
        try:
            response = await asyncio.wait_for(
                asyncio.wrap_future(future),
                timeout=self.policy.request_timeout_s,
            )
        except asyncio.TimeoutError:
            stats.count("deadline_timeouts")
            response = _timeout_response(self.policy.request_timeout_s)
            stats.record_response(response.status)
            return response, True
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # handle() never raises; a bug did
            response = ServiceResponse(
                status=500,
                headers={"Content-Type": "application/json; charset=utf-8"},
                body=json.dumps({"error": f"internal error: {exc}"}).encode(
                    "utf-8"
                ),
            )
            stats.record_response(response.status)
            return response, True
        stats.record_response(
            response.status, time.perf_counter() - started
        )
        return response, False

    async def _read_request_or_drain(self, reader: asyncio.StreamReader):
        """One request head, or :data:`_DRAINING` if the drain begins
        while the connection is idle.

        A request already on the wire when the drain starts gets a
        short grace (``drain_grace_s``) to finish arriving -- it will
        be served with ``Connection: close`` -- so a drain never
        drops a request the client believes it sent.
        """
        read = asyncio.ensure_future(self._read_request(reader))
        assert self._drain_event is not None
        if not self._drain_event.is_set():
            drain_wait = asyncio.ensure_future(self._drain_event.wait())
            try:
                done, _pending = await asyncio.wait(
                    {read, drain_wait},
                    return_when=asyncio.FIRST_COMPLETED,
                )
            except asyncio.CancelledError:
                read.cancel()
                drain_wait.cancel()
                raise
            finally:
                if not drain_wait.done():
                    drain_wait.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await drain_wait
            if read not in done:
                try:
                    return await asyncio.wait_for(
                        asyncio.shield(read),
                        timeout=self.policy.drain_grace_s,
                    )
                except asyncio.TimeoutError:
                    read.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await read
                    return _DRAINING
        return await read

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, dict, bool]]:
        """Parse one request head; ``None`` on clean EOF.

        Returns ``(method, target, headers, malformed)``.  The method
        is reported even for malformed requests whenever the request
        line parsed, so the 400 path can honor HEAD semantics.
        """
        line = await reader.readline()
        if not line:
            return None
        if len(line) > _MAX_REQUEST_LINE:
            return ("GET", "/", {}, True)
        parts = line.decode("latin1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            method = parts[0] if parts and parts[0].isalpha() else "GET"
            return (method, "/", {}, True)
        method, target, _version = parts
        headers = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if not line:
                return None
            text = line.decode("latin1").strip()
            if not text:
                break
            key, sep, value = text.partition(":")
            if not sep:
                return (method, target, headers, True)
            headers[key.strip().lower()] = value.strip()
        else:
            return (method, target, headers, True)
        # GET/HEAD carry no body; anything that declares one is out of
        # protocol scope for this read-only API.
        if headers.get("content-length", "0") not in ("", "0"):
            return (method, target, headers, True)
        return (method, target, headers, False)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        response: ServiceResponse,
        close: bool,
    ) -> None:
        body = b"" if method.upper() == "HEAD" else response.body
        head = [f"HTTP/1.1 {response.status} {response.reason}"]
        headers = dict(response.headers)
        headers["Content-Length"] = str(
            0 if response.status == 304 else len(response.body)
        )
        headers["Connection"] = "close" if close else "keep-alive"
        for key, value in headers.items():
            head.append(f"{key}: {value}")
        payload = ("\r\n".join(head) + "\r\n\r\n").encode("latin1")
        if response.status != 304:
            payload += body
        writer.write(payload)
        try:
            await asyncio.wait_for(
                writer.drain(), timeout=self.policy.write_timeout_s
            )
        except asyncio.TimeoutError:
            # A client that stopped reading: abort rather than let it
            # pin this connection task (and its buffers) forever.
            self.resilience.stats.count("slow_client_aborts")
            writer.transport.abort()
            raise ConnectionError("client stalled reading the response")
