"""Resilience layer for the result query service.

The transport (:mod:`repro.service.http`) and routing layer
(:mod:`repro.service.api`) stay correct under happy-path load; this
module is what keeps them *standing* when reality diverges from it --
connection storms past the design load, disk reads that stall or lie,
and supervisors that want the process gone without losing in-flight
work.  Four cooperating pieces, all stdlib:

- :class:`ResiliencePolicy` -- the declarative budget sheet: how many
  requests may execute at once, how long one may take, how long a
  drain may run, how twitchy the store-read circuit breaker is.
- :class:`AdmissionController` -- a thread-safe concurrent-request
  budget.  ``try_acquire`` never blocks: a request over budget is shed
  with a fast ``503 + Retry-After`` instead of queueing unboundedly
  behind a slow disk.
- :class:`ServerStats` -- request/shed/error/timeout counters plus a
  bounded latency reservoir, the payload behind ``/metrics``.
- :class:`StoreReadBreaker` -- a thread-safe wrapper around the fleet
  supervision layer's :class:`~repro.health.breaker.CircuitBreaker`:
  repeated reader faults (I/O errors, digest mismatches) trip it open,
  figure reads turn into ``503`` and ``/readyz`` flips, and a
  half-open probe read closes it again.

:class:`ResilienceState` bundles one live instance of each and is
shared between the transport (which admits, times out, and counts) and
the routing layer (which serves ``/healthz``, ``/readyz``, and
``/metrics`` off it).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..health.breaker import BreakerPolicy, BreakerState, CircuitBreaker


def _default_breaker_policy() -> BreakerPolicy:
    """The store-read breaker's default trip/recover schedule.

    The cooldown is counted in consultations (each guarded read while
    open counts one), so a busy service probes again quickly and an
    idle one stays open until the next reader shows up -- no wall
    clocks, same as the campaign fleet breakers.
    """
    return BreakerPolicy(failure_threshold=5, cooldown_probes=10)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Budgets and thresholds for one :class:`ResilienceState`."""

    max_concurrent_requests: int = 64
    """Store-backed requests allowed in flight (executing or queued on
    the read pool) before new ones are shed with ``503``."""
    max_connections: int = 4096
    """Open sockets allowed before new connections get an immediate
    ``503 + Connection: close``."""
    request_timeout_s: float = 5.0
    """Deadline for one offloaded store read; past it the client gets
    ``504`` and the (unkillable) worker thread finishes into the void."""
    write_timeout_s: float = 15.0
    """Bound on flushing one response to the socket; a client that
    reads slower than this gets aborted instead of pinning the task."""
    drain_timeout_s: float = 10.0
    """Graceful-drain budget: in-flight work past it is cancelled."""
    drain_grace_s: float = 0.1
    """How long an idle keep-alive connection is given at drain start
    to surface a request already on the wire before being closed."""
    read_workers: int = 8
    """Threads in the store-read pool (one slow read occupies one)."""
    latency_window: int = 4096
    """Latency samples kept for the ``/metrics`` quantiles."""
    breaker: BreakerPolicy = field(default_factory=_default_breaker_policy)
    """Trip/cooldown policy for the store-read circuit breaker."""

    def __post_init__(self) -> None:
        if self.max_concurrent_requests < 1:
            raise ConfigurationError(
                "max_concurrent_requests must be at least 1, got "
                f"{self.max_concurrent_requests}"
            )
        if self.max_connections < 1:
            raise ConfigurationError(
                f"max_connections must be at least 1, got {self.max_connections}"
            )
        for name in (
            "request_timeout_s",
            "write_timeout_s",
            "drain_timeout_s",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        if self.drain_grace_s < 0:
            raise ConfigurationError(
                f"drain_grace_s must be non-negative, got {self.drain_grace_s}"
            )
        if self.read_workers < 1:
            raise ConfigurationError(
                f"read_workers must be at least 1, got {self.read_workers}"
            )
        if self.latency_window < 1:
            raise ConfigurationError(
                f"latency_window must be at least 1, got {self.latency_window}"
            )


class AdmissionController:
    """Non-blocking concurrent-request budget (thread-safe).

    ``try_acquire`` is called on the event loop before a request is
    offloaded; ``release`` runs from the worker thread's done callback
    so a slot stays occupied for as long as its thread does -- a
    timed-out request that is still grinding in the pool keeps its
    slot, which is exactly what stops a stalled disk from admitting
    unbounded work behind itself.
    """

    def __init__(self, limit: int):
        self._limit = int(limit)
        self._lock = threading.Lock()
        self._active = 0
        self.shed = 0
        self.peak = 0

    @property
    def limit(self) -> int:
        """The concurrent-request budget."""
        return self._limit

    @property
    def active(self) -> int:
        """Requests currently holding a slot."""
        return self._active

    def try_acquire(self) -> bool:
        """Take a slot if one is free; never blocks."""
        with self._lock:
            if self._active >= self._limit:
                self.shed += 1
                return False
            self._active += 1
            if self._active > self.peak:
                self.peak = self._active
            return True

    def release(self) -> None:
        """Return a slot (idempotence is the caller's job)."""
        with self._lock:
            if self._active > 0:
                self._active -= 1

    def as_dict(self) -> Dict[str, int]:
        """Plain-JSON snapshot for ``/metrics``."""
        with self._lock:
            return {
                "limit": self._limit,
                "active": self._active,
                "peak": self.peak,
                "shed": self.shed,
            }


class LatencyWindow:
    """Bounded reservoir of request latencies (thread-safe).

    A plain ring of the most recent ``maxlen`` samples: the service's
    load profile shifts over hours, and recent quantiles are what an
    operator watching ``/metrics`` actually wants.
    """

    def __init__(self, maxlen: int = 4096):
        self._samples: "deque[float]" = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self.count = 0

    def record(self, seconds: float) -> None:
        """Add one request's wall-clock latency."""
        with self._lock:
            self._samples.append(float(seconds))
            self.count += 1

    def quantiles(self) -> Dict[str, float]:
        """``p50/p95/p99/max`` in milliseconds over the window."""
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}

        def _at(fraction: float) -> float:
            index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
            return 1000.0 * ordered[index]

        return {
            "p50": _at(0.50),
            "p95": _at(0.95),
            "p99": _at(0.99),
            "max": 1000.0 * ordered[-1],
        }


class ServerStats:
    """Counters the transport feeds and ``/metrics`` serves.

    Everything is incremented under one lock: the transport writes
    from the event loop, admission releases and breaker feeds arrive
    from pool threads, and ``/metrics`` snapshots from wherever the
    routing layer runs.
    """

    _CLASSES = ("2xx", "3xx", "4xx", "5xx")

    def __init__(self, latency_window: int = 4096):
        self._lock = threading.Lock()
        self.connections_total = 0
        self.connections_active = 0
        self.requests_total = 0
        self.shed_requests = 0
        self.shed_connections = 0
        self.deadline_timeouts = 0
        self.read_faults = 0
        self.slow_client_aborts = 0
        self.responses: Dict[str, int] = {c: 0 for c in self._CLASSES}
        self.latency = LatencyWindow(latency_window)

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_total += 1
            self.connections_active += 1

    def connection_closed(self) -> None:
        with self._lock:
            if self.connections_active > 0:
                self.connections_active -= 1

    def record_response(
        self, status: int, latency_s: Optional[float] = None
    ) -> None:
        """Count one written response (and optionally its latency)."""
        bucket = f"{min(max(status // 100, 2), 5)}xx"
        with self._lock:
            self.requests_total += 1
            self.responses[bucket] = self.responses.get(bucket, 0) + 1
        if latency_s is not None:
            self.latency.record(latency_s)

    def count(self, counter: str) -> None:
        """Bump one named event counter (thread-safe)."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-JSON snapshot for ``/metrics``."""
        with self._lock:
            snapshot = {
                "connections_total": self.connections_total,
                "connections_active": self.connections_active,
                "requests_total": self.requests_total,
                "shed_requests": self.shed_requests,
                "shed_connections": self.shed_connections,
                "deadline_timeouts": self.deadline_timeouts,
                "read_faults": self.read_faults,
                "slow_client_aborts": self.slow_client_aborts,
                "responses": dict(self.responses),
            }
        snapshot["latency_ms"] = self.latency.quantiles()
        snapshot["latency_samples"] = self.latency.count
        return snapshot


class StoreReadBreaker:
    """Thread-safe store-read circuit breaker.

    Reuses the campaign fleet's deterministic
    :class:`~repro.health.breaker.CircuitBreaker` state machine
    unchanged; the lock exists because service reads consult it from
    pool threads, which the single-threaded campaign never does.  The
    read-only :attr:`state` view (what ``/readyz`` reports) never
    consumes a cooldown consultation -- only guarded reads do, so
    health probes cannot accidentally schedule the half-open probe.
    """

    def __init__(self, policy: Optional[BreakerPolicy] = None):
        self._breaker = CircuitBreaker(
            "store-read",
            policy if policy is not None else _default_breaker_policy(),
        )
        self._lock = threading.Lock()

    @property
    def state(self) -> BreakerState:
        """Current breaker state (no cooldown consultation)."""
        with self._lock:
            return self._breaker.state

    @property
    def trips(self) -> int:
        """How many times the breaker has tripped open."""
        with self._lock:
            return self._breaker.trips

    def allows(self) -> bool:
        """Whether a store read may proceed (counts toward cooldown)."""
        with self._lock:
            return self._breaker.allows()

    def record_success(self) -> None:
        """Feed one successful store read."""
        with self._lock:
            self._breaker.record_success()

    def record_failure(self) -> None:
        """Feed one faulted store read."""
        with self._lock:
            self._breaker.record_failure()

    def as_dict(self) -> Dict[str, Any]:
        """Plain-JSON snapshot for ``/metrics`` and ``/readyz``."""
        with self._lock:
            return self._breaker.as_dict()


class ResilienceState:
    """One service's live resilience machinery, shared across layers.

    The transport owns admission, timeouts, and the stats feed; the
    routing layer reads everything back out for ``/healthz``,
    ``/readyz``, and ``/metrics``; the CLI flips :attr:`draining` when
    a supervisor asks the process to go away.
    """

    def __init__(self, policy: Optional[ResiliencePolicy] = None):
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.admission = AdmissionController(self.policy.max_concurrent_requests)
        self.stats = ServerStats(self.policy.latency_window)
        self.breaker = StoreReadBreaker(self.policy.breaker)
        self._draining = threading.Event()

    @property
    def draining(self) -> bool:
        """Whether a graceful drain is in progress."""
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Flip ``/readyz`` to not-ready and mark the drain started."""
        self._draining.set()

    def readiness(self, reader) -> Tuple[bool, Dict[str, Any]]:
        """``(ready, checks)`` for ``/readyz``.

        Ready means: the store directory is reachable, no drain is in
        progress, and the store-read breaker is fully closed (half-open
        still reports not-ready -- the service is probing, not
        recovered; one successful guarded read flips it back).
        """
        store_ok = False
        try:
            store_ok = reader.directory.is_dir()
        except OSError:
            store_ok = False
        breaker_state = self.breaker.state
        checks: Dict[str, Any] = {
            "store_reachable": store_ok,
            "draining": self.draining,
            "breaker": breaker_state.value,
        }
        ready = (
            store_ok
            and not self.draining
            and breaker_state is BreakerState.CLOSED
        )
        return ready, checks

    def shed_reasons(self) -> List[str]:
        """Human-readable summary lines for drain/shutdown reporting."""
        stats = self.stats.as_dict()
        return [
            f"{stats['requests_total']} request(s) served",
            f"{stats['shed_requests']} shed at admission",
            f"{stats['shed_connections']} connection(s) shed",
            f"{stats['deadline_timeouts']} deadline timeout(s)",
        ]
