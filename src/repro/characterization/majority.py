"""Section 5: characterization of MAJX operations.

Reproduces the data behind Fig 6 (MAJ3 timing/size grid), Fig 7
(MAJX vs data pattern), Fig 8 (temperature), and Fig 9 (voltage).
The sweep itself runs on the trial engine: this module only builds
the :class:`~repro.engine.TrialPlan`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..core.patterns import DataPattern, MAJX_TESTED_PATTERNS
from ..engine import (
    ExecutorBase,
    ExperimentProgram,
    MajXKernel,
    PlanStep,
    TrialPlan,
    run_plan,
    tasks_for_scope,
)
from ..errors import ExperimentError
from .activation import _mean_rate, _nested, _summarize_rates  # noqa: F401
from .experiment import CharacterizationScope, OperatingPoint
from .stats import DistributionSummary, summarize

MAJX_VALUES = (3, 5, 7, 9)
"""The X values the paper demonstrates (footnote 11 caps higher X)."""

MAJ_SIZES = (4, 8, 16, 32)
"""Activation sizes used for MAJ experiments."""

FIG6_T1_VALUES = (1.5, 3.0)
FIG6_T2_VALUES = (1.5, 3.0)

FIG8_TEMPERATURES = (50.0, 60.0, 70.0, 80.0, 90.0)
FIG9_VPP_LEVELS = (2.5, 2.4, 2.3, 2.2, 2.1)

MAJX_POINT = OperatingPoint(t1_ns=1.5, t2_ns=3.0)
"""The best MAJX timing configuration (Obs 7)."""


def majx_sizes_for(x: int, sizes: Sequence[int] = MAJ_SIZES) -> Tuple[int, ...]:
    """Activation sizes large enough to host MAJX operands."""
    return tuple(n for n in sizes if n >= x)


def build_majx_plan(
    scope: CharacterizationScope,
    x: int,
    n_rows: int,
    point: OperatingPoint,
    trials: Optional[int] = None,
    checkpoints: Tuple[int, ...] = (),
    empty_message: Optional[str] = None,
) -> TrialPlan:
    """The MAJX sweep as a declarative plan.

    Validates the request -- the group must host X operands and at
    least one module's vendor must reach this X -- *before* any bench
    environment is touched, so an impossible sweep leaves the rig
    exactly as it found it.
    """
    if n_rows < x:
        raise ExperimentError(f"{n_rows}-row activation cannot host MAJ{x}")
    tasks = tasks_for_scope(
        scope,
        n_rows,
        lambda bench: bench.module.config.columns_per_row,
        bench_predicate=lambda bench: bench.module.profile.max_reliable_majx >= x,
        trials=trials,
    )
    if not tasks:
        raise ExperimentError(
            empty_message
            or f"no module in scope supports MAJ{x} (vendor capability caps)"
        )
    return TrialPlan(
        name=f"maj{x}-{n_rows}",
        kernel=MajXKernel(x),
        point=point,
        tasks=tasks,
        benches=list(scope.benches),
        checkpoints=checkpoints,
    )


def majx_success_distribution(
    scope: CharacterizationScope,
    x: int,
    n_rows: int,
    point: OperatingPoint,
    executor: Optional[ExecutorBase] = None,
) -> DistributionSummary:
    """Success-rate distribution of MAJX with N-row activation.

    Modules whose vendor cannot reach this X (footnote 11: Mfr. M
    stops at MAJ7) are skipped, mirroring the paper's omission of
    <1%-success operations; if no module qualifies an error is raised
    before the scope's environment is modified.
    """
    result = run_plan(build_majx_plan(scope, x, n_rows, point), executor)
    return summarize(result.rates())


def program_fig6(
    scope: CharacterizationScope,
    sizes: Sequence[int] = MAJ_SIZES,
    t1_values: Sequence[float] = FIG6_T1_VALUES,
    t2_values: Sequence[float] = FIG6_T2_VALUES,
) -> ExperimentProgram:
    """Fig 6 as a declarative program (see :mod:`repro.engine.scheduler`)."""
    steps = []
    slots = []
    for t1 in t1_values:
        for t2 in t2_values:
            point = MAJX_POINT.with_timing(t1, t2)
            for n in sizes:
                steps.append(
                    PlanStep(build_majx_plan(scope, 3, n, point), _summarize_rates)
                )
                slots.append(((t1, t2), n))
    return ExperimentProgram(
        "fig6", tuple(steps), lambda values: _nested(slots, values)
    )


def figure6_maj3_grid(
    scope: CharacterizationScope,
    sizes: Sequence[int] = MAJ_SIZES,
    t1_values: Sequence[float] = FIG6_T1_VALUES,
    t2_values: Sequence[float] = FIG6_T2_VALUES,
    executor: Optional[ExecutorBase] = None,
) -> Dict[Tuple[float, float], Dict[int, DistributionSummary]]:
    """Fig 6: MAJ3 success over the (t1, t2) grid and activation sizes."""
    return program_fig6(scope, sizes, t1_values, t2_values).run(executor)


def _nested3(slots, values) -> Dict:
    """Rebuild ``{a: {b: {c: value}}}`` preserving slot order."""
    out: Dict = {}
    for (a, b, c), value in zip(slots, values):
        out.setdefault(a, {}).setdefault(b, {})[c] = value
    return out


def program_fig7(
    scope: CharacterizationScope,
    x_values: Sequence[int] = MAJX_VALUES,
    patterns: Sequence[DataPattern] = MAJX_TESTED_PATTERNS,
    sizes: Sequence[int] = MAJ_SIZES,
) -> ExperimentProgram:
    """Fig 7 as a declarative program (``result[x][pattern][n]``)."""
    supported = {
        x
        for x in x_values
        if any(b.module.profile.max_reliable_majx >= x for b in scope.benches)
    }
    steps = []
    slots = []
    for x in x_values:
        if x not in supported:
            continue
        for pattern in patterns:
            point = MAJX_POINT.with_pattern(pattern)
            for n in majx_sizes_for(x, sizes):
                steps.append(
                    PlanStep(build_majx_plan(scope, x, n, point), _summarize_rates)
                )
                slots.append((x, pattern.kind, n))
    return ExperimentProgram(
        "fig7", tuple(steps), lambda values: _nested3(slots, values)
    )


def figure7_patterns(
    scope: CharacterizationScope,
    x_values: Sequence[int] = MAJX_VALUES,
    patterns: Sequence[DataPattern] = MAJX_TESTED_PATTERNS,
    sizes: Sequence[int] = MAJ_SIZES,
    executor: Optional[ExecutorBase] = None,
) -> Dict[int, Dict[str, Dict[int, DistributionSummary]]]:
    """Fig 7: MAJX success by data pattern and activation size.

    Returns ``result[x][pattern_kind][n_rows]``.
    """
    return program_fig7(scope, x_values, patterns, sizes).run(executor)


def program_fig8(
    scope: CharacterizationScope,
    x_values: Sequence[int] = MAJX_VALUES,
    temperatures: Sequence[float] = FIG8_TEMPERATURES,
    n_rows: int = 32,
) -> ExperimentProgram:
    """Fig 8 as a declarative program."""
    steps = []
    slots = []
    for x in x_values:
        if not any(b.module.profile.max_reliable_majx >= x for b in scope.benches):
            continue
        for temp in temperatures:
            point = MAJX_POINT.with_temperature(temp)
            steps.append(
                PlanStep(build_majx_plan(scope, x, n_rows, point), _summarize_rates)
            )
            slots.append((x, temp))
    return ExperimentProgram(
        "fig8", tuple(steps), lambda values: _nested(slots, values)
    )


def figure8_temperature(
    scope: CharacterizationScope,
    x_values: Sequence[int] = MAJX_VALUES,
    temperatures: Sequence[float] = FIG8_TEMPERATURES,
    n_rows: int = 32,
    executor: Optional[ExecutorBase] = None,
) -> Dict[int, Dict[float, DistributionSummary]]:
    """Fig 8: MAJX success distribution vs chip temperature."""
    return program_fig8(scope, x_values, temperatures, n_rows).run(executor)


def program_fig9(
    scope: CharacterizationScope,
    x_values: Sequence[int] = MAJX_VALUES,
    vpp_levels: Sequence[float] = FIG9_VPP_LEVELS,
    n_rows: int = 32,
) -> ExperimentProgram:
    """Fig 9 as a declarative program."""
    steps = []
    slots = []
    for x in x_values:
        if not any(b.module.profile.max_reliable_majx >= x for b in scope.benches):
            continue
        for vpp in vpp_levels:
            point = MAJX_POINT.with_vpp(vpp)
            steps.append(
                PlanStep(build_majx_plan(scope, x, n_rows, point), _summarize_rates)
            )
            slots.append((x, vpp))
    return ExperimentProgram(
        "fig9", tuple(steps), lambda values: _nested(slots, values)
    )


def figure9_voltage(
    scope: CharacterizationScope,
    x_values: Sequence[int] = MAJX_VALUES,
    vpp_levels: Sequence[float] = FIG9_VPP_LEVELS,
    n_rows: int = 32,
    executor: Optional[ExecutorBase] = None,
) -> Dict[int, Dict[float, DistributionSummary]]:
    """Fig 9: MAJX success distribution vs wordline voltage."""
    return program_fig9(scope, x_values, vpp_levels, n_rows).run(executor)
