"""Fleet-level characterization: per-manufacturer breakdowns.

The paper reports several results split by manufacturer (Mfr. H vs
Mfr. M): subarray geometries, MAJX capability caps (footnote 11), and
the Fig 16 throughput inputs.  This module builds per-manufacturer
scopes over the tested-module catalog and extracts the
*best-row-group* success rates that the section 8.1 methodology feeds
into the microbenchmark model ("we then choose the group of rows ...
which produces the highest throughput").
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..config import DEFAULT_CONFIG, SimulationConfig
from ..dram.vendor import MFR_H, MFR_M, TESTED_MODULES
from ..errors import ExperimentError
from .experiment import CharacterizationScope
from .majority import MAJX_POINT, majx_success_distribution

MANUFACTURERS = (MFR_H, MFR_M)


def per_manufacturer_scopes(
    config: SimulationConfig = DEFAULT_CONFIG,
    modules_per_spec: int = 1,
    groups_per_size: int = 4,
    trials: int = 8,
) -> Dict[str, CharacterizationScope]:
    """One scope per manufacturer over the tested-module catalog."""
    scopes: Dict[str, CharacterizationScope] = {}
    for manufacturer in MANUFACTURERS:
        specs = [
            spec
            for spec in TESTED_MODULES
            if spec.profile.manufacturer == manufacturer
        ]
        scopes[manufacturer] = CharacterizationScope.build(
            config=config,
            specs=specs,
            modules_per_spec=modules_per_spec,
            groups_per_size=groups_per_size,
            trials=trials,
        )
    return scopes


def best_group_yields(
    scope: CharacterizationScope,
    n_rows: int = 32,
    x_values: Sequence[int] = (3, 5, 7, 9),
) -> Dict[int, float]:
    """Highest-success-rate row group per MAJ width (section 8.1 input).

    Widths beyond the scope's vendor capability are omitted, matching
    the paper's per-manufacturer feature set.
    """
    capability = max(
        bench.module.profile.max_reliable_majx for bench in scope.benches
    )
    yields: Dict[int, float] = {}
    for x in x_values:
        if x > capability:
            continue
        summary = majx_success_distribution(scope, x, n_rows, MAJX_POINT)
        yields[x] = max(summary.maximum, 1e-3)
    if not yields:
        raise ExperimentError("scope has no MAJX-capable modules")
    return yields


def baseline_yield(scope: CharacterizationScope) -> float:
    """Best-group MAJ3 @ 4-row success (the Fig 16 baseline input)."""
    summary = majx_success_distribution(scope, 3, 4, MAJX_POINT)
    return max(summary.maximum, 1e-3)
