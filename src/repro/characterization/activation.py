"""Section 4: characterization of simultaneous many-row activation.

Reproduces the data behind Fig 3 (timing grid), Fig 4a (temperature),
and Fig 4b (wordline voltage).  The sweep itself runs on the trial
engine: this module only builds the :class:`~repro.engine.TrialPlan`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..engine import (
    ActivationKernel,
    ExecutorBase,
    ExperimentProgram,
    PlanResult,
    PlanStep,
    TrialPlan,
    run_plan,
    tasks_for_scope,
)
from .experiment import CharacterizationScope, OperatingPoint
from .stats import DistributionSummary, summarize

ACTIVATION_SIZES = (2, 4, 8, 16, 32)
"""Row-group sizes the paper tests."""

FIG3_T1_VALUES = (1.5, 3.0)
FIG3_T2_VALUES = (1.5, 3.0)
"""The timing grid of Fig 3."""

FIG4_TEMPERATURES = (50.0, 60.0, 70.0, 80.0, 90.0)
FIG4_VPP_LEVELS = (2.5, 2.4, 2.3, 2.2, 2.1)


def build_activation_plan(
    scope: CharacterizationScope,
    n_rows: int,
    point: OperatingPoint,
) -> TrialPlan:
    """The N-row activation sweep as a declarative plan."""
    tasks = tasks_for_scope(
        scope,
        n_rows,
        lambda bench: n_rows * bench.module.config.columns_per_row,
    )
    return TrialPlan(
        name=f"activation-{n_rows}",
        kernel=ActivationKernel(),
        point=point,
        tasks=tasks,
        benches=list(scope.benches),
    )


def activation_success_distribution(
    scope: CharacterizationScope,
    n_rows: int,
    point: OperatingPoint,
    executor: Optional[ExecutorBase] = None,
) -> DistributionSummary:
    """Success-rate distribution of N-row activation across all groups.

    Per group: repeated trials of the section 3.2 recipe (init -> APA
    -> WR -> readback); the group's success rate is the fraction of
    its cells that hold the WR data in *every* trial.
    """
    result = run_plan(build_activation_plan(scope, n_rows, point), executor)
    return summarize(result.rates())


def _summarize_rates(result: PlanResult) -> DistributionSummary:
    return summarize(result.rates())


def _mean_rate(result: PlanResult) -> float:
    return summarize(result.rates()).mean


def _nested(slots, values) -> Dict:
    """Rebuild ``{outer: {inner: value}}`` preserving slot order."""
    out: Dict = {}
    for (outer, inner), value in zip(slots, values):
        out.setdefault(outer, {})[inner] = value
    return out


def program_fig3(
    scope: CharacterizationScope,
    sizes: Sequence[int] = ACTIVATION_SIZES,
    t1_values: Sequence[float] = FIG3_T1_VALUES,
    t2_values: Sequence[float] = FIG3_T2_VALUES,
) -> ExperimentProgram:
    """Fig 3 as a declarative program (see :mod:`repro.engine.scheduler`)."""
    steps = []
    slots = []
    for t1 in t1_values:
        for t2 in t2_values:
            point = OperatingPoint(t1_ns=t1, t2_ns=t2)
            for n in sizes:
                steps.append(
                    PlanStep(build_activation_plan(scope, n, point), _summarize_rates)
                )
                slots.append(((t1, t2), n))
    return ExperimentProgram(
        "fig3", tuple(steps), lambda values: _nested(slots, values)
    )


def figure3_timing_grid(
    scope: CharacterizationScope,
    sizes: Sequence[int] = ACTIVATION_SIZES,
    t1_values: Sequence[float] = FIG3_T1_VALUES,
    t2_values: Sequence[float] = FIG3_T2_VALUES,
    executor: Optional[ExecutorBase] = None,
) -> Dict[Tuple[float, float], Dict[int, DistributionSummary]]:
    """Fig 3: success distributions over the (t1, t2) grid and sizes."""
    return program_fig3(scope, sizes, t1_values, t2_values).run(executor)


def program_fig4a(
    scope: CharacterizationScope,
    sizes: Sequence[int] = ACTIVATION_SIZES,
    temperatures: Sequence[float] = FIG4_TEMPERATURES,
) -> ExperimentProgram:
    """Fig 4a as a declarative program."""
    steps = []
    slots = []
    for temp in temperatures:
        point = OperatingPoint(temperature_c=temp)
        for n in sizes:
            steps.append(
                PlanStep(build_activation_plan(scope, n, point), _mean_rate)
            )
            slots.append((temp, n))
    return ExperimentProgram(
        "fig4a", tuple(steps), lambda values: _nested(slots, values)
    )


def figure4a_temperature(
    scope: CharacterizationScope,
    sizes: Sequence[int] = ACTIVATION_SIZES,
    temperatures: Sequence[float] = FIG4_TEMPERATURES,
    executor: Optional[ExecutorBase] = None,
) -> Dict[float, Dict[int, float]]:
    """Fig 4a: average success rate vs temperature (best timings)."""
    return program_fig4a(scope, sizes, temperatures).run(executor)


def program_fig4b(
    scope: CharacterizationScope,
    sizes: Sequence[int] = ACTIVATION_SIZES,
    vpp_levels: Sequence[float] = FIG4_VPP_LEVELS,
) -> ExperimentProgram:
    """Fig 4b as a declarative program."""
    steps = []
    slots = []
    for vpp in vpp_levels:
        point = OperatingPoint(vpp=vpp)
        for n in sizes:
            steps.append(
                PlanStep(build_activation_plan(scope, n, point), _mean_rate)
            )
            slots.append((vpp, n))
    return ExperimentProgram(
        "fig4b", tuple(steps), lambda values: _nested(slots, values)
    )


def figure4b_voltage(
    scope: CharacterizationScope,
    sizes: Sequence[int] = ACTIVATION_SIZES,
    vpp_levels: Sequence[float] = FIG4_VPP_LEVELS,
    executor: Optional[ExecutorBase] = None,
) -> Dict[float, Dict[int, float]]:
    """Fig 4b: average success rate vs wordline voltage (best timings)."""
    return program_fig4b(scope, sizes, vpp_levels).run(executor)
