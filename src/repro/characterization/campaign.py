"""Campaign runner: the paper's whole experimental sweep as one call.

A :class:`Campaign` executes a configurable subset of the paper's
characterizations (sections 4-6) over a scope, persists every result
through :class:`~repro.characterization.store.ResultStore`, and
renders a combined text report.  This is the entry point a lab would
script for an overnight run; the scaled-down defaults finish in
minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ExperimentError
from .activation import figure3_timing_grid, figure4a_temperature, figure4b_voltage
from .experiment import CharacterizationScope
from .majority import (
    figure6_maj3_grid,
    figure7_patterns,
    figure8_temperature,
    figure9_voltage,
)
from .report import format_distribution_table, format_series_table
from .rowcopy import (
    figure10_timing_grid,
    figure11_patterns,
    figure12a_temperature,
    figure12b_voltage,
)
from .store import ResultStore

EXPERIMENTS: Dict[str, Callable] = {
    "fig3": figure3_timing_grid,
    "fig4a": figure4a_temperature,
    "fig4b": figure4b_voltage,
    "fig6": figure6_maj3_grid,
    "fig7": figure7_patterns,
    "fig8": figure8_temperature,
    "fig9": figure9_voltage,
    "fig10": figure10_timing_grid,
    "fig11": figure11_patterns,
    "fig12a": figure12a_temperature,
    "fig12b": figure12b_voltage,
}
"""Every section 4-6 experiment the campaign can run, by figure id."""


@dataclass
class CampaignResult:
    """Outcome of one campaign run."""

    completed: List[str] = field(default_factory=list)
    stored_at: Optional[Path] = None
    data: Dict[str, object] = field(default_factory=dict)

    def summary_lines(self) -> List[str]:
        """One line per completed experiment."""
        return [f"  {name}: done" for name in self.completed]


class Campaign:
    """Runs and persists a set of figure experiments."""

    def __init__(
        self,
        scope: CharacterizationScope,
        store: Optional[ResultStore] = None,
    ):
        self._scope = scope
        self._store = store

    @property
    def scope(self) -> CharacterizationScope:
        """The device/test scope in force."""
        return self._scope

    def run(
        self, experiments: Sequence[str] = ("fig3", "fig6", "fig10")
    ) -> CampaignResult:
        """Execute the named experiments in order."""
        unknown = [name for name in experiments if name not in EXPERIMENTS]
        if unknown:
            raise ExperimentError(
                f"unknown experiments {unknown}; known: {sorted(EXPERIMENTS)}"
            )
        if not experiments:
            raise ExperimentError("campaign needs at least one experiment")
        result = CampaignResult()
        for name in experiments:
            data = EXPERIMENTS[name](self._scope)
            result.data[name] = data
            result.completed.append(name)
            if self._store is not None:
                config = self._scope.benches[0].module.config
                self._store.save(
                    name,
                    _storable(data),
                    config=config,
                    notes=f"campaign experiment {name}",
                )
        if self._store is not None:
            result.stored_at = Path(self._store._directory)  # noqa: SLF001
        return result

    def render(self, result: CampaignResult) -> str:
        """Human-readable report of a campaign's results."""
        sections: List[str] = []
        for name in result.completed:
            data = result.data[name]
            sections.append(_render_experiment(name, data))
        return "\n\n".join(sections)


def _storable(data):
    """Convert tuple keys (t1, t2) to strings for JSON persistence."""
    if isinstance(data, dict):
        return {
            (
                ",".join(str(part) for part in key)
                if isinstance(key, tuple)
                else str(key)
            ): _storable(value)
            for key, value in data.items()
        }
    return data


def _render_experiment(name: str, data) -> str:
    """Best-effort rendering of one experiment's data structure."""
    from .stats import DistributionSummary

    if not isinstance(data, dict) or not data:
        return f"{name}: {data!r}"
    sample = next(iter(data.values()))
    if isinstance(sample, dict) and sample and isinstance(
        next(iter(sample.values())), DistributionSummary
    ):
        blocks = []
        for key, cell in data.items():
            rows = {str(inner): summary for inner, summary in cell.items()}
            blocks.append(
                format_distribution_table(f"{name} [{key}] (%)", rows)
            )
        return "\n".join(blocks)
    if isinstance(sample, dict):
        # Possibly nested one level deeper (fig7) or plain series.
        inner_sample = next(iter(sample.values())) if sample else None
        if isinstance(inner_sample, dict):
            blocks = []
            for key, cell in data.items():
                flattened = {}
                for mid, leaf in cell.items():
                    if isinstance(leaf, dict):
                        for inner, value in leaf.items():
                            label = f"{mid} @{inner}"
                            flattened[label] = value
                    else:
                        flattened[str(mid)] = leaf
                if flattened and isinstance(
                    next(iter(flattened.values())), DistributionSummary
                ):
                    blocks.append(
                        format_distribution_table(f"{name} [{key}] (%)", flattened)
                    )
                else:
                    blocks.append(
                        format_series_table(
                            f"{name} [{key}]", {str(key): flattened}
                        )
                    )
            return "\n".join(blocks)
        series = {str(key): value for key, value in data.items()}
        return format_series_table(f"{name} (%)", series)
    if isinstance(sample, DistributionSummary):
        rows = {str(key): value for key, value in data.items()}
        return format_distribution_table(f"{name} (%)", rows)
    return f"{name}: {data!r}"
