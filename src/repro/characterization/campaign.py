"""Campaign runner: the paper's whole experimental sweep as one call.

A :class:`Campaign` executes a configurable subset of the paper's
characterizations (sections 4-6) over a scope, persists every result
through :class:`~repro.characterization.store.ResultStore`, and
renders a combined text report.  This is the entry point a lab would
script for an overnight run; the scaled-down defaults finish in
minutes.

Overnight runs on real rigs see transient infrastructure faults, so
the executor is failure-isolated:

- a :class:`~repro.errors.TransientInfrastructureError` triggers a
  retry with exponential backoff + seeded jitter (:class:`RetryPolicy`),
  bounded by a per-experiment wall-clock budget;
- any other failure (or exhausted retries) is recorded in
  :attr:`CampaignResult.failures` as an :class:`ExperimentFailure`
  carrying the full exception chain, and the sweep continues;
- with a store attached, every completed experiment is checkpointed in
  a :class:`~repro.characterization.store.CampaignManifest`, so a
  killed campaign re-run with ``resume=True`` skips finished figures
  (after re-verifying their content checksums) and -- unless
  ``retry_failed=True`` -- does not burn its retry budget on figures
  already recorded as failed for a *non-transient* cause;
- with a :class:`~repro.health.HealthTracker` attached, every bench is
  probed before each figure; modules whose circuit breaker trips
  (persistent faults, repeated transient faults) are quarantined, the
  figure degrades gracefully to the healthy subset -- bit-identical to
  a run scoped to that subset from the start, because group sampling
  and measurement noise are serial-keyed -- and the stored result
  carries an explicit data-quality annotation naming what was
  excluded;
- a :class:`~repro.chaos.ChaosConfig` can be attached to prove all of
  the above under injected faults (the rig is restored afterwards);
- with an :class:`~repro.engine.planner.AdaptiveConfig` attached, the
  corner matrix runs through the
  :class:`~repro.engine.planner.AdaptivePlanner` instead of at a fixed
  trial budget: cells stop at the target CI half-width, freed trials
  steer to the high-variance cells, every completed round is journaled
  (so a killed run leaves a progress trace), each finished figure is
  committed with a ``planner`` data-quality annotation recording
  per-cell ``trials_planned``/``trials_run``/``stop_reason``, and the
  adaptive knobs ride in the manifest fingerprint so resume refuses to
  mix budgets and the audit can rebuild the exact planner.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .. import rng
from ..bender.program import ProgramBuilder
from ..engine.planner import AdaptiveConfig
from ..engine.scheduler import CampaignScheduler
from ..errors import (
    ConfigurationError,
    ExperimentError,
    NoHealthyModulesError,
    PersistentBenchError,
    ResultCorruptionError,
    TransientInfrastructureError,
)
from ..health.tracker import HealthTracker
from .activation import (
    figure3_timing_grid,
    figure4a_temperature,
    figure4b_voltage,
    program_fig3,
    program_fig4a,
    program_fig4b,
)
from .experiment import CharacterizationScope
from .majority import (
    figure6_maj3_grid,
    figure7_patterns,
    figure8_temperature,
    figure9_voltage,
    program_fig6,
    program_fig7,
    program_fig8,
    program_fig9,
)
from .report import format_distribution_table, format_series_table
from .rowcopy import (
    figure10_timing_grid,
    figure11_patterns,
    figure12a_temperature,
    figure12b_voltage,
    program_fig10,
    program_fig11,
    program_fig12a,
    program_fig12b,
)
from .store import CampaignManifest, ResultStore, storable

EXPERIMENTS: Dict[str, Callable] = {
    "fig3": figure3_timing_grid,
    "fig4a": figure4a_temperature,
    "fig4b": figure4b_voltage,
    "fig6": figure6_maj3_grid,
    "fig7": figure7_patterns,
    "fig8": figure8_temperature,
    "fig9": figure9_voltage,
    "fig10": figure10_timing_grid,
    "fig11": figure11_patterns,
    "fig12a": figure12a_temperature,
    "fig12b": figure12b_voltage,
}
"""Every section 4-6 experiment the campaign can run, by figure id."""

EXPERIMENT_PROGRAMS: Dict[str, Callable] = {
    "fig3": program_fig3,
    "fig4a": program_fig4a,
    "fig4b": program_fig4b,
    "fig6": program_fig6,
    "fig7": program_fig7,
    "fig8": program_fig8,
    "fig9": program_fig9,
    "fig10": program_fig10,
    "fig11": program_fig11,
    "fig12a": program_fig12a,
    "fig12b": program_fig12b,
}
"""Declarative program builders (scope -> ExperimentProgram) backing
the same figures; the pipelined scheduler runs these.  Every figure
function delegates to its program, so both paths share one assembly
and produce bit-identical data by construction."""

_CANONICAL_EXPERIMENTS: Dict[str, Callable] = dict(EXPERIMENTS)
"""Snapshot used to detect monkeypatched experiments: a replaced
figure callable has no matching program, so the campaign falls back to
calling it directly instead of pipelining."""


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter for transient faults."""

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5
    """Up to this fraction of the delay is added as seeded jitter."""

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    def delay_s(self, retry_index: int, jitter_draw: float = 0.0) -> float:
        """Backoff before retry ``retry_index`` (0-based).

        ``jitter_draw`` is a uniform [0, 1) sample; the campaign feeds
        a seeded one so whole runs stay deterministic.
        """
        delay = min(
            self.base_delay_s * self.multiplier**retry_index, self.max_delay_s
        )
        return delay * (1.0 + self.jitter * jitter_draw)


@dataclass(frozen=True)
class ExperimentFailure:
    """One experiment the sweep gave up on (the sweep itself went on)."""

    experiment: str
    reason: str
    """``"error"`` (non-retryable), ``"retries-exhausted"``,
    ``"time-budget"``, ``"no-healthy-modules"`` (every bench in the
    scope quarantined), or ``"store-error"`` (the experiment produced
    data but committing it to the result store failed; resume re-runs
    it)."""
    attempts: int
    elapsed_s: float
    error: str
    """``TypeName: message`` of the final exception."""
    chain: Tuple[str, ...]
    """The full exception chain, outermost first."""


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _chain(exc: BaseException) -> Tuple[str, ...]:
    parts: List[str] = []
    seen: set = set()
    current: Optional[BaseException] = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        parts.append(_describe(current))
        current = current.__cause__ or current.__context__
    return tuple(parts)


@dataclass
class CampaignResult:
    """Outcome of one campaign run."""

    completed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    """Experiments reused from a previous run's checkpoint."""
    skipped_failed: List[str] = field(default_factory=list)
    """Experiments skipped on resume because a previous run recorded a
    non-transient failure (run with ``retry_failed=True`` to retry)."""
    corrupt_rerun: List[str] = field(default_factory=list)
    """Stored results that failed their integrity check on resume and
    were therefore re-run instead of reused."""
    failures: List[ExperimentFailure] = field(default_factory=list)
    attempts: Dict[str, int] = field(default_factory=dict)
    stored_at: Optional[Path] = None
    data: Dict[str, object] = field(default_factory=dict)
    chaos_faults_injected: int = 0
    engine_stats: Optional[Dict[str, object]] = None
    """Cumulative :class:`~repro.engine.EngineMetrics` of the campaign's
    executor (``None`` when the campaign ran without one)."""
    quality: Dict[str, Dict[str, object]] = field(default_factory=dict)
    """Per-experiment data-quality annotations: fleet coverage when a
    health tracker supervises the campaign, or the per-cell ``planner``
    trial accounting when an adaptive config drives it."""
    health: Optional[Dict[str, object]] = None
    """Fleet health summary
    (:meth:`~repro.health.HealthTracker.as_dict`) when supervised."""
    interrupted: bool = False
    """The run was stopped by SIGTERM/SIGINT (graceful interruption):
    everything committed so far is checkpointed and ``resume=True``
    picks up from the manifest."""
    not_run: List[str] = field(default_factory=list)
    """Experiments never attempted because the run was interrupted."""
    pipeline_declined_reason: Optional[str] = None
    """Why this run fell back to sequential scheduling (``None`` when
    it pipelined, or when there was nothing to decline)."""

    @property
    def succeeded(self) -> bool:
        """Whether every experiment *attempted this run* produced data
        (resume-skips, including previously-failed ones, don't count
        against it).  An interrupted run never counts as succeeded --
        it is resumable, not finished."""
        return not self.failures and not self.interrupted

    def summary_lines(self) -> List[str]:
        """One line per experiment outcome."""
        lines = []
        for name in self.skipped:
            lines.append(f"  {name}: skipped (already completed, resumed)")
        for name in self.skipped_failed:
            lines.append(
                f"  {name}: skipped (failed non-transiently in a previous "
                "run; use retry_failed to retry)"
            )
        for name in self.completed:
            attempts = self.attempts.get(name, 1)
            suffix = f" after {attempts} attempts" if attempts > 1 else ""
            if name in self.corrupt_rerun:
                suffix += " (stored copy failed integrity check; re-run)"
            quality = self.quality.get(name) or {}
            quarantined = quality.get("modules_quarantined") or []
            if quarantined:
                suffix += (
                    f" [degraded: {len(quarantined)} module(s) "
                    f"quarantined: {', '.join(quarantined)}]"
                )
            planner = quality.get("planner") or {}
            if planner.get("adaptive"):
                suffix += (
                    f" [adaptive: {planner['trials_run']}/"
                    f"{planner['trials_planned']} trials, "
                    f"{planner['cells_converged']}/{len(planner['cells'])} "
                    "cells converged]"
                )
            lines.append(f"  {name}: done{suffix}")
        for failure in self.failures:
            lines.append(
                f"  {failure.experiment}: FAILED ({failure.reason}, "
                f"{failure.attempts} attempts) {failure.error}"
            )
        for name in self.not_run:
            lines.append(f"  {name}: not run (campaign interrupted)")
        if self.interrupted:
            lines.append(
                "  campaign interrupted; completed work is checkpointed "
                "-- re-run with --resume to continue"
            )
        return lines


class Campaign:
    """Runs and persists a set of figure experiments, failure-isolated."""

    def __init__(
        self,
        scope: CharacterizationScope,
        store: Optional[ResultStore] = None,
        retry: Optional[RetryPolicy] = None,
        time_budget_s: Optional[float] = None,
        chaos: Optional["ChaosConfig"] = None,  # noqa: F821
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        executor: Optional["ExecutorBase"] = None,  # noqa: F821
        health: Optional[HealthTracker] = None,
        pipeline: Optional[bool] = None,
        adaptive: Optional[AdaptiveConfig] = None,
    ):
        if time_budget_s is not None and time_budget_s <= 0:
            raise ConfigurationError("time budget must be positive")
        if adaptive is not None and executor is None:
            raise ConfigurationError(
                "adaptive campaigns need an engine executor"
            )
        if adaptive is not None and health is not None:
            raise ConfigurationError(
                "adaptive campaigns do not compose with health "
                "supervision; run one or the other"
            )
        self._scope = scope
        self._store = store
        self._retry = retry if retry is not None else RetryPolicy()
        self._time_budget_s = time_budget_s
        self._chaos = chaos
        self._sleep = sleep
        self._clock = clock
        self._executor = executor
        self._health = health
        self._pipeline = pipeline
        """``True`` forces pipelined scheduling (when eligible), ``False``
        disables it, ``None`` (default) engages it automatically for
        multi-experiment runs on a pipelining executor."""
        self._adaptive = adaptive

    @property
    def scope(self) -> CharacterizationScope:
        """The device/test scope in force."""
        return self._scope

    @property
    def retry(self) -> RetryPolicy:
        """The transient-fault retry policy in force."""
        return self._retry

    @property
    def health(self) -> Optional[HealthTracker]:
        """The fleet supervisor, when one is attached."""
        return self._health

    @property
    def adaptive(self) -> Optional[AdaptiveConfig]:
        """The adaptive-planning knobs, when attached."""
        return self._adaptive

    def run(
        self,
        experiments: Sequence[str] = ("fig3", "fig6", "fig10"),
        resume: bool = False,
        retry_failed: bool = False,
    ) -> CampaignResult:
        """Execute the named experiments in order.

        With ``resume=True`` (requires a store) experiments already
        recorded as completed in the store's campaign manifest are
        reloaded from disk instead of re-run -- after their content
        checksums verify; a damaged artifact is re-run instead.
        Experiments the previous run recorded as failed for a
        *non-transient* cause are skipped (no retry budget wasted on a
        deterministic error) unless ``retry_failed=True``.
        """
        unknown = [name for name in experiments if name not in EXPERIMENTS]
        if unknown:
            raise ExperimentError(
                f"unknown experiments {unknown}; known: {sorted(EXPERIMENTS)}"
            )
        if not experiments:
            raise ExperimentError("campaign needs at least one experiment")
        if resume and self._store is None:
            raise ExperimentError("resume requires a result store")

        result = CampaignResult()
        config = self._scope.benches[0].module.config

        harness = None
        store = self._store
        lock = (
            self._store.locked()
            if self._store is not None
            else contextlib.nullcontext()
        )
        with lock:
            if self._store is not None:
                # Single writer established: any temp files still lying
                # around are debris from a hard-killed predecessor.
                self._store.clean_stale_tmp()
                if not resume:
                    self._store.clear_journal()
            if self._chaos is not None:
                from ..chaos import ChaosHarness

                harness = ChaosHarness(self._chaos)
                harness.install_all(self._scope.benches)
                chaos_touches_store = (
                    self._chaos.result_corruption_names
                    or self._chaos.store_enospc_names
                    or self._chaos.store_torn_write_names
                    or self._chaos.store_partial_sidecar_names
                )
                if store is not None and chaos_touches_store:
                    from ..chaos import ChaoticStore

                    store = ChaoticStore(store, harness.engine)
            manifest: Optional[CampaignManifest] = None
            if self._store is not None:
                manifest = self._prepare_manifest(
                    experiments, config, resume, result, retry_failed
                )
            # Process-pool executors re-run plans in worker processes
            # where the main harness's proxies don't reach; hand them
            # the chaos profile so injection composes with sharded
            # execution too.  The executor's chaos_profile context
            # restores the previous profile in a finally block, so an
            # executor-raised error can never leave it pointing at this
            # campaign's engine.
            swap = (
                self._executor.chaos_profile(self._chaos)
                if self._chaos is not None and self._executor is not None
                else contextlib.nullcontext()
            )
            try:
                with swap:
                    if self._adaptive is not None:
                        pipelined = self._run_adaptive(
                            experiments, result, manifest, store, config
                        )
                    else:
                        pipelined = self._run_pipelined(
                            experiments, result, manifest, store, config
                        )
                    for name in experiments:
                        if (
                            name in result.skipped
                            or name in result.skipped_failed
                        ):
                            continue
                        if pipelined.get(name, ("", None))[0] == "committed":
                            continue  # persisted by the streaming commit
                        scope, quality = self._scoped()
                        if quality is not None:
                            result.quality[name] = quality
                        if scope is None:
                            failure = ExperimentFailure(
                                experiment=name,
                                reason="no-healthy-modules",
                                attempts=0,
                                elapsed_s=0.0,
                                error=_describe(
                                    NoHealthyModulesError(
                                        "every module in the scope is "
                                        "quarantined"
                                    )
                                ),
                                chain=(),
                            )
                            result.failures.append(failure)
                            result.attempts[name] = 0
                            self._record_failure(manifest, failure)
                            continue
                        outcome = self._consume(name, scope, pipelined)
                        if isinstance(outcome, ExperimentFailure):
                            if (
                                outcome.reason == "retries-exhausted"
                                and self._health is not None
                            ):
                                self._health.record_retry_exhaustion()
                            result.failures.append(outcome)
                            result.attempts[name] = outcome.attempts
                            self._record_failure(manifest, outcome)
                            continue
                        data, attempts = outcome
                        if store is not None and manifest is not None:
                            try:
                                self._commit_experiment(
                                    name, data, manifest, store, config,
                                    quality=quality,
                                )
                            except Exception as exc:  # noqa: BLE001
                                failure = ExperimentFailure(
                                    experiment=name,
                                    reason="store-error",
                                    attempts=attempts,
                                    elapsed_s=0.0,
                                    error=_describe(exc),
                                    chain=_chain(exc),
                                )
                                result.failures.append(failure)
                                result.attempts[name] = attempts
                                self._record_failure(manifest, failure)
                                continue
                        result.data[name] = data
                        result.attempts[name] = attempts
                        result.completed.append(name)
            except KeyboardInterrupt:
                # Graceful interruption (SIGTERM/SIGINT translated by
                # the CLI, or a raised KeyboardInterrupt): everything
                # committed so far is already checkpointed; abandon the
                # in-flight work, close the pool, and report a
                # resumable partial result instead of unwinding.
                result.interrupted = True
                if self._executor is not None:
                    with contextlib.suppress(Exception):
                        self._executor.close()
            finally:
                if harness is not None:
                    result.chaos_faults_injected = (
                        harness.engine.stats.total_injected
                    )
                    harness.uninstall()
            if result.interrupted:
                accounted = (
                    set(result.skipped)
                    | set(result.skipped_failed)
                    | set(result.completed)
                    | {failure.experiment for failure in result.failures}
                )
                result.not_run = [
                    name for name in experiments if name not in accounted
                ]
                if manifest is not None:
                    with contextlib.suppress(Exception):
                        self._store.save_manifest(manifest)
            self._finish_run(result, config)
        return result

    def _finish_run(self, result: CampaignResult, config) -> None:
        """Engine-stats persistence and health summary for one run."""
        if self._executor is not None:
            if self._health is not None:
                self._executor.metrics.breaker_trips = (
                    self._health.breaker_trips
                )
                self._executor.metrics.modules_quarantined = len(
                    self._health.quarantined_serials()
                )
            result.engine_stats = self._executor.metrics.as_dict()
            if self._store is not None:
                self._store.save(
                    "engine-stats",
                    result.engine_stats,
                    config=config,
                    notes="trial-engine metrics for this campaign",
                )
        if self._health is not None:
            result.health = self._health.as_dict()
        if self._store is not None:
            result.stored_at = self._store.directory

    def _pipeline_candidates(
        self, experiments: Sequence[str], result: CampaignResult
    ) -> Tuple[List[str], str]:
        """Experiments eligible for pipelined scheduling this run.

        Pipelining changes *when* trials execute, never what they
        compute: plan building is pure and worker-side chaos schedules
        partition deterministically per (epoch, serial), so chaos
        campaigns pipeline too and still commit bit-identical
        artifacts.  It stands down only when per-experiment
        orchestration genuinely interleaves with execution: health
        supervision (probes and quarantine decisions happen between
        experiments), monkeypatched experiment callables (no program
        to build), or an executor without pipelining support.  Returns
        the eligible names plus the declined reason (empty when
        eligible).
        """
        if self._pipeline is False:
            return [], "disabled"
        executor = self._executor
        if executor is None:
            return [], "no-executor"
        if not getattr(executor, "supports_pipelining", False):
            return [], "executor-not-pipelining"
        if self._health is not None:
            return [], "health-supervised"
        names = [
            name
            for name in experiments
            if name not in result.skipped
            and name not in result.skipped_failed
            and name in EXPERIMENT_PROGRAMS
            and EXPERIMENTS.get(name) is _CANONICAL_EXPERIMENTS.get(name)
        ]
        if not names or (len(names) < 2 and not self._pipeline):
            return [], "fewer-than-2-eligible-experiments"
        return names, ""

    def _run_pipelined(
        self,
        experiments: Sequence[str],
        result: CampaignResult,
        manifest: Optional[CampaignManifest],
        store,
        config,
    ) -> Dict[str, Tuple[str, object]]:
        """Pre-run eligible experiments as one pipelined plan stream.

        With a store attached, every experiment is *committed
        incrementally* -- journal intent, atomic artifact write,
        manifest update -- the moment its last plan settles, strictly
        in experiment order and while later experiments' plans are
        still executing, so a crash loses at most the in-flight
        program.  Its buffered status becomes ``"committed"`` and the
        main loop skips it.  Without a store, results are only
        buffered and the main loop consumes them as before.  Either
        way everything persisted is bit-identical to a sequential run.
        """
        names, reason = self._pipeline_candidates(experiments, result)
        result.pipeline_declined_reason = reason or None
        if self._executor is not None and reason:
            self._executor.metrics.pipeline_declined_reason = reason
        if not names:
            return {}
        buffered: Dict[str, Tuple[str, object]] = {}
        programs = []
        for name in names:
            try:
                programs.append(EXPERIMENT_PROGRAMS[name](self._scope))
            except Exception as exc:  # noqa: BLE001 -- isolate the sweep
                # Same fate as the figure function raising on its
                # first plan build: a non-transient failure.
                buffered[name] = ("error", exc)

        commit: Optional[Callable[[str, Tuple[str, object]], None]] = None
        if store is not None and manifest is not None:

            def commit(name: str, outcome: Tuple[str, object]) -> None:
                status, value = outcome
                if status != "ok":
                    buffered[name] = outcome
                    return
                try:
                    self._commit_experiment(
                        name, value, manifest, store, config
                    )
                except KeyboardInterrupt:
                    raise
                except Exception as exc:  # noqa: BLE001
                    # The data is fine but the disk is not; the main
                    # loop records a resumable store-error failure.
                    buffered[name] = ("store-error", exc)
                    return
                result.data[name] = value
                result.attempts[name] = 1
                result.completed.append(name)
                buffered[name] = ("committed", value)

        if programs:
            outcomes = CampaignScheduler(self._executor).run(
                programs, on_program=commit
            )
            for name, outcome in outcomes.items():
                buffered.setdefault(name, outcome)
        return buffered

    def _run_adaptive(
        self,
        experiments: Sequence[str],
        result: CampaignResult,
        manifest: Optional[CampaignManifest],
        store,
        config,
    ) -> Dict[str, Tuple[str, object]]:
        """Run eligible experiments through the adaptive planner.

        Mirrors :meth:`_run_pipelined`'s commit choreography -- each
        figure is journaled, written atomically, and recorded in the
        manifest the moment its matrix settles -- but the matrix runs
        in CI-targeted rounds instead of at a fixed budget.  Every
        completed round appends an ``adaptive-round`` journal record
        (``simra-dram repair`` ignores unknown events, so these are
        pure progress breadcrumbs for a killed run), and each committed
        artifact carries a ``planner`` quality annotation with the
        per-cell trial accounting.  Experiments without a canonical
        program (monkeypatched figures) fall back to the fixed-budget
        sequential path.
        """
        names = [
            name
            for name in experiments
            if name not in result.skipped
            and name not in result.skipped_failed
            and name in EXPERIMENT_PROGRAMS
            and EXPERIMENTS.get(name) is _CANONICAL_EXPERIMENTS.get(name)
        ]
        if not names:
            return {}
        buffered: Dict[str, Tuple[str, object]] = {}

        def journal_round(
            program: str, round_index: int, allocation: Dict[int, int]
        ) -> None:
            if self._store is None:
                return
            with contextlib.suppress(Exception):
                self._store.journal_append(
                    {
                        "event": "adaptive-round",
                        "experiment": program,
                        "round": round_index,
                        "allocation": {
                            str(step): int(count)
                            for step, count in sorted(allocation.items())
                        },
                    }
                )

        planner = self._adaptive.planner(
            self._executor, on_round=journal_round
        )
        for name in names:
            try:
                program = EXPERIMENT_PROGRAMS[name](self._scope)
                outcome = planner.run_program(program)
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # noqa: BLE001 -- isolate the sweep
                buffered[name] = ("error", exc)
                continue
            quality = {"planner": outcome.planner_dict()}
            result.quality[name] = quality
            if store is not None and manifest is not None:
                try:
                    self._commit_experiment(
                        name, outcome.value, manifest, store, config,
                        quality=quality,
                    )
                except KeyboardInterrupt:
                    raise
                except Exception as exc:  # noqa: BLE001
                    buffered[name] = ("store-error", exc)
                    continue
                result.data[name] = outcome.value
                result.attempts[name] = 1
                result.completed.append(name)
                buffered[name] = ("committed", outcome.value)
            else:
                buffered[name] = ("ok", outcome.value)
        return buffered

    def _commit_experiment(
        self, name: str, data, manifest: CampaignManifest, store, config,
        quality: Optional[Dict[str, object]] = None,
    ) -> None:
        """Durably persist one finished experiment.

        Write-ahead discipline: journal the intent, write the artifact
        atomically (fsync before rename), update the manifest, then
        journal completion.  An intent without a matching done entry
        marks the artifact as suspect for ``simra-dram repair``.
        """
        self._store.journal_append(
            {"event": "commit-intent", "experiment": name}
        )
        store.save(
            name,
            storable(data),
            config=config,
            notes=f"campaign experiment {name}",
            quality=quality,
        )
        if name not in manifest.completed:
            manifest.completed.append(name)
        manifest.failures.pop(name, None)
        self._store.save_manifest(manifest)
        self._store.journal_append(
            {"event": "commit-done", "experiment": name}
        )

    def _consume(
        self,
        name: str,
        scope: CharacterizationScope,
        pipelined: Dict[str, Tuple[str, object]],
    ) -> Union[Tuple[object, int], ExperimentFailure]:
        """One experiment's outcome: buffered pipelined result or a run."""
        if name in pipelined:
            status, value = pipelined[name]
            if status == "ok":
                return value, 1
            if status == "store-error":
                # The experiment itself succeeded; the commit did not.
                # Recorded with its own reason so resume's skip check
                # (which only skips deterministic "error" failures)
                # re-runs it once the store is repaired.
                assert isinstance(value, Exception)
                return ExperimentFailure(
                    experiment=name,
                    reason="store-error",
                    attempts=1,
                    elapsed_s=0.0,
                    error=_describe(value),
                    chain=_chain(value),
                )
            if isinstance(value, TransientInfrastructureError):
                # A worker-side chaos fault leaked past the executor's
                # retries: fall back to the sequential retry path.
                return self._run_one(name, scope)
            assert isinstance(value, Exception)
            return ExperimentFailure(
                experiment=name,
                reason="error",
                attempts=1,
                elapsed_s=0.0,
                error=_describe(value),
                chain=_chain(value),
            )
        return self._run_one(name, scope)

    def _scoped(self):
        """The (possibly degraded) scope for the next experiment.

        Without a health tracker this is the full scope.  With one,
        every bench is probed first; quarantined modules leave the
        scope and the returned quality annotation records exactly what
        was excluded.  Returns ``(None, quality)`` when no module is
        healthy.
        """
        if self._health is None:
            return self._scope, None
        healthy = self._probe_benches()
        total = len(self._scope.benches)
        quarantined = self._health.quarantined_serials()
        quality = {
            "supervised": True,
            "modules_total": total,
            "modules_active": [b.module.serial for b in healthy],
            "modules_quarantined": list(quarantined),
            "coverage": (len(healthy) / total) if total else 1.0,
        }
        if not healthy:
            return None, quality
        if len(healthy) == total:
            return self._scope, quality
        # Safe restriction: group sampling and measurement noise are
        # serial-keyed, so the surviving modules' data is bit-identical
        # to a run scoped to them from the start.
        return replace(self._scope, benches=healthy), quality

    def _probe_benches(self) -> List:
        """Probe every bench with a NOP program, feeding the tracker.

        The probe loop per bench is bounded by its breaker: repeated
        transient failures trip it (quarantine), a persistent failure
        trips it immediately, and an open breaker's cooldown is
        advanced by the very ``admits`` consultations made here -- so
        a quarantined module gets a half-open re-probe a few
        experiments later and rejoins the fleet if its rig recovered.
        """
        probe = ProgramBuilder().nop().build()
        healthy = []
        for bench in self._scope.benches:
            serial = bench.module.serial
            self._health.register(serial)
            admitted = False
            while self._health.admits(serial):
                try:
                    bench.run(probe)
                except PersistentBenchError:
                    self._health.record_persistent(serial)
                    break
                except TransientInfrastructureError:
                    self._health.record_transient(serial)
                    continue
                self._health.record_success(serial)
                admitted = True
                break
            if admitted:
                healthy.append(bench)
        return healthy

    def _record_failure(
        self,
        manifest: Optional[CampaignManifest],
        failure: ExperimentFailure,
    ) -> None:
        """Checkpoint a failure so resume can skip or retry it."""
        if self._store is None or manifest is None:
            return
        manifest.failures[failure.experiment] = {
            "reason": failure.reason,
            "attempts": failure.attempts,
            "error": failure.error,
            "chain": list(failure.chain),
        }
        self._store.save_manifest(manifest)

    def _fingerprint(self, config) -> dict:
        """Config identity plus the scope knobs that shape the data.

        Resuming with a different ``--groups``/``--trials`` (or bank/
        subarray selection) would mix incompatible statistics, so those
        ride along with the ``SimulationConfig`` fingerprint.
        """
        fingerprint = dict(config.fingerprint())
        fingerprint.update(
            modules=len(self._scope.benches),
            banks=list(self._scope.banks),
            subarrays=list(self._scope.subarrays),
            groups_per_size=self._scope.groups_per_size,
            trials=self._scope.trials,
        )
        if self._adaptive is not None:
            # Adaptive budgets shape the data: resuming a fixed-budget
            # store adaptively (or vice versa, or with different
            # knobs) would mix incompatible statistics.
            fingerprint["adaptive"] = self._adaptive.as_dict()
        return fingerprint

    def _prepare_manifest(
        self,
        experiments: Sequence[str],
        config,
        resume: bool,
        result: CampaignResult,
        retry_failed: bool,
    ) -> CampaignManifest:
        """Load or start the store's checkpoint; fill resumable skips."""
        fingerprint = self._fingerprint(config)
        serials = [bench.module.serial for bench in self._scope.benches]
        reader = getattr(self._store, "reader", self._store)
        manifest = reader.load_manifest() if resume else None
        if manifest is not None:
            if manifest.fingerprint != fingerprint:
                raise ExperimentError(
                    "cannot resume: the stored campaign ran with a different "
                    f"configuration ({manifest.fingerprint} vs {fingerprint})"
                )
            for name in experiments:
                if name in manifest.completed and reader.has(name):
                    try:
                        result.data[name] = reader.load(name)
                    except ResultCorruptionError:
                        # Damaged after a clean write (bit rot, partial
                        # overwrite): don't trust it -- re-run.
                        result.corrupt_rerun.append(name)
                        manifest.completed.remove(name)
                        if self._health is not None:
                            self._health.record_checksum_mismatch()
                        continue
                    result.skipped.append(name)
            if not retry_failed:
                for name in experiments:
                    failure = manifest.failures.get(name)
                    if (
                        failure is not None
                        and failure.get("reason") == "error"
                        and name not in result.skipped
                    ):
                        # A non-transient failure is deterministic:
                        # re-running it would waste the retry budget.
                        result.skipped_failed.append(name)
            manifest.planned = list(experiments)
            if not manifest.serials:
                manifest.serials = serials
        else:
            manifest = CampaignManifest(
                planned=list(experiments),
                completed=[],
                fingerprint=fingerprint,
                serials=serials,
            )
        self._store.save_manifest(manifest)
        return manifest

    def _run_one(
        self, name: str, scope: CharacterizationScope
    ) -> Union[Tuple[object, int], ExperimentFailure]:
        """One experiment under the retry policy and time budget."""
        started = self._clock()
        attempt = 0
        while True:
            attempt += 1
            try:
                # Only pass the executor when one was configured: tests
                # monkeypatch EXPERIMENTS with single-argument callables
                # and the default call signature must keep working.
                if self._executor is not None:
                    return (
                        EXPERIMENTS[name](scope, executor=self._executor),
                        attempt,
                    )
                return EXPERIMENTS[name](scope), attempt
            except TransientInfrastructureError as exc:
                elapsed = self._clock() - started
                if attempt >= self._retry.max_attempts:
                    return ExperimentFailure(
                        experiment=name,
                        reason="retries-exhausted",
                        attempts=attempt,
                        elapsed_s=elapsed,
                        error=_describe(exc),
                        chain=_chain(exc),
                    )
                if (
                    self._time_budget_s is not None
                    and elapsed >= self._time_budget_s
                ):
                    return ExperimentFailure(
                        experiment=name,
                        reason="time-budget",
                        attempts=attempt,
                        elapsed_s=elapsed,
                        error=_describe(exc),
                        chain=_chain(exc),
                    )
                draw = rng.generator("campaign-backoff", name, attempt).random()
                self._sleep(self._retry.delay_s(attempt - 1, draw))
            except Exception as exc:  # noqa: BLE001 -- isolate the sweep
                return ExperimentFailure(
                    experiment=name,
                    reason="error",
                    attempts=attempt,
                    elapsed_s=self._clock() - started,
                    error=_describe(exc),
                    chain=_chain(exc),
                )

    def render(self, result: CampaignResult) -> str:
        """Human-readable report of a campaign's results."""
        sections: List[str] = []
        for name in result.data:
            sections.append(_render_experiment(name, result.data[name]))
        for failure in result.failures:
            lines = [f"{failure.experiment}: FAILED ({failure.reason}, "
                     f"{failure.attempts} attempts, {failure.elapsed_s:.1f} s)"]
            lines.extend(f"  {link}" for link in failure.chain)
            sections.append("\n".join(lines))
        return "\n\n".join(sections)


# Kept as an alias: the canonical implementation moved next to the
# store (whose checksums are computed over the storable form).
_storable = storable


def _render_experiment(name: str, data) -> str:
    """Best-effort rendering of one experiment's data structure."""
    from .stats import DistributionSummary

    if not isinstance(data, dict) or not data:
        return f"{name}: {data!r}"
    sample = next(iter(data.values()))
    if isinstance(sample, dict) and sample and isinstance(
        next(iter(sample.values())), DistributionSummary
    ):
        blocks = []
        for key, cell in data.items():
            rows = {str(inner): summary for inner, summary in cell.items()}
            blocks.append(
                format_distribution_table(f"{name} [{key}] (%)", rows)
            )
        return "\n".join(blocks)
    if isinstance(sample, dict):
        # Possibly nested one level deeper (fig7) or plain series.
        inner_sample = next(iter(sample.values())) if sample else None
        if isinstance(inner_sample, dict):
            blocks = []
            for key, cell in data.items():
                flattened = {}
                for mid, leaf in cell.items():
                    if isinstance(leaf, dict):
                        for inner, value in leaf.items():
                            label = f"{mid} @{inner}"
                            flattened[label] = value
                    else:
                        flattened[str(mid)] = leaf
                if flattened and isinstance(
                    next(iter(flattened.values())), DistributionSummary
                ):
                    blocks.append(
                        format_distribution_table(f"{name} [{key}] (%)", flattened)
                    )
                else:
                    blocks.append(
                        format_series_table(
                            f"{name} [{key}]", {str(key): flattened}
                        )
                    )
            return "\n".join(blocks)
        series = {str(key): value for key, value in data.items()}
        return format_series_table(f"{name} (%)", series)
    if isinstance(sample, DistributionSummary):
        rows = {str(key): value for key, value in data.items()}
        return format_distribution_table(f"{name} (%)", rows)
    return f"{name}: {data!r}"
