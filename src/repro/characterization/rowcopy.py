"""Section 6: characterization of Multi-RowCopy.

Reproduces the data behind Fig 10 (timing grid), Fig 11 (data
pattern), Fig 12a (temperature), and Fig 12b (voltage).  The sweep
itself runs on the trial engine: this module only builds the
:class:`~repro.engine.TrialPlan`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..core.patterns import COPY_TESTED_PATTERNS, DataPattern
from ..engine import (
    ExecutorBase,
    ExperimentProgram,
    MultiRowCopyKernel,
    PlanStep,
    TrialPlan,
    run_plan,
    tasks_for_scope,
)
from .activation import _mean_rate, _nested, _summarize_rates  # noqa: F401
from .experiment import CharacterizationScope, OperatingPoint
from .stats import DistributionSummary, summarize

COPY_DESTINATIONS = (1, 3, 7, 15, 31)
"""Destination-row counts the paper tests (group sizes 2..32)."""

FIG10_T1_VALUES = (1.5, 3.0, 36.0)
FIG10_T2_VALUES = (1.5, 3.0)

FIG12_TEMPERATURES = (50.0, 60.0, 70.0, 80.0, 90.0)
FIG12_VPP_LEVELS = (2.5, 2.4, 2.3, 2.2, 2.1)

COPY_POINT = OperatingPoint(t1_ns=36.0, t2_ns=3.0)
"""The best Multi-RowCopy timing configuration (Obs 14)."""


def build_copy_plan(
    scope: CharacterizationScope,
    n_destinations: int,
    point: OperatingPoint,
) -> TrialPlan:
    """The Multi-RowCopy sweep as a declarative plan."""
    group_size = n_destinations + 1
    tasks = tasks_for_scope(
        scope,
        group_size,
        lambda bench: n_destinations * bench.module.config.columns_per_row,
    )
    return TrialPlan(
        name=f"mrc-{n_destinations}",
        kernel=MultiRowCopyKernel(),
        point=point,
        tasks=tasks,
        benches=list(scope.benches),
    )


def multi_row_copy_distribution(
    scope: CharacterizationScope,
    n_destinations: int,
    point: OperatingPoint,
    executor: Optional[ExecutorBase] = None,
) -> DistributionSummary:
    """Success-rate distribution of copying to N destination rows.

    Per the section 3.4 methodology: initialize destinations with one
    pattern, the source with a distinct pattern, run the copy, read
    each destination back with nominal timing.
    """
    result = run_plan(build_copy_plan(scope, n_destinations, point), executor)
    return summarize(result.rates())


def program_fig10(
    scope: CharacterizationScope,
    destinations: Sequence[int] = COPY_DESTINATIONS,
    t1_values: Sequence[float] = FIG10_T1_VALUES,
    t2_values: Sequence[float] = FIG10_T2_VALUES,
) -> ExperimentProgram:
    """Fig 10 as a declarative program (see :mod:`repro.engine.scheduler`)."""
    steps = []
    slots = []
    for t1 in t1_values:
        for t2 in t2_values:
            point = COPY_POINT.with_timing(t1, t2)
            for m in destinations:
                steps.append(
                    PlanStep(build_copy_plan(scope, m, point), _summarize_rates)
                )
                slots.append(((t1, t2), m))
    return ExperimentProgram(
        "fig10", tuple(steps), lambda values: _nested(slots, values)
    )


def figure10_timing_grid(
    scope: CharacterizationScope,
    destinations: Sequence[int] = COPY_DESTINATIONS,
    t1_values: Sequence[float] = FIG10_T1_VALUES,
    t2_values: Sequence[float] = FIG10_T2_VALUES,
    executor: Optional[ExecutorBase] = None,
) -> Dict[Tuple[float, float], Dict[int, DistributionSummary]]:
    """Fig 10: Multi-RowCopy success over the (t1, t2) grid."""
    return program_fig10(scope, destinations, t1_values, t2_values).run(executor)


def program_fig11(
    scope: CharacterizationScope,
    destinations: Sequence[int] = COPY_DESTINATIONS,
    patterns: Sequence[DataPattern] = COPY_TESTED_PATTERNS,
) -> ExperimentProgram:
    """Fig 11 as a declarative program."""
    steps = []
    slots = []
    for pattern in patterns:
        point = COPY_POINT.with_pattern(pattern)
        for m in destinations:
            steps.append(PlanStep(build_copy_plan(scope, m, point), _mean_rate))
            slots.append((pattern.kind, m))
    return ExperimentProgram(
        "fig11", tuple(steps), lambda values: _nested(slots, values)
    )


def figure11_patterns(
    scope: CharacterizationScope,
    destinations: Sequence[int] = COPY_DESTINATIONS,
    patterns: Sequence[DataPattern] = COPY_TESTED_PATTERNS,
    executor: Optional[ExecutorBase] = None,
) -> Dict[str, Dict[int, float]]:
    """Fig 11: average Multi-RowCopy success by data pattern."""
    return program_fig11(scope, destinations, patterns).run(executor)


def program_fig12a(
    scope: CharacterizationScope,
    destinations: Sequence[int] = COPY_DESTINATIONS,
    temperatures: Sequence[float] = FIG12_TEMPERATURES,
) -> ExperimentProgram:
    """Fig 12a as a declarative program."""
    steps = []
    slots = []
    for temp in temperatures:
        point = COPY_POINT.with_temperature(temp)
        for m in destinations:
            steps.append(PlanStep(build_copy_plan(scope, m, point), _mean_rate))
            slots.append((temp, m))
    return ExperimentProgram(
        "fig12a", tuple(steps), lambda values: _nested(slots, values)
    )


def figure12a_temperature(
    scope: CharacterizationScope,
    destinations: Sequence[int] = COPY_DESTINATIONS,
    temperatures: Sequence[float] = FIG12_TEMPERATURES,
    executor: Optional[ExecutorBase] = None,
) -> Dict[float, Dict[int, float]]:
    """Fig 12a: average Multi-RowCopy success vs temperature."""
    return program_fig12a(scope, destinations, temperatures).run(executor)


def program_fig12b(
    scope: CharacterizationScope,
    destinations: Sequence[int] = COPY_DESTINATIONS,
    vpp_levels: Sequence[float] = FIG12_VPP_LEVELS,
) -> ExperimentProgram:
    """Fig 12b as a declarative program."""
    steps = []
    slots = []
    for vpp in vpp_levels:
        point = COPY_POINT.with_vpp(vpp)
        for m in destinations:
            steps.append(PlanStep(build_copy_plan(scope, m, point), _mean_rate))
            slots.append((vpp, m))
    return ExperimentProgram(
        "fig12b", tuple(steps), lambda values: _nested(slots, values)
    )


def figure12b_voltage(
    scope: CharacterizationScope,
    destinations: Sequence[int] = COPY_DESTINATIONS,
    vpp_levels: Sequence[float] = FIG12_VPP_LEVELS,
    executor: Optional[ExecutorBase] = None,
) -> Dict[float, Dict[int, float]]:
    """Fig 12b: average Multi-RowCopy success vs wordline voltage."""
    return program_fig12b(scope, destinations, vpp_levels).run(executor)
