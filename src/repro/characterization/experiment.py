"""Experiment scaffolding shared by all characterizations.

:class:`CharacterizationScope` describes *what gets tested*: which
module instances, which banks, which subarrays, how many row groups
per activation size, and how many trials per group -- the knobs of
the paper's "Number of Instances Tested" paragraph (section 3.1:
3 subarrays x 16 banks x 100 groups x 5 sizes per module).  Scaled-
down scopes keep the same structure with smaller counts.

:class:`OperatingPoint` describes *the conditions*: APA timings,
temperature, wordline voltage, and data pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Sequence, Tuple

from ..bender.testbench import TestBench
from ..config import DEFAULT_CONFIG, SimulationConfig
from ..core.patterns import DataPattern, PATTERN_RANDOM
from ..core.rowgroups import RowGroup, sample_groups
from ..dram.vendor import ModuleSpec, TESTED_MODULES
from ..errors import ExperimentError


@dataclass(frozen=True)
class OperatingPoint:
    """Environmental and timing conditions of one measurement."""

    t1_ns: float = 3.0
    t2_ns: float = 3.0
    temperature_c: float = 50.0
    vpp: float = 2.5
    pattern: DataPattern = PATTERN_RANDOM

    def with_timing(self, t1_ns: float, t2_ns: float) -> "OperatingPoint":
        """Copy with different APA timings."""
        return replace(self, t1_ns=t1_ns, t2_ns=t2_ns)

    def with_temperature(self, temperature_c: float) -> "OperatingPoint":
        """Copy at a different chip temperature."""
        return replace(self, temperature_c=temperature_c)

    def with_vpp(self, vpp: float) -> "OperatingPoint":
        """Copy at a different wordline voltage."""
        return replace(self, vpp=vpp)

    def with_pattern(self, pattern: DataPattern) -> "OperatingPoint":
        """Copy with a different data pattern."""
        return replace(self, pattern=pattern)


@dataclass
class CharacterizationScope:
    """What to test: devices, locations, group counts, trials."""

    benches: List[TestBench]
    banks: Sequence[int] = (0,)
    subarrays: Sequence[int] = (0,)
    groups_per_size: int = 4
    trials: int = 8
    seed_tag: str = "characterization"

    def __post_init__(self) -> None:
        if not self.benches:
            raise ExperimentError("scope needs at least one test bench")
        if self.groups_per_size < 1 or self.trials < 1:
            raise ExperimentError("group and trial counts must be positive")

    @classmethod
    def build(
        cls,
        config: SimulationConfig = DEFAULT_CONFIG,
        specs: Sequence[ModuleSpec] = TESTED_MODULES,
        modules_per_spec: int = 1,
        banks: Sequence[int] = (0,),
        subarrays: Sequence[int] = (0,),
        groups_per_size: int = 4,
        trials: int = 8,
    ) -> "CharacterizationScope":
        """Build benches for module instances of the given catalog specs."""
        benches = [
            TestBench.for_spec(spec, instance, config=config)
            for spec in specs
            for instance in range(min(modules_per_spec, spec.n_modules))
        ]
        return cls(
            benches=benches,
            banks=banks,
            subarrays=subarrays,
            groups_per_size=groups_per_size,
            trials=trials,
        )

    @classmethod
    def quick(
        cls,
        config: SimulationConfig = None,
        specs: Sequence[ModuleSpec] = TESTED_MODULES,
    ) -> "CharacterizationScope":
        """A scope sized for tests and smoke benchmarks."""
        if config is None:
            config = SimulationConfig.quick()
        return cls.build(
            config=config,
            specs=specs,
            modules_per_spec=1,
            banks=(0,),
            subarrays=(0,),
            groups_per_size=3,
            trials=6,
        )

    def apply_environment(self, point: OperatingPoint) -> None:
        """Drive every bench's rig to the operating point."""
        for bench in self.benches:
            bench.set_temperature(point.temperature_c)
            bench.set_vpp(point.vpp)

    def iter_sites(self) -> Iterator[Tuple[TestBench, int, int]]:
        """Yield every (bench, bank, subarray) test site."""
        for bench in self.benches:
            for bank in self.banks:
                for subarray in self.subarrays:
                    yield bench, bank, subarray

    def groups_for(
        self, bench: TestBench, bank: int, subarray: int, group_size: int
    ) -> List[RowGroup]:
        """The sampled row groups for one site and activation size."""
        subarray_rows = bench.module.profile.subarray_rows
        return sample_groups(
            subarray,
            subarray_rows,
            group_size,
            self.groups_per_size,
            self.seed_tag,
            bench.module.serial,
            bank,
        )
