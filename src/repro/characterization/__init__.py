"""Characterization harness reproducing the paper's sections 4-6.

The harness mirrors the paper's methodology (section 3.1): per module,
randomly select subarrays per bank, randomly sample row groups per
activation size, run repeated trials of each operation, and report the
distribution of per-group success rates across everything tested.
"""

from .stats import (
    BootstrapCI,
    DistributionSummary,
    StreamingBootstrap,
    bootstrap_mean_ci,
    bootstrap_mean_ci_each,
    summarize,
    summarize_each,
)
from .experiment import CharacterizationScope, OperatingPoint
from .activation import (
    activation_success_distribution,
    figure3_timing_grid,
    figure4a_temperature,
    figure4b_voltage,
)
from .majority import (
    majx_success_distribution,
    majx_sizes_for,
    figure6_maj3_grid,
    figure7_patterns,
    figure8_temperature,
    figure9_voltage,
)
from .rowcopy import (
    multi_row_copy_distribution,
    figure10_timing_grid,
    figure11_patterns,
    figure12a_temperature,
    figure12b_voltage,
)
from .report import (
    format_ci_table,
    format_distribution_table,
    format_series_table,
)
from .disturbance import DisturbanceReport, disturbance_check
from .fleet import baseline_yield, best_group_yields, per_manufacturer_scopes
from .variability import (
    fleet_bootstrap_ci,
    manufacturer_gap,
    module_spread,
    per_module_majx,
)
from .convergence import (
    majx_convergence_cis,
    majx_convergence_curve,
    overestimate_at,
)
from .reader import ResultReader
from .store import CampaignManifest, ResultStore
from .repair import RepairFinding, RepairReport, repair_store
from .campaign import (
    Campaign,
    CampaignResult,
    ExperimentFailure,
    RetryPolicy,
)
from .timing_search import (
    TimingSearchResult,
    best_activation_timing,
    best_copy_timing,
    best_majx_timing,
    search_timings,
)

__all__ = [
    "BootstrapCI",
    "DistributionSummary",
    "StreamingBootstrap",
    "bootstrap_mean_ci",
    "bootstrap_mean_ci_each",
    "summarize",
    "summarize_each",
    "CharacterizationScope",
    "OperatingPoint",
    "activation_success_distribution",
    "figure3_timing_grid",
    "figure4a_temperature",
    "figure4b_voltage",
    "majx_success_distribution",
    "majx_sizes_for",
    "figure6_maj3_grid",
    "figure7_patterns",
    "figure8_temperature",
    "figure9_voltage",
    "multi_row_copy_distribution",
    "figure10_timing_grid",
    "figure11_patterns",
    "figure12a_temperature",
    "figure12b_voltage",
    "format_ci_table",
    "format_distribution_table",
    "format_series_table",
    "DisturbanceReport",
    "disturbance_check",
    "baseline_yield",
    "best_group_yields",
    "per_manufacturer_scopes",
    "fleet_bootstrap_ci",
    "manufacturer_gap",
    "module_spread",
    "per_module_majx",
    "majx_convergence_cis",
    "majx_convergence_curve",
    "overestimate_at",
    "ResultReader",
    "ResultStore",
    "CampaignManifest",
    "RepairFinding",
    "RepairReport",
    "repair_store",
    "Campaign",
    "CampaignResult",
    "ExperimentFailure",
    "RetryPolicy",
    "TimingSearchResult",
    "best_activation_timing",
    "best_copy_timing",
    "best_majx_timing",
    "search_timings",
]
