"""Store repair: classify crash/rot damage and make resume safe.

``simra-dram repair`` (and :func:`repair_store` behind it) closes the
loop the durability machinery opens: atomic writes, checksums, the
write-ahead commit journal, and the store-wide :meth:`ResultStore.verify`
scan can *detect* every damage class a killed writer or rotting disk
produces, and this module *acts* on them:

- a damaged artifact (torn JSON, checksum mismatch, missing or corrupt
  ``.columns.npz`` sidecar) is quarantined -- moved into a
  ``quarantine/`` subdirectory for post-mortem -- or deleted with
  ``delete=True``;
- the campaign manifest is patched so every damaged or missing
  experiment leaves ``completed`` and the next ``--resume`` re-runs it
  (bit-identically, because all measurement noise is context-keyed);
- journal ``commit-intent`` entries with no matching ``commit-done``
  are redone or rolled back: an intact artifact's manifest entry is
  completed, a damaged one follows the quarantine path;
- stale ``*.tmp`` files are deleted, unreferenced sidecars follow the
  quarantine/delete rule, a dead holder's lockfile is removed, and the
  journal is cleared once its information is folded in.

``dry_run=True`` reports everything without touching the store.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import ExperimentError
from .store import CampaignManifest, ResultStore

_QUARANTINE_DIRNAME = "quarantine"


@dataclass(frozen=True)
class RepairFinding:
    """One damaged or suspicious item and what repair did about it."""

    name: str
    classification: str
    """What was wrong: a :meth:`ResultStore.diagnose` damage class,
    ``missing-artifact`` (manifest names it, no file), ``orphaned-tmp``,
    ``orphaned-sidecar``, ``interrupted-commit`` (journal intent with
    no done), ``corrupt-manifest``, or ``stale-lock``."""
    action: str
    """``quarantined`` / ``deleted`` / ``manifest-patched`` /
    ``redone`` / ``none``, with a ``would-`` prefix under dry-run."""
    detail: str = ""


@dataclass
class RepairReport:
    """Outcome of one repair pass over a store."""

    findings: List[RepairFinding] = field(default_factory=list)
    dry_run: bool = False

    @property
    def damage_found(self) -> bool:
        """Whether the scan found anything to repair."""
        return bool(self.findings)

    @property
    def repaired(self) -> int:
        """Items actually (or would-be) acted on."""
        return sum(
            1
            for finding in self.findings
            if finding.action.removeprefix("would-") != "none"
        )

    def summary_lines(self) -> List[str]:
        """One line per finding, plus a verdict."""
        lines = []
        for finding in self.findings:
            detail = f" ({finding.detail})" if finding.detail else ""
            lines.append(
                f"  {finding.name}: {finding.classification} -> "
                f"{finding.action}{detail}"
            )
        if not self.findings:
            lines.append("  store is clean; nothing to repair")
        elif self.dry_run:
            lines.append(
                f"  {self.repaired} item(s) need repair (dry run; "
                "nothing was changed)"
            )
        else:
            lines.append(f"  {self.repaired} item(s) repaired")
        return lines

    def as_dict(self) -> Dict[str, Any]:
        """Plain-JSON form."""
        return {
            "dry_run": self.dry_run,
            "repaired": self.repaired,
            "findings": [
                {
                    "name": finding.name,
                    "classification": finding.classification,
                    "action": finding.action,
                    "detail": finding.detail,
                }
                for finding in self.findings
            ],
        }


def _quarantine(store: ResultStore, filename: str) -> None:
    """Move one store file into the quarantine subdirectory."""
    source = store.directory / filename
    target_dir = store.directory / _QUARANTINE_DIRNAME
    target_dir.mkdir(exist_ok=True)
    shutil.move(str(source), str(target_dir / filename))


def repair_store(
    store: ResultStore, delete: bool = False, dry_run: bool = False
) -> RepairReport:
    """Scan a store, remove/quarantine damage, patch the manifest.

    After a non-dry run the store is ``verify()``-clean: every
    remaining artifact checks out, no debris remains, and the manifest
    only lists experiments whose artifacts are intact -- so the next
    ``campaign --resume`` re-runs exactly the damaged ones.
    """
    report = RepairReport(dry_run=dry_run)
    # Every read goes through the store's lock-free read path; only
    # quarantine moves, manifest patches, and the journal clear touch
    # the write path.
    reader = getattr(store, "reader", store)

    def act(action: str) -> str:
        return f"would-{action}" if dry_run else action

    def remove_artifact(name: str, classification: str, detail: str) -> None:
        # The canonical sidecar plus any generation files a live
        # rewrite parked next to it -- damage takes them all along.
        files = [f"{name}.json"] + reader.sidecar_names(name)
        if not dry_run:
            for filename in files:
                if delete:
                    (store.directory / filename).unlink(missing_ok=True)
                else:
                    _quarantine(store, filename)
        report.findings.append(
            RepairFinding(
                name=name,
                classification=classification,
                action=act("deleted" if delete else "quarantined"),
                detail=detail,
            )
        )

    # The manifest itself can be the casualty (torn mid-checkpoint).
    manifest: Optional[CampaignManifest] = None
    manifest_dirty = False
    try:
        manifest = reader.load_manifest()
    except (ExperimentError, json.JSONDecodeError) as exc:
        if not dry_run:
            _quarantine(store, store.manifest_path.name)
        report.findings.append(
            RepairFinding(
                name=store.manifest_path.name,
                classification="corrupt-manifest",
                action=act("quarantined"),
                detail=f"unreadable checkpoint: {exc}",
            )
        )

    # Damaged artifacts: quarantine/delete, and drop from the manifest
    # so resume re-runs them.
    damaged: List[str] = []
    for name in reader.names():
        classification = reader.validate(name)
        if classification in ("ok", "legacy"):
            continue
        damaged.append(name)
        remove_artifact(
            name,
            classification,
            "artifact failed its integrity diagnosis",
        )
    if manifest is not None:
        for name in damaged:
            if name in manifest.completed:
                manifest.completed.remove(name)
                manifest_dirty = True
        for name in list(manifest.completed):
            if not reader.has(name):
                manifest.completed.remove(name)
                manifest_dirty = True
                report.findings.append(
                    RepairFinding(
                        name=name,
                        classification="missing-artifact",
                        action=act("manifest-patched"),
                        detail="manifest listed it as completed but no "
                        "artifact exists; resume will re-run it",
                    )
                )

    # Journal redo/rollback: an intent with no matching done means the
    # writer died somewhere inside the commit.  If the artifact is
    # intact the only possibly-lost step is the manifest update -- redo
    # it; anything else was handled by the damage scan above.
    done = {
        entry.get("experiment")
        for entry in reader.journal_entries()
        if entry.get("event") == "commit-done"
    }
    for entry in reader.journal_entries():
        if entry.get("event") != "commit-intent":
            continue
        name = entry.get("experiment")
        if not isinstance(name, str) or name in done:
            continue
        done.add(name)  # report each suspect once
        if (
            manifest is not None
            and reader.has(name)
            and reader.validate(name) in ("ok", "legacy")
        ):
            if name not in manifest.completed:
                manifest.completed.append(name)
                manifest_dirty = True
            report.findings.append(
                RepairFinding(
                    name=name,
                    classification="interrupted-commit",
                    action=act("redone"),
                    detail="journal intent without done, artifact "
                    "intact; manifest entry completed",
                )
            )
        else:
            report.findings.append(
                RepairFinding(
                    name=name,
                    classification="interrupted-commit",
                    action=act("none"),
                    detail="journal intent without done; artifact "
                    "absent or already quarantined -- resume re-runs it",
                )
            )

    # Crashed-writer debris.
    for filename in reader.orphaned_tmp_files():
        if not dry_run:
            (store.directory / filename).unlink(missing_ok=True)
        report.findings.append(
            RepairFinding(
                name=filename,
                classification="orphaned-tmp",
                action=act("deleted"),
                detail="stale temp file from an interrupted write",
            )
        )
    for filename in reader.unreferenced_sidecars():
        if not dry_run:
            if delete:
                (store.directory / filename).unlink(missing_ok=True)
            else:
                _quarantine(store, filename)
        report.findings.append(
            RepairFinding(
                name=filename,
                classification="orphaned-sidecar",
                action=act("deleted" if delete else "quarantined"),
                detail="column sidecar no stored document references",
            )
        )

    # A lockfile whose holder is gone would be stolen by the next
    # campaign anyway; removing it here keeps the scan's "clean" verdict
    # honest.  A live holder's lock is left alone (and is the caller's
    # cue not to repair a store mid-campaign).
    lock = reader.lock_path
    if lock.exists():
        from .store import _pid_alive

        try:
            holder = int(lock.read_text().strip() or "0")
        except (OSError, ValueError):
            holder = 0
        if not _pid_alive(holder):
            if not dry_run:
                lock.unlink(missing_ok=True)
            report.findings.append(
                RepairFinding(
                    name=lock.name,
                    classification="stale-lock",
                    action=act("deleted"),
                    detail=f"holder pid {holder} is not running",
                )
            )

    if not dry_run:
        if manifest is not None and manifest_dirty:
            store.save_manifest(manifest)
        store.clear_journal()
    return report
