"""Distribution statistics for box-and-whisker reporting.

The paper reports success-rate *distributions* across all tested row
groups (footnote 8 defines the box plot: box = Q1..Q3, whiskers =
min/max).  :class:`DistributionSummary` carries exactly those five
numbers plus the mean and sample count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ExperimentError


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number summary + mean of a sample of success rates."""

    mean: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    n: int

    @property
    def iqr(self) -> float:
        """Inter-quartile range (the box size)."""
        return self.q3 - self.q1

    def as_percent(self) -> "DistributionSummary":
        """The same summary scaled from fractions to percentages."""
        return DistributionSummary(
            mean=self.mean * 100.0,
            minimum=self.minimum * 100.0,
            q1=self.q1 * 100.0,
            median=self.median * 100.0,
            q3=self.q3 * 100.0,
            maximum=self.maximum * 100.0,
            n=self.n,
        )

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.4f} min={self.minimum:.4f} q1={self.q1:.4f} "
            f"med={self.median:.4f} q3={self.q3:.4f} max={self.maximum:.4f} "
            f"(n={self.n})"
        )


def summarize(values: Sequence[float]) -> DistributionSummary:
    """Compute the five-number summary of a non-empty sample."""
    if len(values) == 0:
        raise ExperimentError("cannot summarize an empty sample")
    arr = np.asarray(values, dtype=np.float64)
    q1, median, q3 = np.percentile(arr, [25.0, 50.0, 75.0])
    return DistributionSummary(
        mean=float(arr.mean()),
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(arr.max()),
        n=int(arr.size),
    )
