"""Distribution statistics for box-and-whisker reporting.

The paper reports success-rate *distributions* across all tested row
groups (footnote 8 defines the box plot: box = Q1..Q3, whiskers =
min/max).  :class:`DistributionSummary` carries exactly those five
numbers plus the mean and sample count.

Fleet-scale analytics batch these: :func:`summarize_each` computes one
summary per sample with a single percentile/mean/extrema pass per
sample length (bit-identical to looping :func:`summarize`), and
:func:`bootstrap_mean_ci` resamples a whole bootstrap in one indexed
gather instead of ``resamples`` Python-level draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .. import rng
from ..errors import ExperimentError


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number summary + mean of a sample of success rates."""

    mean: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    n: int

    @property
    def iqr(self) -> float:
        """Inter-quartile range (the box size)."""
        return self.q3 - self.q1

    def as_percent(self) -> "DistributionSummary":
        """The same summary scaled from fractions to percentages."""
        return DistributionSummary(
            mean=self.mean * 100.0,
            minimum=self.minimum * 100.0,
            q1=self.q1 * 100.0,
            median=self.median * 100.0,
            q3=self.q3 * 100.0,
            maximum=self.maximum * 100.0,
            n=self.n,
        )

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.4f} min={self.minimum:.4f} q1={self.q1:.4f} "
            f"med={self.median:.4f} q3={self.q3:.4f} max={self.maximum:.4f} "
            f"(n={self.n})"
        )


def _validated(values: Sequence[float]) -> np.ndarray:
    """A non-empty, NaN-free float64 array of the sample."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ExperimentError(
            f"can only summarize a flat sample, got shape {arr.shape}"
        )
    if arr.size == 0:
        raise ExperimentError("cannot summarize an empty sample")
    if np.isnan(arr).any():
        raise ExperimentError("cannot summarize a sample containing NaN")
    return arr


def summarize(values: Sequence[float]) -> DistributionSummary:
    """Compute the five-number summary of a non-empty sample."""
    arr = _validated(values)
    q1, median, q3 = np.percentile(arr, [25.0, 50.0, 75.0])
    return DistributionSummary(
        mean=float(arr.mean()),
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(arr.max()),
        n=int(arr.size),
    )


def _summaries_from_matrix(matrix: np.ndarray) -> List[DistributionSummary]:
    """One summary per row, all rows reduced in single vector passes."""
    quartiles = np.percentile(matrix, [25.0, 50.0, 75.0], axis=1)
    means = matrix.mean(axis=1)
    minima = matrix.min(axis=1)
    maxima = matrix.max(axis=1)
    n = int(matrix.shape[1])
    return [
        DistributionSummary(
            mean=float(means[row]),
            minimum=float(minima[row]),
            q1=float(quartiles[0, row]),
            median=float(quartiles[1, row]),
            q3=float(quartiles[2, row]),
            maximum=float(maxima[row]),
            n=n,
        )
        for row in range(matrix.shape[0])
    ]


def summarize_each(
    samples: Sequence[Sequence[float]],
) -> List[DistributionSummary]:
    """One :func:`summarize` per sample, computed in batched passes.

    Samples are grouped by length and each group is reduced as one
    matrix, so a fleet of per-module rate lists costs a handful of
    NumPy reductions instead of one per module.  Results are
    bit-identical to ``[summarize(s) for s in samples]``.
    """
    arrays = [_validated(sample) for sample in samples]
    out: List[DistributionSummary] = [None] * len(arrays)  # type: ignore[list-item]
    by_length: Dict[int, List[int]] = {}
    for index, arr in enumerate(arrays):
        by_length.setdefault(arr.size, []).append(index)
    for indices in by_length.values():
        matrix = np.stack([arrays[index] for index in indices])
        for index, summary in zip(indices, _summaries_from_matrix(matrix)):
            out[index] = summary
    return out


@dataclass(frozen=True)
class BootstrapCI:
    """Percentile-bootstrap confidence interval for a sample mean."""

    mean: float
    low: float
    high: float
    confidence: float
    resamples: int
    n: int

    @property
    def halfwidth(self) -> float:
        """Half the interval width (a scalar error-bar size)."""
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.4f} "
            f"[{self.low:.4f}, {self.high:.4f}] "
            f"@{self.confidence:.0%} (n={self.n}, B={self.resamples})"
        )


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Seeded percentile-bootstrap CI of the sample mean.

    The whole bootstrap is one ``(resamples, n)`` integer draw and one
    gathered row-mean, deterministic for a given ``(seed, n,
    resamples)`` triple.
    """
    if not 0.0 < confidence < 1.0:
        raise ExperimentError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ExperimentError(f"need at least one resample, got {resamples}")
    arr = _validated(values)
    generator = rng.generator("bootstrap-ci", seed, int(arr.size), int(resamples))
    indices = generator.integers(0, arr.size, size=(int(resamples), arr.size))
    means = arr[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(means, [100.0 * alpha, 100.0 * (1.0 - alpha)])
    return BootstrapCI(
        mean=float(arr.mean()),
        low=float(low),
        high=float(high),
        confidence=float(confidence),
        resamples=int(resamples),
        n=int(arr.size),
    )


def bootstrap_mean_ci_each(
    samples: Sequence[Sequence[float]],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> List[BootstrapCI]:
    """One :func:`bootstrap_mean_ci` per sample, batched across cells.

    The per-cell bootstrap is keyed by ``(seed, n, resamples)`` only,
    so every same-length sample shares one index draw: samples are
    grouped by length, each group's resampling is a single gathered
    ``(cells, resamples, n)`` row-mean, and the percentiles reduce per
    row.  Results are bit-identical to looping
    ``[bootstrap_mean_ci(s, ...) for s in samples]`` -- NumPy reduces
    the contiguous trailing axis with the same pairwise summation
    either way -- which the test suite asserts exactly.
    """
    if not 0.0 < confidence < 1.0:
        raise ExperimentError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ExperimentError(f"need at least one resample, got {resamples}")
    arrays = [_validated(sample) for sample in samples]
    out: List[BootstrapCI] = [None] * len(arrays)  # type: ignore[list-item]
    by_length: Dict[int, List[int]] = {}
    for index, arr in enumerate(arrays):
        by_length.setdefault(arr.size, []).append(index)
    alpha = (1.0 - confidence) / 2.0
    percentiles = [100.0 * alpha, 100.0 * (1.0 - alpha)]
    for n, group in by_length.items():
        generator = rng.generator("bootstrap-ci", seed, int(n), int(resamples))
        indices = generator.integers(0, n, size=(int(resamples), n))
        matrix = np.stack([arrays[index] for index in group])
        # (cells, resamples, n) gather, reduced over the trailing axis.
        # Mixing a basic slice with the advanced index leaves the
        # gathered copy transposed in memory; the C-order copy makes
        # each row's reduction walk the same contiguous layout as the
        # scalar path, which the bit-identity contract needs.
        means = np.ascontiguousarray(matrix[:, indices]).mean(axis=2)
        bounds = np.percentile(means, percentiles, axis=1)
        cell_means = matrix.mean(axis=1)
        for row, index in enumerate(group):
            out[index] = BootstrapCI(
                mean=float(cell_means[row]),
                low=float(bounds[0, row]),
                high=float(bounds[1, row]),
                confidence=float(confidence),
                resamples=int(resamples),
                n=int(n),
            )
    return out


class StreamingBootstrap:
    """Incremental (Poisson) bootstrap CI over a growing observation stream.

    The adaptive planner feeds each cell's per-trial rates in round
    chunks; re-running :func:`bootstrap_mean_ci` from scratch every
    round would re-resample every prior round's observations.  This
    class keeps ``resamples`` weighted running sums instead: extending
    by a chunk of ``k`` observations draws a ``(resamples, k)``
    Poisson(1) weight block -- keyed by ``(seed, chunk_index, k,
    resamples)``, so a given round's weights never depend on how
    earlier rounds were sized -- and updates each resample's weighted
    sum and count in one matrix product.  Prior chunks are never
    touched again: cost per round is O(resamples * k), not
    O(resamples * total).

    The Poisson bootstrap approximates the multinomial resample count
    per observation with independent Poisson(1) draws; resamples whose
    total count lands on zero fall back to the running sample mean.
    """

    def __init__(
        self,
        confidence: float = 0.95,
        resamples: int = 2000,
        seed: int = 0,
    ):
        if not 0.0 < confidence < 1.0:
            raise ExperimentError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        if resamples < 1:
            raise ExperimentError(f"need at least one resample, got {resamples}")
        self.confidence = float(confidence)
        self.resamples = int(resamples)
        self.seed = int(seed)
        self._chunks = 0
        self._n = 0
        self._total = 0.0
        self._weighted_sums = np.zeros(self.resamples, dtype=np.float64)
        self._weight_counts = np.zeros(self.resamples, dtype=np.int64)

    @property
    def n(self) -> int:
        """Observations absorbed so far."""
        return self._n

    def extend(self, values: Sequence[float]) -> None:
        """Absorb one chunk of observations (a round's worth)."""
        chunk = np.asarray(values, dtype=np.float64)
        if chunk.ndim != 1:
            raise ExperimentError(
                f"can only extend with a flat chunk, got shape {chunk.shape}"
            )
        if chunk.size == 0:
            return
        if np.isnan(chunk).any():
            raise ExperimentError("cannot extend with a chunk containing NaN")
        weights = rng.generator(
            "stream-bootstrap", self.seed, self._chunks,
            int(chunk.size), self.resamples,
        ).poisson(1.0, size=(self.resamples, int(chunk.size)))
        self._weighted_sums += weights @ chunk
        self._weight_counts += weights.sum(axis=1)
        self._chunks += 1
        self._n += int(chunk.size)
        self._total += float(chunk.sum())

    def ci(self) -> BootstrapCI:
        """The CI over everything absorbed so far."""
        if self._n == 0:
            raise ExperimentError("cannot compute a CI before any observations")
        mean = self._total / self._n
        means = np.where(
            self._weight_counts > 0,
            self._weighted_sums / np.maximum(self._weight_counts, 1),
            mean,
        )
        alpha = (1.0 - self.confidence) / 2.0
        low, high = np.percentile(
            means, [100.0 * alpha, 100.0 * (1.0 - alpha)]
        )
        return BootstrapCI(
            mean=float(mean),
            low=float(low),
            high=float(high),
            confidence=self.confidence,
            resamples=self.resamples,
            n=self._n,
        )
