"""Persistence of characterization results.

Long campaigns (the full-fidelity settings in EXPERIMENTS.md) should
not be re-run to re-render a table.  :class:`ResultStore` writes
experiment outputs as JSON next to a metadata header (seed, scale,
library version), and reloads them with
:class:`~repro.characterization.stats.DistributionSummary` objects
reconstructed.

Robustness contract (a campaign can be killed at any instant):

- every write lands via a same-directory temp file and ``os.replace``,
  so a reader never observes a half-written document;
- a truncated or hand-damaged file raises
  :class:`~repro.errors.ResultCorruptionError` (an
  :class:`~repro.errors.ExperimentError`) rather than a bare
  ``json.JSONDecodeError``;
- a :class:`CampaignManifest` checkpoint records which experiments of
  a campaign already completed, letting ``--resume`` skip them.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..config import SimulationConfig
from ..errors import ExperimentError, ResultCorruptionError
from .stats import DistributionSummary

_FORMAT_VERSION = 1
_SUMMARY_MARKER = "__distribution_summary__"
_MANIFEST_FILENAME = "campaign-manifest.json"
_MANIFEST_VERSION = 1


def _encode(value: Any) -> Any:
    if isinstance(value, DistributionSummary):
        payload = asdict(value)
        payload[_SUMMARY_MARKER] = True
        return payload
    if isinstance(value, dict):
        return {str(key): _encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ExperimentError(f"cannot persist value of type {type(value)!r}")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if value.get(_SUMMARY_MARKER):
            fields = {k: v for k, v in value.items() if k != _SUMMARY_MARKER}
            return DistributionSummary(**fields)
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def _write_atomic(path: Path, text: str) -> None:
    """Write ``text`` so that ``path`` is always absent or complete."""
    handle = tempfile.NamedTemporaryFile(
        "w",
        dir=path.parent,
        prefix=f".{path.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


@dataclass
class CampaignManifest:
    """Checkpoint of one campaign: what was planned, what finished."""

    planned: List[str]
    completed: List[str] = field(default_factory=list)
    fingerprint: Optional[Dict[str, Any]] = None
    """:meth:`~repro.config.SimulationConfig.fingerprint` of the run."""


class ResultStore:
    """Directory of named experiment results."""

    def __init__(self, directory: Path):
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path:
        """Where results live."""
        return self._directory

    def _path(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ExperimentError(f"invalid result name {name!r}")
        if f"{name}.json" == _MANIFEST_FILENAME:
            raise ExperimentError(
                f"result name {name!r} is reserved for the campaign manifest"
            )
        return self._directory / f"{name}.json"

    def _read_document(self, name: str, path: Path) -> Dict[str, Any]:
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ResultCorruptionError(
                f"stored result {name!r} is corrupt or truncated: {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise ResultCorruptionError(
                f"stored result {name!r} is not a result document"
            )
        return document

    def save(
        self,
        name: str,
        data: Any,
        config: Optional[SimulationConfig] = None,
        notes: str = "",
    ) -> Path:
        """Persist one experiment's output (atomically)."""
        from .. import __version__

        document = {
            "format_version": _FORMAT_VERSION,
            "library_version": __version__,
            "notes": notes,
            "config": (
                {
                    "seed": config.seed,
                    "columns_per_row": config.columns_per_row,
                    "trials_per_test": config.trials_per_test,
                }
                if config is not None
                else None
            ),
            "data": _encode(data),
        }
        path = self._path(name)
        _write_atomic(path, json.dumps(document, indent=2, sort_keys=True))
        return path

    def load(self, name: str) -> Any:
        """Reload a result's data payload."""
        path = self._path(name)
        if not path.exists():
            raise ExperimentError(f"no stored result named {name!r}")
        document = self._read_document(name, path)
        if document.get("format_version") != _FORMAT_VERSION:
            raise ExperimentError(
                f"result {name!r} uses unsupported format "
                f"{document.get('format_version')}"
            )
        return _decode(document["data"])

    def metadata(self, name: str) -> Dict[str, Any]:
        """Reload a result's header (version, config, notes)."""
        path = self._path(name)
        if not path.exists():
            raise ExperimentError(f"no stored result named {name!r}")
        document = self._read_document(name, path)
        return {
            key: document.get(key)
            for key in ("format_version", "library_version", "config", "notes")
        }

    def has(self, name: str) -> bool:
        """Whether a result with this name is stored."""
        return self._path(name).exists()

    def names(self) -> list:
        """All stored result names (the campaign manifest excluded)."""
        return sorted(
            p.stem
            for p in self._directory.glob("*.json")
            if p.name != _MANIFEST_FILENAME and not p.name.startswith(".")
        )

    # -- campaign manifest -------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        """Where this store's campaign checkpoint lives."""
        return self._directory / _MANIFEST_FILENAME

    def save_manifest(self, manifest: CampaignManifest) -> Path:
        """Checkpoint a campaign's progress (atomically)."""
        document = {
            "format_version": _MANIFEST_VERSION,
            "planned": list(manifest.planned),
            "completed": list(manifest.completed),
            "fingerprint": manifest.fingerprint,
        }
        path = self.manifest_path
        _write_atomic(path, json.dumps(document, indent=2, sort_keys=True))
        return path

    def load_manifest(self) -> Optional[CampaignManifest]:
        """Reload the campaign checkpoint, or ``None`` if none exists."""
        path = self.manifest_path
        if not path.exists():
            return None
        document = self._read_document("campaign manifest", path)
        if document.get("format_version") != _MANIFEST_VERSION:
            raise ExperimentError(
                "campaign manifest uses unsupported format "
                f"{document.get('format_version')}"
            )
        return CampaignManifest(
            planned=list(document.get("planned", [])),
            completed=list(document.get("completed", [])),
            fingerprint=document.get("fingerprint"),
        )

    def clear_manifest(self) -> None:
        """Forget the campaign checkpoint (results stay)."""
        try:
            self.manifest_path.unlink()
        except FileNotFoundError:
            pass
