"""Persistence of characterization results.

Long campaigns (the full-fidelity settings in EXPERIMENTS.md) should
not be re-run to re-render a table.  :class:`ResultStore` writes
experiment outputs as JSON next to a metadata header (seed, scale,
library version), and reloads them with
:class:`~repro.characterization.stats.DistributionSummary` objects
reconstructed.

Robustness contract (a campaign can be killed at any instant, and
stored bytes can rot between runs):

- every write lands via a same-directory temp file and ``os.replace``,
  so a reader never observes a half-written document;
- every document carries a schema-version stamp and a content
  checksum (SHA-256 over the canonical JSON of its data payload);
  loads verify the checksum, so a file damaged *after* a clean write
  raises :class:`~repro.errors.ChecksumMismatchError` instead of being
  trusted silently on resume;
- version-3 documents may move their summary numbers into a columnar
  ``<name>.columns.npz`` sidecar (one float64 array per summary field)
  whose arrays carry their own checksum; the document's main digest is
  always computed over the reconstructed version-2-equivalent payload,
  so a version-2 and version-3 write of the same data share one digest
  and ``simra-dram audit`` recompute checks need no format awareness;
- a truncated or hand-damaged file raises
  :class:`~repro.errors.ResultCorruptionError` (an
  :class:`~repro.errors.ExperimentError`) rather than a bare
  ``json.JSONDecodeError``;
- a :class:`CampaignManifest` checkpoint records which experiments of
  a campaign completed or failed (and on which module fleet), letting
  ``--resume`` skip finished figures and ``simra-dram audit`` rebuild
  the scope for a recompute cross-check.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..config import SimulationConfig
from ..errors import ChecksumMismatchError, ExperimentError, ResultCorruptionError
from .stats import DistributionSummary

_FORMAT_VERSION = 2
_COLUMNAR_FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)
"""Version 1 documents predate content checksums; they still load but
``verify`` reports them as ``"legacy"``.  Version 3 documents park
their summary numbers in a columnar ``.npz`` sidecar."""
_CHECKSUM_ALGORITHM = "sha256-canonical-json"
_COLUMNS_CHECKSUM_ALGORITHM = "sha256-column-arrays"
_SUMMARY_MARKER = "__distribution_summary__"
_COLUMN_REF = "__column_ref__"
_COLUMN_FIELDS = ("mean", "minimum", "q1", "median", "q3", "maximum", "n")
_MANIFEST_FILENAME = "campaign-manifest.json"
_MANIFEST_VERSION = 2
_SUPPORTED_MANIFEST_VERSIONS = (1, 2)


def _encode(value: Any) -> Any:
    if isinstance(value, DistributionSummary):
        payload = asdict(value)
        payload[_SUMMARY_MARKER] = True
        return payload
    if isinstance(value, dict):
        return {str(key): _encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ExperimentError(f"cannot persist value of type {type(value)!r}")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if value.get(_SUMMARY_MARKER):
            fields = {k: v for k, v in value.items() if k != _SUMMARY_MARKER}
            return DistributionSummary(**fields)
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def storable(data: Any) -> Any:
    """Convert tuple keys (t1, t2) to strings for JSON persistence."""
    if isinstance(data, dict):
        return {
            (
                ",".join(str(part) for part in key)
                if isinstance(key, tuple)
                else str(key)
            ): storable(value)
            for key, value in data.items()
        }
    return data


def canonical_data(data: Any) -> Any:
    """The persistence-normal form of a payload (what ``load`` returns).

    Recomputed figures pass through this before being compared against
    stored ones, so tuple keys, numpy scalars converted upstream, and
    summary objects all land in the same representation.
    """
    return _decode(_encode(storable(data)))


def content_checksum(encoded: Any) -> str:
    """SHA-256 of the canonical JSON form of an encoded data payload."""
    canonical = json.dumps(encoded, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _strip_summaries(encoded: Any, columns: List[Dict[str, Any]]) -> Any:
    """Replace encoded summary dicts with ``{_COLUMN_REF: i}`` stubs.

    Appends each stripped summary to ``columns`` in document order, so
    index ``i`` in the sidecar arrays is the ``i``-th summary a reader
    encounters walking the payload.
    """
    if isinstance(encoded, dict):
        if encoded.get(_SUMMARY_MARKER):
            index = len(columns)
            columns.append(encoded)
            return {_COLUMN_REF: index}
        return {key: _strip_summaries(item, columns) for key, item in encoded.items()}
    if isinstance(encoded, list):
        return [_strip_summaries(item, columns) for item in encoded]
    return encoded


def _restore_summaries(value: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`_strip_summaries`: stubs back to summary dicts."""
    if isinstance(value, dict):
        if _COLUMN_REF in value:
            index = value[_COLUMN_REF]
            record: Dict[str, Any] = {
                name: (
                    int(arrays[name][index])
                    if name == "n"
                    else float(arrays[name][index])
                )
                for name in _COLUMN_FIELDS
            }
            record[_SUMMARY_MARKER] = True
            return record
        return {key: _restore_summaries(item, arrays) for key, item in value.items()}
    if isinstance(value, list):
        return [_restore_summaries(item, arrays) for item in value]
    return value


def _columns_checksum(arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over the sidecar arrays' dtypes, shapes, and raw bytes.

    Hashing array *contents* (not the ``.npz`` file bytes) keeps the
    digest independent of zip metadata such as entry timestamps.
    """
    digest = hashlib.sha256()
    for name in _COLUMN_FIELDS:
        arr = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(arr.dtype).encode("utf-8"))
        digest.update(str(arr.shape).encode("utf-8"))
        digest.update(arr.tobytes())
    return digest.hexdigest()


def _write_atomic(path: Path, text: str) -> None:
    """Write ``text`` so that ``path`` is always absent or complete."""
    handle = tempfile.NamedTemporaryFile(
        "w",
        dir=path.parent,
        prefix=f".{path.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


@dataclass
class CampaignManifest:
    """Checkpoint of one campaign: what was planned, what finished."""

    planned: List[str]
    completed: List[str] = field(default_factory=list)
    fingerprint: Optional[Dict[str, Any]] = None
    """:meth:`~repro.config.SimulationConfig.fingerprint` of the run."""
    failures: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    """Experiments the campaign gave up on, by name: ``reason`` /
    ``attempts`` / ``error`` / ``chain``.  Non-transient failures are
    skipped on resume unless ``--retry-failed`` is passed."""
    serials: List[str] = field(default_factory=list)
    """Module serials of the campaign's full scope, in bench order --
    what ``simra-dram audit`` rebuilds the recompute scope from."""


class ResultStore:
    """Directory of named experiment results.

    With ``columnar=True`` (or ``save(..., columnar=True)``), payloads
    containing :class:`DistributionSummary` objects are written in
    format version 3: the summary numbers land in a checksummed
    ``<name>.columns.npz`` sidecar and the JSON document keeps only
    ``{"__column_ref__": i}`` stubs.  Loads reconstruct the exact
    version-2 payload, and the main content digest is unchanged across
    the two encodings.
    """

    def __init__(self, directory: Path, columnar: bool = False):
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._columnar = bool(columnar)

    @property
    def directory(self) -> Path:
        """Where results live."""
        return self._directory

    @property
    def columnar(self) -> bool:
        """Whether saves default to the columnar (version 3) format."""
        return self._columnar

    def _path(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ExperimentError(f"invalid result name {name!r}")
        if f"{name}.json" == _MANIFEST_FILENAME:
            raise ExperimentError(
                f"result name {name!r} is reserved for the campaign manifest"
            )
        return self._directory / f"{name}.json"

    def _columns_path(self, name: str) -> Path:
        return self._directory / f"{name}.columns.npz"

    def _write_columns(self, path: Path, arrays: Dict[str, np.ndarray]) -> None:
        """Write the sidecar arrays so ``path`` is always absent or complete."""
        handle = tempfile.NamedTemporaryFile(
            "wb",
            dir=path.parent,
            prefix=f".{path.name}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                np.savez(handle, **arrays)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def _read_document(self, name: str, path: Path) -> Dict[str, Any]:
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ResultCorruptionError(
                f"stored result {name!r} is corrupt or truncated: {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise ResultCorruptionError(
                f"stored result {name!r} is not a result document"
            )
        return document

    def _payload(
        self, name: str, document: Dict[str, Any], verify: bool = True
    ) -> Any:
        """The version-2-equivalent encoded data payload of a document.

        For version-3 documents this loads the column sidecar, checks
        its array checksum (when ``verify``), and rebuilds the summary
        dicts in place of their ``__column_ref__`` stubs.
        """
        data = document.get("data")
        if document.get("format_version") != _COLUMNAR_FORMAT_VERSION:
            return data
        columns = document.get("columns")
        if not isinstance(columns, dict):
            raise ResultCorruptionError(
                f"stored result {name!r} is columnar but lists no column sidecar"
            )
        sidecar = self._directory / str(columns.get("file", ""))
        if not sidecar.exists():
            raise ResultCorruptionError(
                f"stored result {name!r} is missing its column sidecar "
                f"{columns.get('file')!r}"
            )
        try:
            with np.load(sidecar) as archive:
                arrays = {field: archive[field] for field in _COLUMN_FIELDS}
        except ChecksumMismatchError:
            raise
        except Exception as exc:
            raise ResultCorruptionError(
                f"column sidecar of result {name!r} is corrupt: {exc}"
            ) from exc
        if verify:
            recorded = (columns.get("checksum") or {}).get("digest")
            actual = _columns_checksum(arrays)
            if recorded != actual:
                raise ChecksumMismatchError(
                    f"column sidecar of result {name!r} failed its integrity "
                    f"check: recorded digest {recorded!r}, recomputed {actual!r}"
                )
        return _restore_summaries(data, arrays)

    def _verify_document(
        self, name: str, document: Dict[str, Any], payload: Any
    ) -> None:
        """Check a document's content checksum (if it has one) against
        its version-2-equivalent payload."""
        checksum = document.get("checksum")
        if not isinstance(checksum, dict):
            return  # legacy version-1 document: nothing to verify against
        recorded = checksum.get("digest")
        actual = content_checksum(payload)
        if recorded != actual:
            raise ChecksumMismatchError(
                f"stored result {name!r} failed its integrity check: "
                f"recorded digest {recorded!r}, recomputed {actual!r}"
            )

    def save(
        self,
        name: str,
        data: Any,
        config: Optional[Union[SimulationConfig, Dict[str, Any]]] = None,
        notes: str = "",
        quality: Optional[Dict[str, Any]] = None,
        columnar: Optional[bool] = None,
    ) -> Path:
        """Persist one experiment's output (atomically, checksummed).

        ``quality`` carries explicit data-quality annotations (e.g.
        which modules were quarantined while this figure ran) so a
        degraded campaign never shrinks its fleet silently.

        ``columnar`` overrides the store's default format for this one
        save; a columnar request for a payload with no summaries falls
        back to a plain version-2 document.  ``config`` also accepts an
        already-serialized header dict, so ``simra-dram migrate`` can
        re-save an artifact without rebuilding its
        :class:`~repro.config.SimulationConfig`.
        """
        from .. import __version__

        encoded = _encode(data)
        document = {
            "format_version": _FORMAT_VERSION,
            "library_version": __version__,
            "notes": notes,
            "config": (
                dict(config)
                if isinstance(config, dict)
                else (
                    {
                        "seed": config.seed,
                        "columns_per_row": config.columns_per_row,
                        "trials_per_test": config.trials_per_test,
                    }
                    if config is not None
                    else None
                )
            ),
            "quality": quality,
            "checksum": {
                "algorithm": _CHECKSUM_ALGORITHM,
                "digest": content_checksum(encoded),
            },
            "data": encoded,
        }
        path = self._path(name)
        sidecar = self._columns_path(name)
        use_columnar = self._columnar if columnar is None else bool(columnar)
        if use_columnar:
            columns: List[Dict[str, Any]] = []
            stripped = _strip_summaries(encoded, columns)
            if columns:
                arrays = {
                    field: np.asarray(
                        [record[field] for record in columns],
                        dtype=np.int64 if field == "n" else np.float64,
                    )
                    for field in _COLUMN_FIELDS
                }
                document["format_version"] = _COLUMNAR_FORMAT_VERSION
                document["data"] = stripped
                document["columns"] = {
                    "file": sidecar.name,
                    "count": len(columns),
                    "checksum": {
                        "algorithm": _COLUMNS_CHECKSUM_ALGORITHM,
                        "digest": _columns_checksum(arrays),
                    },
                }
                # Sidecar first: a crash between the two writes leaves
                # the old document pointing at refreshed arrays, which
                # verify() reports as a mismatch -- detectable, never
                # silently wrong.
                self._write_columns(sidecar, arrays)
                _write_atomic(
                    path, json.dumps(document, indent=2, sort_keys=True)
                )
                return path
        _write_atomic(path, json.dumps(document, indent=2, sort_keys=True))
        try:
            sidecar.unlink()  # drop a stale sidecar from an earlier v3 write
        except FileNotFoundError:
            pass
        return path

    def load(self, name: str, verify: bool = True) -> Any:
        """Reload a result's data payload (integrity-checked)."""
        path = self._path(name)
        if not path.exists():
            raise ExperimentError(f"no stored result named {name!r}")
        document = self._read_document(name, path)
        if document.get("format_version") not in _SUPPORTED_VERSIONS:
            raise ExperimentError(
                f"result {name!r} uses unsupported format "
                f"{document.get('format_version')}"
            )
        payload = self._payload(name, document, verify=verify)
        if verify:
            self._verify_document(name, document, payload)
        return _decode(payload)

    def metadata(self, name: str) -> Dict[str, Any]:
        """Reload a result's header (version, config, notes, quality)."""
        path = self._path(name)
        if not path.exists():
            raise ExperimentError(f"no stored result named {name!r}")
        document = self._read_document(name, path)
        return {
            key: document.get(key)
            for key in (
                "format_version",
                "library_version",
                "config",
                "notes",
                "quality",
                "checksum",
                "columns",
            )
        }

    def verify(self, name: str) -> str:
        """Integrity status of one stored artifact, without raising.

        Returns ``"ok"`` (checksum verified), ``"legacy"`` (version-1
        document with no checksum), ``"corrupt"`` (unparsable, or a
        columnar document whose sidecar is missing or unreadable), or
        ``"mismatch"`` (parses, but the content -- document or sidecar
        arrays -- no longer matches its recorded digest).
        """
        path = self._path(name)
        if not path.exists():
            return "missing"
        try:
            document = self._read_document(name, path)
        except ResultCorruptionError:
            return "corrupt"
        if not isinstance(document.get("checksum"), dict):
            return "legacy"
        try:
            payload = self._payload(name, document, verify=True)
            self._verify_document(name, document, payload)
        except ChecksumMismatchError:
            return "mismatch"
        except ResultCorruptionError:
            return "corrupt"
        return "ok"

    def has(self, name: str) -> bool:
        """Whether a result with this name is stored."""
        return self._path(name).exists()

    def names(self) -> List[str]:
        """All stored result names, sorted (campaign manifest excluded)."""
        return sorted(
            p.stem
            for p in self._directory.glob("*.json")
            if p.name != _MANIFEST_FILENAME and not p.name.startswith(".")
        )

    # -- campaign manifest -------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        """Where this store's campaign checkpoint lives."""
        return self._directory / _MANIFEST_FILENAME

    def save_manifest(self, manifest: CampaignManifest) -> Path:
        """Checkpoint a campaign's progress (atomically)."""
        document = {
            "format_version": _MANIFEST_VERSION,
            "planned": list(manifest.planned),
            "completed": list(manifest.completed),
            "fingerprint": manifest.fingerprint,
            "failures": dict(manifest.failures),
            "serials": list(manifest.serials),
        }
        path = self.manifest_path
        _write_atomic(path, json.dumps(document, indent=2, sort_keys=True))
        return path

    def load_manifest(self) -> Optional[CampaignManifest]:
        """Reload the campaign checkpoint, or ``None`` if none exists."""
        path = self.manifest_path
        if not path.exists():
            return None
        document = self._read_document("campaign manifest", path)
        if document.get("format_version") not in _SUPPORTED_MANIFEST_VERSIONS:
            raise ExperimentError(
                "campaign manifest uses unsupported format "
                f"{document.get('format_version')}"
            )
        return CampaignManifest(
            planned=list(document.get("planned", [])),
            completed=list(document.get("completed", [])),
            fingerprint=document.get("fingerprint"),
            failures=dict(document.get("failures", {})),
            serials=list(document.get("serials", [])),
        )

    def clear_manifest(self) -> None:
        """Forget the campaign checkpoint (results stay)."""
        try:
            self.manifest_path.unlink()
        except FileNotFoundError:
            pass
