"""Persistence of characterization results.

Long campaigns (the full-fidelity settings in EXPERIMENTS.md) should
not be re-run to re-render a table.  :class:`ResultStore` writes
experiment outputs as JSON next to a metadata header (seed, scale,
library version), and reloads them with
:class:`~repro.characterization.stats.DistributionSummary` objects
reconstructed.

Robustness contract (a campaign can be killed at any instant, and
stored bytes can rot between runs):

- every write lands via a same-directory temp file and ``os.replace``,
  so a reader never observes a half-written document;
- every document carries a schema-version stamp and a content
  checksum (SHA-256 over the canonical JSON of its data payload);
  loads verify the checksum, so a file damaged *after* a clean write
  raises :class:`~repro.errors.ChecksumMismatchError` instead of being
  trusted silently on resume;
- a truncated or hand-damaged file raises
  :class:`~repro.errors.ResultCorruptionError` (an
  :class:`~repro.errors.ExperimentError`) rather than a bare
  ``json.JSONDecodeError``;
- a :class:`CampaignManifest` checkpoint records which experiments of
  a campaign completed or failed (and on which module fleet), letting
  ``--resume`` skip finished figures and ``simra-dram audit`` rebuild
  the scope for a recompute cross-check.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..config import SimulationConfig
from ..errors import ChecksumMismatchError, ExperimentError, ResultCorruptionError
from .stats import DistributionSummary

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)
"""Version 1 documents predate content checksums; they still load but
``verify`` reports them as ``"legacy"``."""
_CHECKSUM_ALGORITHM = "sha256-canonical-json"
_SUMMARY_MARKER = "__distribution_summary__"
_MANIFEST_FILENAME = "campaign-manifest.json"
_MANIFEST_VERSION = 2
_SUPPORTED_MANIFEST_VERSIONS = (1, 2)


def _encode(value: Any) -> Any:
    if isinstance(value, DistributionSummary):
        payload = asdict(value)
        payload[_SUMMARY_MARKER] = True
        return payload
    if isinstance(value, dict):
        return {str(key): _encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ExperimentError(f"cannot persist value of type {type(value)!r}")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if value.get(_SUMMARY_MARKER):
            fields = {k: v for k, v in value.items() if k != _SUMMARY_MARKER}
            return DistributionSummary(**fields)
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def storable(data: Any) -> Any:
    """Convert tuple keys (t1, t2) to strings for JSON persistence."""
    if isinstance(data, dict):
        return {
            (
                ",".join(str(part) for part in key)
                if isinstance(key, tuple)
                else str(key)
            ): storable(value)
            for key, value in data.items()
        }
    return data


def canonical_data(data: Any) -> Any:
    """The persistence-normal form of a payload (what ``load`` returns).

    Recomputed figures pass through this before being compared against
    stored ones, so tuple keys, numpy scalars converted upstream, and
    summary objects all land in the same representation.
    """
    return _decode(_encode(storable(data)))


def content_checksum(encoded: Any) -> str:
    """SHA-256 of the canonical JSON form of an encoded data payload."""
    canonical = json.dumps(encoded, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _write_atomic(path: Path, text: str) -> None:
    """Write ``text`` so that ``path`` is always absent or complete."""
    handle = tempfile.NamedTemporaryFile(
        "w",
        dir=path.parent,
        prefix=f".{path.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


@dataclass
class CampaignManifest:
    """Checkpoint of one campaign: what was planned, what finished."""

    planned: List[str]
    completed: List[str] = field(default_factory=list)
    fingerprint: Optional[Dict[str, Any]] = None
    """:meth:`~repro.config.SimulationConfig.fingerprint` of the run."""
    failures: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    """Experiments the campaign gave up on, by name: ``reason`` /
    ``attempts`` / ``error`` / ``chain``.  Non-transient failures are
    skipped on resume unless ``--retry-failed`` is passed."""
    serials: List[str] = field(default_factory=list)
    """Module serials of the campaign's full scope, in bench order --
    what ``simra-dram audit`` rebuilds the recompute scope from."""


class ResultStore:
    """Directory of named experiment results."""

    def __init__(self, directory: Path):
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path:
        """Where results live."""
        return self._directory

    def _path(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ExperimentError(f"invalid result name {name!r}")
        if f"{name}.json" == _MANIFEST_FILENAME:
            raise ExperimentError(
                f"result name {name!r} is reserved for the campaign manifest"
            )
        return self._directory / f"{name}.json"

    def _read_document(self, name: str, path: Path) -> Dict[str, Any]:
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ResultCorruptionError(
                f"stored result {name!r} is corrupt or truncated: {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise ResultCorruptionError(
                f"stored result {name!r} is not a result document"
            )
        return document

    def _verify_document(self, name: str, document: Dict[str, Any]) -> None:
        """Check a parsed document's content checksum (if it has one)."""
        checksum = document.get("checksum")
        if not isinstance(checksum, dict):
            return  # legacy version-1 document: nothing to verify against
        recorded = checksum.get("digest")
        actual = content_checksum(document.get("data"))
        if recorded != actual:
            raise ChecksumMismatchError(
                f"stored result {name!r} failed its integrity check: "
                f"recorded digest {recorded!r}, recomputed {actual!r}"
            )

    def save(
        self,
        name: str,
        data: Any,
        config: Optional[SimulationConfig] = None,
        notes: str = "",
        quality: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist one experiment's output (atomically, checksummed).

        ``quality`` carries explicit data-quality annotations (e.g.
        which modules were quarantined while this figure ran) so a
        degraded campaign never shrinks its fleet silently.
        """
        from .. import __version__

        encoded = _encode(data)
        document = {
            "format_version": _FORMAT_VERSION,
            "library_version": __version__,
            "notes": notes,
            "config": (
                {
                    "seed": config.seed,
                    "columns_per_row": config.columns_per_row,
                    "trials_per_test": config.trials_per_test,
                }
                if config is not None
                else None
            ),
            "quality": quality,
            "checksum": {
                "algorithm": _CHECKSUM_ALGORITHM,
                "digest": content_checksum(encoded),
            },
            "data": encoded,
        }
        path = self._path(name)
        _write_atomic(path, json.dumps(document, indent=2, sort_keys=True))
        return path

    def load(self, name: str, verify: bool = True) -> Any:
        """Reload a result's data payload (integrity-checked)."""
        path = self._path(name)
        if not path.exists():
            raise ExperimentError(f"no stored result named {name!r}")
        document = self._read_document(name, path)
        if document.get("format_version") not in _SUPPORTED_VERSIONS:
            raise ExperimentError(
                f"result {name!r} uses unsupported format "
                f"{document.get('format_version')}"
            )
        if verify:
            self._verify_document(name, document)
        return _decode(document["data"])

    def metadata(self, name: str) -> Dict[str, Any]:
        """Reload a result's header (version, config, notes, quality)."""
        path = self._path(name)
        if not path.exists():
            raise ExperimentError(f"no stored result named {name!r}")
        document = self._read_document(name, path)
        return {
            key: document.get(key)
            for key in (
                "format_version",
                "library_version",
                "config",
                "notes",
                "quality",
                "checksum",
            )
        }

    def verify(self, name: str) -> str:
        """Integrity status of one stored artifact, without raising.

        Returns ``"ok"`` (checksum verified), ``"legacy"`` (version-1
        document with no checksum), ``"corrupt"`` (unparsable), or
        ``"mismatch"`` (parses, but the content no longer matches its
        recorded digest).
        """
        path = self._path(name)
        if not path.exists():
            return "missing"
        try:
            document = self._read_document(name, path)
        except ResultCorruptionError:
            return "corrupt"
        if not isinstance(document.get("checksum"), dict):
            return "legacy"
        try:
            self._verify_document(name, document)
        except ChecksumMismatchError:
            return "mismatch"
        return "ok"

    def has(self, name: str) -> bool:
        """Whether a result with this name is stored."""
        return self._path(name).exists()

    def names(self) -> list:
        """All stored result names (the campaign manifest excluded)."""
        return sorted(
            p.stem
            for p in self._directory.glob("*.json")
            if p.name != _MANIFEST_FILENAME and not p.name.startswith(".")
        )

    # -- campaign manifest -------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        """Where this store's campaign checkpoint lives."""
        return self._directory / _MANIFEST_FILENAME

    def save_manifest(self, manifest: CampaignManifest) -> Path:
        """Checkpoint a campaign's progress (atomically)."""
        document = {
            "format_version": _MANIFEST_VERSION,
            "planned": list(manifest.planned),
            "completed": list(manifest.completed),
            "fingerprint": manifest.fingerprint,
            "failures": dict(manifest.failures),
            "serials": list(manifest.serials),
        }
        path = self.manifest_path
        _write_atomic(path, json.dumps(document, indent=2, sort_keys=True))
        return path

    def load_manifest(self) -> Optional[CampaignManifest]:
        """Reload the campaign checkpoint, or ``None`` if none exists."""
        path = self.manifest_path
        if not path.exists():
            return None
        document = self._read_document("campaign manifest", path)
        if document.get("format_version") not in _SUPPORTED_MANIFEST_VERSIONS:
            raise ExperimentError(
                "campaign manifest uses unsupported format "
                f"{document.get('format_version')}"
            )
        return CampaignManifest(
            planned=list(document.get("planned", [])),
            completed=list(document.get("completed", [])),
            fingerprint=document.get("fingerprint"),
            failures=dict(document.get("failures", {})),
            serials=list(document.get("serials", [])),
        )

    def clear_manifest(self) -> None:
        """Forget the campaign checkpoint (results stay)."""
        try:
            self.manifest_path.unlink()
        except FileNotFoundError:
            pass
