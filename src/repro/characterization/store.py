"""Persistence of characterization results.

Long campaigns (the full-fidelity settings in EXPERIMENTS.md) should
not be re-run to re-render a table.  :class:`ResultStore` writes
experiment outputs as JSON next to a metadata header (seed, scale,
library version), and reloads them with
:class:`~repro.characterization.stats.DistributionSummary` objects
reconstructed.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Optional

from ..config import SimulationConfig
from ..errors import ExperimentError
from .stats import DistributionSummary

_FORMAT_VERSION = 1
_SUMMARY_MARKER = "__distribution_summary__"


def _encode(value: Any) -> Any:
    if isinstance(value, DistributionSummary):
        payload = asdict(value)
        payload[_SUMMARY_MARKER] = True
        return payload
    if isinstance(value, dict):
        return {str(key): _encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ExperimentError(f"cannot persist value of type {type(value)!r}")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if value.get(_SUMMARY_MARKER):
            fields = {k: v for k, v in value.items() if k != _SUMMARY_MARKER}
            return DistributionSummary(**fields)
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


class ResultStore:
    """Directory of named experiment results."""

    def __init__(self, directory: Path):
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)

    def _path(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ExperimentError(f"invalid result name {name!r}")
        return self._directory / f"{name}.json"

    def save(
        self,
        name: str,
        data: Any,
        config: Optional[SimulationConfig] = None,
        notes: str = "",
    ) -> Path:
        """Persist one experiment's output."""
        from .. import __version__

        document = {
            "format_version": _FORMAT_VERSION,
            "library_version": __version__,
            "notes": notes,
            "config": (
                {
                    "seed": config.seed,
                    "columns_per_row": config.columns_per_row,
                    "trials_per_test": config.trials_per_test,
                }
                if config is not None
                else None
            ),
            "data": _encode(data),
        }
        path = self._path(name)
        path.write_text(json.dumps(document, indent=2, sort_keys=True))
        return path

    def load(self, name: str) -> Any:
        """Reload a result's data payload."""
        path = self._path(name)
        if not path.exists():
            raise ExperimentError(f"no stored result named {name!r}")
        document = json.loads(path.read_text())
        if document.get("format_version") != _FORMAT_VERSION:
            raise ExperimentError(
                f"result {name!r} uses unsupported format "
                f"{document.get('format_version')}"
            )
        return _decode(document["data"])

    def metadata(self, name: str) -> Dict[str, Any]:
        """Reload a result's header (version, config, notes)."""
        path = self._path(name)
        if not path.exists():
            raise ExperimentError(f"no stored result named {name!r}")
        document = json.loads(path.read_text())
        return {
            key: document.get(key)
            for key in ("format_version", "library_version", "config", "notes")
        }

    def names(self) -> list:
        """All stored result names."""
        return sorted(p.stem for p in self._directory.glob("*.json"))
