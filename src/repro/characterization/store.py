"""Persistence of characterization results (the write path).

Long campaigns (the full-fidelity settings in EXPERIMENTS.md) should
not be re-run to re-render a table.  :class:`ResultStore` writes
experiment outputs as JSON next to a metadata header (seed, scale,
library version), and reloads them with
:class:`~repro.characterization.stats.DistributionSummary` objects
reconstructed.

The storage layer is split in two:

- :class:`~repro.characterization.reader.ResultReader` (the read
  path) loads, verifies, and classifies stored artifacts without ever
  touching the ``.store.lock`` -- arbitrarily many concurrent readers;
- :class:`ResultStore` (this module, the write path) owns every
  mutation -- atomic artifact writes, the campaign manifest, the
  write-ahead journal, and the single-writer lock -- and *delegates
  all reads* to an embedded reader (exposed as :attr:`ResultStore.
  reader`), so the writer and its consumers interpret bytes
  identically.

Robustness contract (a campaign can be killed at any instant, and
stored bytes can rot between runs):

- every write lands via a same-directory temp file and ``os.replace``,
  so a reader never observes a half-written document;
- every document carries a schema-version stamp and a content
  checksum (SHA-256 over the canonical JSON of its data payload);
  loads verify the checksum, so a file damaged *after* a clean write
  raises :class:`~repro.errors.ChecksumMismatchError` instead of being
  trusted silently on resume;
- version-3 documents may move their summary numbers into a columnar
  ``<name>.columns.npz`` sidecar (one float64 array per summary field)
  whose arrays carry their own checksum; the document's main digest is
  always computed over the reconstructed version-2-equivalent payload,
  so a version-2 and version-3 write of the same data share one digest
  and ``simra-dram audit`` recompute checks need no format awareness;
- a truncated or hand-damaged file raises
  :class:`~repro.errors.ResultCorruptionError` (an
  :class:`~repro.errors.ExperimentError`) rather than a bare
  ``json.JSONDecodeError``;
- a :class:`CampaignManifest` checkpoint records which experiments of
  a campaign completed or failed (and on which module fleet), letting
  ``--resume`` skip finished figures and ``simra-dram audit`` rebuild
  the scope for a recompute cross-check.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

import numpy as np

from ..config import SimulationConfig
from ..errors import ExperimentError, StoreLockedError
from .reader import (  # noqa: F401  (re-exported: the codec lives with the reader)
    _CHECKSUM_ALGORITHM,
    _COLUMN_FIELDS,
    _COLUMN_REF,
    _COLUMNAR_FORMAT_VERSION,
    _COLUMNS_CHECKSUM_ALGORITHM,
    _COLUMNS_SUFFIX,
    _FORMAT_VERSION,
    _JOURNAL_FILENAME,
    _LOCK_FILENAME,
    _MANIFEST_FILENAME,
    _MANIFEST_VERSION,
    _SUMMARY_MARKER,
    _SUPPORTED_MANIFEST_VERSIONS,
    _SUPPORTED_VERSIONS,
    ResultReader,
    _columns_checksum,
    _decode,
    _encode,
    _restore_summaries,
    _strip_summaries,
    canonical_data,
    content_checksum,
    storable,
)


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry to disk (the rename half of the
    fsync-before-rename discipline).  Best-effort: some filesystems do
    not support directory fsync, and losing it only widens the crash
    window, it never corrupts."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _write_atomic(path: Path, text: str) -> None:
    """Write ``text`` so that ``path`` is always absent or complete."""
    handle = tempfile.NamedTemporaryFile(
        "w",
        dir=path.parent,
        prefix=f".{path.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
        _fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid currently exists."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


@dataclass
class CampaignManifest:
    """Checkpoint of one campaign: what was planned, what finished."""

    planned: List[str]
    completed: List[str] = field(default_factory=list)
    fingerprint: Optional[Dict[str, Any]] = None
    """:meth:`~repro.config.SimulationConfig.fingerprint` of the run."""
    failures: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    """Experiments the campaign gave up on, by name: ``reason`` /
    ``attempts`` / ``error`` / ``chain``.  Non-transient failures are
    skipped on resume unless ``--retry-failed`` is passed."""
    serials: List[str] = field(default_factory=list)
    """Module serials of the campaign's full scope, in bench order --
    what ``simra-dram audit`` rebuilds the recompute scope from."""


class ResultStore:
    """Directory of named experiment results (the single writer).

    With ``columnar=True`` (or ``save(..., columnar=True)``), payloads
    containing :class:`DistributionSummary` objects are written in
    format version 3: the summary numbers land in a checksummed
    ``<name>.columns.npz`` sidecar and the JSON document keeps only
    ``{"__column_ref__": i}`` stubs.  Loads reconstruct the exact
    version-2 payload, and the main content digest is unchanged across
    the two encodings.

    Every read-side method (``load`` / ``metadata`` / ``verify`` /
    ``diagnose`` / ``names`` / ...) is served by the embedded
    :attr:`reader`; consumers that never write should take the reader
    directly and skip the store (and its lock) entirely.
    """

    def __init__(self, directory: Path, columnar: bool = False):
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._columnar = bool(columnar)
        self._reader = ResultReader(self._directory)

    @property
    def directory(self) -> Path:
        """Where results live."""
        return self._directory

    @property
    def columnar(self) -> bool:
        """Whether saves default to the columnar (version 3) format."""
        return self._columnar

    @property
    def reader(self) -> ResultReader:
        """The store's read path (lock-free, digest-memoizing)."""
        return self._reader

    def _path(self, name: str) -> Path:
        return self._reader.path_for(name)

    def _columns_path(self, name: str) -> Path:
        return self._reader.columns_path_for(name)

    def _write_columns(self, path: Path, arrays: Dict[str, np.ndarray]) -> None:
        """Write the sidecar arrays so ``path`` is always absent or complete."""
        handle = tempfile.NamedTemporaryFile(
            "wb",
            dir=path.parent,
            prefix=f".{path.name}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                np.savez(handle, **arrays)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, path)
            _fsync_directory(path.parent)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def save(
        self,
        name: str,
        data: Any,
        config: Optional[Union[SimulationConfig, Dict[str, Any]]] = None,
        notes: str = "",
        quality: Optional[Dict[str, Any]] = None,
        columnar: Optional[bool] = None,
    ) -> Path:
        """Persist one experiment's output (atomically, checksummed).

        ``quality`` carries explicit data-quality annotations (e.g.
        which modules were quarantined while this figure ran) so a
        degraded campaign never shrinks its fleet silently.

        ``columnar`` overrides the store's default format for this one
        save; a columnar request for a payload with no summaries falls
        back to a plain version-2 document.  ``config`` also accepts an
        already-serialized header dict, so ``simra-dram migrate`` can
        re-save an artifact without rebuilding its
        :class:`~repro.config.SimulationConfig`.
        """
        from .. import __version__

        encoded = _encode(data)
        document = {
            "format_version": _FORMAT_VERSION,
            "library_version": __version__,
            "notes": notes,
            "config": (
                dict(config)
                if isinstance(config, dict)
                else (
                    {
                        "seed": config.seed,
                        "columns_per_row": config.columns_per_row,
                        "trials_per_test": config.trials_per_test,
                    }
                    if config is not None
                    else None
                )
            ),
            "quality": quality,
            "checksum": {
                "algorithm": _CHECKSUM_ALGORITHM,
                "digest": content_checksum(encoded),
            },
            "data": encoded,
        }
        path = self._path(name)
        sidecar = self._columns_path(name)
        self._reader.invalidate(name)
        use_columnar = self._columnar if columnar is None else bool(columnar)
        if use_columnar:
            columns: List[Dict[str, Any]] = []
            stripped = _strip_summaries(encoded, columns)
            if columns:
                arrays = {
                    field: np.asarray(
                        [record[field] for record in columns],
                        dtype=np.int64 if field == "n" else np.float64,
                    )
                    for field in _COLUMN_FIELDS
                }
                arrays_digest = _columns_checksum(arrays)
                if sidecar.exists():
                    # Rewriting a live columnar artifact: park the new
                    # arrays under a generation-unique name instead of
                    # replacing the referenced file in place, so a
                    # concurrent lockless reader (or a crash between
                    # the two writes) still finds the old document
                    # paired with its old, intact sidecar.  The stale
                    # generation is swept once the document flips.
                    sidecar = self._directory / (
                        f"{name}.g{arrays_digest[:12]}{_COLUMNS_SUFFIX}"
                    )
                document["format_version"] = _COLUMNAR_FORMAT_VERSION
                document["data"] = stripped
                document["columns"] = {
                    "file": sidecar.name,
                    "count": len(columns),
                    "checksum": {
                        "algorithm": _COLUMNS_CHECKSUM_ALGORITHM,
                        "digest": arrays_digest,
                    },
                }
                # Sidecar first: until the document flips, readers
                # resolve the previous pair; afterwards, the new one.
                self._write_columns(sidecar, arrays)
                _write_atomic(
                    path, json.dumps(document, indent=2, sort_keys=True)
                )
                self._sweep_stale_sidecars(name, keep=sidecar.name)
                return path
        _write_atomic(path, json.dumps(document, indent=2, sort_keys=True))
        self._sweep_stale_sidecars(name, keep=None)
        return path

    def _sweep_stale_sidecars(self, name: str, keep: Optional[str]) -> None:
        """Drop this artifact's sidecar files except ``keep``.

        Best-effort: a swept generation may be mid-read by a lockless
        reader, whose load then retries against the fresh document.
        """
        for filename in self._reader.sidecar_names(name):
            if filename == keep:
                continue
            try:
                (self._directory / filename).unlink()
            except OSError:
                pass

    # -- read path (delegated to the embedded ResultReader) -----------------

    def load(self, name: str, verify: bool = True) -> Any:
        """Reload a result's data payload (integrity-checked)."""
        return self._reader.load(name, verify=verify)

    def metadata(self, name: str) -> Dict[str, Any]:
        """Reload a result's header (version, config, notes, quality)."""
        return self._reader.metadata(name)

    def verify(self, name: Optional[str] = None) -> Union[str, Dict[str, Any]]:
        """Integrity status of one artifact, or a store-wide scan.

        See :meth:`ResultReader.verify`.
        """
        return self._reader.verify(name)

    def diagnose(self, name: str) -> str:
        """Fine-grained damage classification of one stored artifact.

        See :meth:`ResultReader.validate` (the single implementation).
        """
        return self._reader.validate(name)

    def orphaned_tmp_files(self) -> List[str]:
        """Stale ``*.tmp`` files left by writers that died mid-write."""
        return self._reader.orphaned_tmp_files()

    def unreferenced_sidecars(self) -> List[str]:
        """``.columns.npz`` sidecars no live document points at."""
        return self._reader.unreferenced_sidecars()

    def has(self, name: str) -> bool:
        """Whether a result with this name is stored."""
        return self._reader.has(name)

    def names(self) -> List[str]:
        """All stored result names, sorted (campaign manifest excluded)."""
        return self._reader.names()

    def clean_stale_tmp(self) -> List[str]:
        """Delete orphaned temp files; returns the names removed.

        Safe whenever no other writer holds the store lock: every live
        temp file belongs to the (single) writer that created it.
        """
        removed = []
        for filename in self._reader.orphaned_tmp_files():
            try:
                (self._directory / filename).unlink()
            except FileNotFoundError:
                continue
            removed.append(filename)
        return removed

    # -- campaign manifest -------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        """Where this store's campaign checkpoint lives."""
        return self._reader.manifest_path

    def save_manifest(self, manifest: CampaignManifest) -> Path:
        """Checkpoint a campaign's progress (atomically)."""
        document = {
            "format_version": _MANIFEST_VERSION,
            "planned": list(manifest.planned),
            "completed": list(manifest.completed),
            "fingerprint": manifest.fingerprint,
            "failures": dict(manifest.failures),
            "serials": list(manifest.serials),
        }
        path = self.manifest_path
        _write_atomic(path, json.dumps(document, indent=2, sort_keys=True))
        return path

    def load_manifest(self) -> Optional[CampaignManifest]:
        """Reload the campaign checkpoint, or ``None`` if none exists."""
        return self._reader.load_manifest()

    def clear_manifest(self) -> None:
        """Forget the campaign checkpoint (results stay)."""
        try:
            self.manifest_path.unlink()
        except FileNotFoundError:
            pass

    # -- write-ahead journal -----------------------------------------------

    @property
    def journal_path(self) -> Path:
        """Where the append-only commit journal lives."""
        return self._reader.journal_path

    def journal_append(self, entry: Dict[str, Any]) -> None:
        """Append one fsync'd JSON line to the commit journal.

        The campaign writes a ``commit-intent`` line before each
        artifact save and a ``commit-done`` line after the manifest
        update; an intent with no matching done marks the artifact a
        crash may have left half-committed, which ``simra-dram
        repair`` inspects.
        """
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def journal_entries(self) -> List[Dict[str, Any]]:
        """All parsable journal entries, in append order."""
        return self._reader.journal_entries()

    def clear_journal(self) -> None:
        """Forget the commit journal (results and manifest stay)."""
        try:
            self.journal_path.unlink()
        except FileNotFoundError:
            pass

    # -- writer lock -------------------------------------------------------

    @property
    def lock_path(self) -> Path:
        """Where the single-writer lockfile lives."""
        return self._reader.lock_path

    def acquire_lock(self) -> None:
        """Take the store's single-writer lock, or raise.

        The lockfile records the holder's pid; a lock whose pid is dead
        (or is this very process, i.e. a previous run in the same
        interpreter was hard-killed mid-campaign) is stolen.  A lock
        held by a different live process raises
        :class:`~repro.errors.StoreLockedError`.
        """
        path = self.lock_path
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    holder = int(path.read_text().strip() or "0")
                except (OSError, ValueError):
                    holder = 0
                if holder == os.getpid() or not _pid_alive(holder):
                    try:
                        path.unlink()
                    except FileNotFoundError:
                        pass
                    continue
                raise StoreLockedError(
                    f"result store {self._directory} is locked by running "
                    f"process {holder}; a second writer would interleave "
                    "manifest updates"
                )
            try:
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.fsync(fd)
            finally:
                os.close(fd)
            return

    def release_lock(self) -> None:
        """Drop the single-writer lock if this process holds it."""
        path = self.lock_path
        try:
            holder = int(path.read_text().strip() or "0")
        except (OSError, ValueError):
            return
        if holder == os.getpid():
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    @contextlib.contextmanager
    def locked(self) -> Iterator["ResultStore"]:
        """Hold the single-writer lock for the duration of a block."""
        self.acquire_lock()
        try:
            yield self
        finally:
            self.release_lock()
