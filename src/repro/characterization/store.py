"""Persistence of characterization results.

Long campaigns (the full-fidelity settings in EXPERIMENTS.md) should
not be re-run to re-render a table.  :class:`ResultStore` writes
experiment outputs as JSON next to a metadata header (seed, scale,
library version), and reloads them with
:class:`~repro.characterization.stats.DistributionSummary` objects
reconstructed.

Robustness contract (a campaign can be killed at any instant, and
stored bytes can rot between runs):

- every write lands via a same-directory temp file and ``os.replace``,
  so a reader never observes a half-written document;
- every document carries a schema-version stamp and a content
  checksum (SHA-256 over the canonical JSON of its data payload);
  loads verify the checksum, so a file damaged *after* a clean write
  raises :class:`~repro.errors.ChecksumMismatchError` instead of being
  trusted silently on resume;
- version-3 documents may move their summary numbers into a columnar
  ``<name>.columns.npz`` sidecar (one float64 array per summary field)
  whose arrays carry their own checksum; the document's main digest is
  always computed over the reconstructed version-2-equivalent payload,
  so a version-2 and version-3 write of the same data share one digest
  and ``simra-dram audit`` recompute checks need no format awareness;
- a truncated or hand-damaged file raises
  :class:`~repro.errors.ResultCorruptionError` (an
  :class:`~repro.errors.ExperimentError`) rather than a bare
  ``json.JSONDecodeError``;
- a :class:`CampaignManifest` checkpoint records which experiments of
  a campaign completed or failed (and on which module fleet), letting
  ``--resume`` skip finished figures and ``simra-dram audit`` rebuild
  the scope for a recompute cross-check.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

import numpy as np

from ..config import SimulationConfig
from ..errors import (
    ChecksumMismatchError,
    ExperimentError,
    ResultCorruptionError,
    StoreLockedError,
)
from .stats import DistributionSummary

_FORMAT_VERSION = 2
_COLUMNAR_FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)
"""Version 1 documents predate content checksums; they still load but
``verify`` reports them as ``"legacy"``.  Version 3 documents park
their summary numbers in a columnar ``.npz`` sidecar."""
_CHECKSUM_ALGORITHM = "sha256-canonical-json"
_COLUMNS_CHECKSUM_ALGORITHM = "sha256-column-arrays"
_SUMMARY_MARKER = "__distribution_summary__"
_COLUMN_REF = "__column_ref__"
_COLUMN_FIELDS = ("mean", "minimum", "q1", "median", "q3", "maximum", "n")
_MANIFEST_FILENAME = "campaign-manifest.json"
_MANIFEST_VERSION = 2
_SUPPORTED_MANIFEST_VERSIONS = (1, 2)
_JOURNAL_FILENAME = "campaign-journal.jsonl"
_LOCK_FILENAME = ".store.lock"
_COLUMNS_SUFFIX = ".columns.npz"


def _encode(value: Any) -> Any:
    if isinstance(value, DistributionSummary):
        payload = asdict(value)
        payload[_SUMMARY_MARKER] = True
        return payload
    if isinstance(value, dict):
        return {str(key): _encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ExperimentError(f"cannot persist value of type {type(value)!r}")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if value.get(_SUMMARY_MARKER):
            fields = {k: v for k, v in value.items() if k != _SUMMARY_MARKER}
            return DistributionSummary(**fields)
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def storable(data: Any) -> Any:
    """Convert tuple keys (t1, t2) to strings for JSON persistence."""
    if isinstance(data, dict):
        return {
            (
                ",".join(str(part) for part in key)
                if isinstance(key, tuple)
                else str(key)
            ): storable(value)
            for key, value in data.items()
        }
    return data


def canonical_data(data: Any) -> Any:
    """The persistence-normal form of a payload (what ``load`` returns).

    Recomputed figures pass through this before being compared against
    stored ones, so tuple keys, numpy scalars converted upstream, and
    summary objects all land in the same representation.
    """
    return _decode(_encode(storable(data)))


def content_checksum(encoded: Any) -> str:
    """SHA-256 of the canonical JSON form of an encoded data payload."""
    canonical = json.dumps(encoded, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _strip_summaries(encoded: Any, columns: List[Dict[str, Any]]) -> Any:
    """Replace encoded summary dicts with ``{_COLUMN_REF: i}`` stubs.

    Appends each stripped summary to ``columns`` in document order, so
    index ``i`` in the sidecar arrays is the ``i``-th summary a reader
    encounters walking the payload.
    """
    if isinstance(encoded, dict):
        if encoded.get(_SUMMARY_MARKER):
            index = len(columns)
            columns.append(encoded)
            return {_COLUMN_REF: index}
        return {key: _strip_summaries(item, columns) for key, item in encoded.items()}
    if isinstance(encoded, list):
        return [_strip_summaries(item, columns) for item in encoded]
    return encoded


def _restore_summaries(value: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`_strip_summaries`: stubs back to summary dicts."""
    if isinstance(value, dict):
        if _COLUMN_REF in value:
            index = value[_COLUMN_REF]
            record: Dict[str, Any] = {
                name: (
                    int(arrays[name][index])
                    if name == "n"
                    else float(arrays[name][index])
                )
                for name in _COLUMN_FIELDS
            }
            record[_SUMMARY_MARKER] = True
            return record
        return {key: _restore_summaries(item, arrays) for key, item in value.items()}
    if isinstance(value, list):
        return [_restore_summaries(item, arrays) for item in value]
    return value


def _columns_checksum(arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over the sidecar arrays' dtypes, shapes, and raw bytes.

    Hashing array *contents* (not the ``.npz`` file bytes) keeps the
    digest independent of zip metadata such as entry timestamps.
    """
    digest = hashlib.sha256()
    for name in _COLUMN_FIELDS:
        arr = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(arr.dtype).encode("utf-8"))
        digest.update(str(arr.shape).encode("utf-8"))
        digest.update(arr.tobytes())
    return digest.hexdigest()


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry to disk (the rename half of the
    fsync-before-rename discipline).  Best-effort: some filesystems do
    not support directory fsync, and losing it only widens the crash
    window, it never corrupts."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _write_atomic(path: Path, text: str) -> None:
    """Write ``text`` so that ``path`` is always absent or complete."""
    handle = tempfile.NamedTemporaryFile(
        "w",
        dir=path.parent,
        prefix=f".{path.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
        _fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid currently exists."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


@dataclass
class CampaignManifest:
    """Checkpoint of one campaign: what was planned, what finished."""

    planned: List[str]
    completed: List[str] = field(default_factory=list)
    fingerprint: Optional[Dict[str, Any]] = None
    """:meth:`~repro.config.SimulationConfig.fingerprint` of the run."""
    failures: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    """Experiments the campaign gave up on, by name: ``reason`` /
    ``attempts`` / ``error`` / ``chain``.  Non-transient failures are
    skipped on resume unless ``--retry-failed`` is passed."""
    serials: List[str] = field(default_factory=list)
    """Module serials of the campaign's full scope, in bench order --
    what ``simra-dram audit`` rebuilds the recompute scope from."""


class ResultStore:
    """Directory of named experiment results.

    With ``columnar=True`` (or ``save(..., columnar=True)``), payloads
    containing :class:`DistributionSummary` objects are written in
    format version 3: the summary numbers land in a checksummed
    ``<name>.columns.npz`` sidecar and the JSON document keeps only
    ``{"__column_ref__": i}`` stubs.  Loads reconstruct the exact
    version-2 payload, and the main content digest is unchanged across
    the two encodings.
    """

    def __init__(self, directory: Path, columnar: bool = False):
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._columnar = bool(columnar)

    @property
    def directory(self) -> Path:
        """Where results live."""
        return self._directory

    @property
    def columnar(self) -> bool:
        """Whether saves default to the columnar (version 3) format."""
        return self._columnar

    def _path(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise ExperimentError(f"invalid result name {name!r}")
        if f"{name}.json" == _MANIFEST_FILENAME:
            raise ExperimentError(
                f"result name {name!r} is reserved for the campaign manifest"
            )
        return self._directory / f"{name}.json"

    def _columns_path(self, name: str) -> Path:
        return self._directory / f"{name}.columns.npz"

    def _write_columns(self, path: Path, arrays: Dict[str, np.ndarray]) -> None:
        """Write the sidecar arrays so ``path`` is always absent or complete."""
        handle = tempfile.NamedTemporaryFile(
            "wb",
            dir=path.parent,
            prefix=f".{path.name}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                np.savez(handle, **arrays)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, path)
            _fsync_directory(path.parent)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def _read_document(self, name: str, path: Path) -> Dict[str, Any]:
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ResultCorruptionError(
                f"stored result {name!r} is corrupt or truncated: {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise ResultCorruptionError(
                f"stored result {name!r} is not a result document"
            )
        return document

    def _payload(
        self, name: str, document: Dict[str, Any], verify: bool = True
    ) -> Any:
        """The version-2-equivalent encoded data payload of a document.

        For version-3 documents this loads the column sidecar, checks
        its array checksum (when ``verify``), and rebuilds the summary
        dicts in place of their ``__column_ref__`` stubs.
        """
        data = document.get("data")
        if document.get("format_version") != _COLUMNAR_FORMAT_VERSION:
            return data
        columns = document.get("columns")
        if not isinstance(columns, dict):
            raise ResultCorruptionError(
                f"stored result {name!r} is columnar but lists no column sidecar"
            )
        sidecar = self._directory / str(columns.get("file", ""))
        if not sidecar.exists():
            raise ResultCorruptionError(
                f"stored result {name!r} is missing its column sidecar "
                f"{columns.get('file')!r}"
            )
        try:
            with np.load(sidecar) as archive:
                arrays = {field: archive[field] for field in _COLUMN_FIELDS}
        except ChecksumMismatchError:
            raise
        except Exception as exc:
            raise ResultCorruptionError(
                f"column sidecar of result {name!r} is corrupt: {exc}"
            ) from exc
        if verify:
            recorded = (columns.get("checksum") or {}).get("digest")
            actual = _columns_checksum(arrays)
            if recorded != actual:
                raise ChecksumMismatchError(
                    f"column sidecar of result {name!r} failed its integrity "
                    f"check: recorded digest {recorded!r}, recomputed {actual!r}"
                )
        return _restore_summaries(data, arrays)

    def _verify_document(
        self, name: str, document: Dict[str, Any], payload: Any
    ) -> None:
        """Check a document's content checksum (if it has one) against
        its version-2-equivalent payload."""
        checksum = document.get("checksum")
        if not isinstance(checksum, dict):
            return  # legacy version-1 document: nothing to verify against
        recorded = checksum.get("digest")
        actual = content_checksum(payload)
        if recorded != actual:
            raise ChecksumMismatchError(
                f"stored result {name!r} failed its integrity check: "
                f"recorded digest {recorded!r}, recomputed {actual!r}"
            )

    def save(
        self,
        name: str,
        data: Any,
        config: Optional[Union[SimulationConfig, Dict[str, Any]]] = None,
        notes: str = "",
        quality: Optional[Dict[str, Any]] = None,
        columnar: Optional[bool] = None,
    ) -> Path:
        """Persist one experiment's output (atomically, checksummed).

        ``quality`` carries explicit data-quality annotations (e.g.
        which modules were quarantined while this figure ran) so a
        degraded campaign never shrinks its fleet silently.

        ``columnar`` overrides the store's default format for this one
        save; a columnar request for a payload with no summaries falls
        back to a plain version-2 document.  ``config`` also accepts an
        already-serialized header dict, so ``simra-dram migrate`` can
        re-save an artifact without rebuilding its
        :class:`~repro.config.SimulationConfig`.
        """
        from .. import __version__

        encoded = _encode(data)
        document = {
            "format_version": _FORMAT_VERSION,
            "library_version": __version__,
            "notes": notes,
            "config": (
                dict(config)
                if isinstance(config, dict)
                else (
                    {
                        "seed": config.seed,
                        "columns_per_row": config.columns_per_row,
                        "trials_per_test": config.trials_per_test,
                    }
                    if config is not None
                    else None
                )
            ),
            "quality": quality,
            "checksum": {
                "algorithm": _CHECKSUM_ALGORITHM,
                "digest": content_checksum(encoded),
            },
            "data": encoded,
        }
        path = self._path(name)
        sidecar = self._columns_path(name)
        use_columnar = self._columnar if columnar is None else bool(columnar)
        if use_columnar:
            columns: List[Dict[str, Any]] = []
            stripped = _strip_summaries(encoded, columns)
            if columns:
                arrays = {
                    field: np.asarray(
                        [record[field] for record in columns],
                        dtype=np.int64 if field == "n" else np.float64,
                    )
                    for field in _COLUMN_FIELDS
                }
                document["format_version"] = _COLUMNAR_FORMAT_VERSION
                document["data"] = stripped
                document["columns"] = {
                    "file": sidecar.name,
                    "count": len(columns),
                    "checksum": {
                        "algorithm": _COLUMNS_CHECKSUM_ALGORITHM,
                        "digest": _columns_checksum(arrays),
                    },
                }
                # Sidecar first: a crash between the two writes leaves
                # the old document pointing at refreshed arrays, which
                # verify() reports as a mismatch -- detectable, never
                # silently wrong.
                self._write_columns(sidecar, arrays)
                _write_atomic(
                    path, json.dumps(document, indent=2, sort_keys=True)
                )
                return path
        _write_atomic(path, json.dumps(document, indent=2, sort_keys=True))
        try:
            sidecar.unlink()  # drop a stale sidecar from an earlier v3 write
        except FileNotFoundError:
            pass
        return path

    def load(self, name: str, verify: bool = True) -> Any:
        """Reload a result's data payload (integrity-checked)."""
        path = self._path(name)
        if not path.exists():
            raise ExperimentError(f"no stored result named {name!r}")
        document = self._read_document(name, path)
        if document.get("format_version") not in _SUPPORTED_VERSIONS:
            raise ExperimentError(
                f"result {name!r} uses unsupported format "
                f"{document.get('format_version')}"
            )
        payload = self._payload(name, document, verify=verify)
        if verify:
            self._verify_document(name, document, payload)
        return _decode(payload)

    def metadata(self, name: str) -> Dict[str, Any]:
        """Reload a result's header (version, config, notes, quality)."""
        path = self._path(name)
        if not path.exists():
            raise ExperimentError(f"no stored result named {name!r}")
        document = self._read_document(name, path)
        return {
            key: document.get(key)
            for key in (
                "format_version",
                "library_version",
                "config",
                "notes",
                "quality",
                "checksum",
                "columns",
            )
        }

    def verify(self, name: Optional[str] = None) -> Union[str, Dict[str, Any]]:
        """Integrity status of one artifact, or a store-wide scan.

        With ``name``, returns ``"ok"`` (checksum verified),
        ``"legacy"`` (version-1 document with no checksum),
        ``"corrupt"`` (unparsable, or a columnar document whose sidecar
        is missing or unreadable), ``"mismatch"`` (parses, but the
        content -- document or sidecar arrays -- no longer matches its
        recorded digest), or ``"missing"``.

        Without ``name``, returns a store-wide report dict: per-name
        statuses under ``"artifacts"``, plus the debris a crashed
        writer leaves behind -- stale ``*.tmp`` files under
        ``"orphaned_tmp"`` and ``.columns.npz`` sidecars no document
        references under ``"unreferenced_sidecars"``.
        """
        if name is None:
            return {
                "artifacts": {n: self.verify(n) for n in self.names()},
                "orphaned_tmp": self.orphaned_tmp_files(),
                "unreferenced_sidecars": self.unreferenced_sidecars(),
            }
        path = self._path(name)
        if not path.exists():
            return "missing"
        try:
            document = self._read_document(name, path)
        except ResultCorruptionError:
            return "corrupt"
        if not isinstance(document.get("checksum"), dict):
            return "legacy"
        try:
            payload = self._payload(name, document, verify=True)
            self._verify_document(name, document, payload)
        except ChecksumMismatchError:
            return "mismatch"
        except ResultCorruptionError:
            return "corrupt"
        return "ok"

    def diagnose(self, name: str) -> str:
        """Fine-grained damage classification of one stored artifact.

        Refines :meth:`verify`'s coarse statuses into what ``simra-dram
        repair`` reports: ``"torn-json"`` (truncated or non-JSON
        document), ``"checksum-mismatch"`` (document bytes altered
        after the save), ``"sidecar-missing"`` / ``"sidecar-corrupt"``
        / ``"sidecar-mismatch"`` (columnar sidecar damage), plus the
        benign ``"ok"`` / ``"legacy"`` / ``"missing"``.
        """
        path = self._path(name)
        if not path.exists():
            return "missing"
        try:
            document = self._read_document(name, path)
        except ResultCorruptionError:
            return "torn-json"
        if document.get("format_version") == _COLUMNAR_FORMAT_VERSION:
            columns = document.get("columns")
            if not isinstance(columns, dict):
                return "torn-json"
            sidecar = self._directory / str(columns.get("file", ""))
            if not sidecar.exists():
                return "sidecar-missing"
            try:
                with np.load(sidecar) as archive:
                    arrays = {f: archive[f] for f in _COLUMN_FIELDS}
            except Exception:
                return "sidecar-corrupt"
            recorded = (columns.get("checksum") or {}).get("digest")
            if recorded != _columns_checksum(arrays):
                return "sidecar-mismatch"
        if not isinstance(document.get("checksum"), dict):
            return "legacy"
        try:
            payload = self._payload(name, document, verify=True)
            self._verify_document(name, document, payload)
        except ChecksumMismatchError:
            return "checksum-mismatch"
        except ResultCorruptionError:
            return "torn-json"
        return "ok"

    def orphaned_tmp_files(self) -> List[str]:
        """Stale ``*.tmp`` files left by writers that died mid-write.

        The atomic-write discipline only leaves these behind on a hard
        kill (SIGKILL, ``os._exit``) or an out-of-space failure between
        the temp write and the rename; a clean unwind unlinks them.
        """
        return sorted(
            p.name
            for p in self._directory.glob("*.tmp")
            if p.is_file() and p.name != _LOCK_FILENAME
        )

    def unreferenced_sidecars(self) -> List[str]:
        """``.columns.npz`` sidecars no live document points at.

        A sidecar is referenced only by a version-3 document of the
        same name whose ``columns.file`` names it; anything else is
        debris from a crashed columnar write or an injected fault.
        """
        orphans = []
        for sidecar in sorted(self._directory.glob(f"*{_COLUMNS_SUFFIX}")):
            if sidecar.name.startswith("."):
                continue
            stem = sidecar.name[: -len(_COLUMNS_SUFFIX)]
            document_path = self._directory / f"{stem}.json"
            referenced = False
            if document_path.exists():
                try:
                    document = json.loads(document_path.read_text())
                except (OSError, json.JSONDecodeError):
                    document = None
                if (
                    isinstance(document, dict)
                    and document.get("format_version")
                    == _COLUMNAR_FORMAT_VERSION
                ):
                    columns = document.get("columns")
                    if isinstance(columns, dict):
                        referenced = columns.get("file") == sidecar.name
            if not referenced:
                orphans.append(sidecar.name)
        return orphans

    def clean_stale_tmp(self) -> List[str]:
        """Delete orphaned temp files; returns the names removed.

        Safe whenever no other writer holds the store lock: every live
        temp file belongs to the (single) writer that created it.
        """
        removed = []
        for filename in self.orphaned_tmp_files():
            try:
                (self._directory / filename).unlink()
            except FileNotFoundError:
                continue
            removed.append(filename)
        return removed

    def has(self, name: str) -> bool:
        """Whether a result with this name is stored."""
        return self._path(name).exists()

    def names(self) -> List[str]:
        """All stored result names, sorted (campaign manifest excluded)."""
        return sorted(
            p.stem
            for p in self._directory.glob("*.json")
            if p.name != _MANIFEST_FILENAME and not p.name.startswith(".")
        )

    # -- campaign manifest -------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        """Where this store's campaign checkpoint lives."""
        return self._directory / _MANIFEST_FILENAME

    def save_manifest(self, manifest: CampaignManifest) -> Path:
        """Checkpoint a campaign's progress (atomically)."""
        document = {
            "format_version": _MANIFEST_VERSION,
            "planned": list(manifest.planned),
            "completed": list(manifest.completed),
            "fingerprint": manifest.fingerprint,
            "failures": dict(manifest.failures),
            "serials": list(manifest.serials),
        }
        path = self.manifest_path
        _write_atomic(path, json.dumps(document, indent=2, sort_keys=True))
        return path

    def load_manifest(self) -> Optional[CampaignManifest]:
        """Reload the campaign checkpoint, or ``None`` if none exists."""
        path = self.manifest_path
        if not path.exists():
            return None
        document = self._read_document("campaign manifest", path)
        if document.get("format_version") not in _SUPPORTED_MANIFEST_VERSIONS:
            raise ExperimentError(
                "campaign manifest uses unsupported format "
                f"{document.get('format_version')}"
            )
        return CampaignManifest(
            planned=list(document.get("planned", [])),
            completed=list(document.get("completed", [])),
            fingerprint=document.get("fingerprint"),
            failures=dict(document.get("failures", {})),
            serials=list(document.get("serials", [])),
        )

    def clear_manifest(self) -> None:
        """Forget the campaign checkpoint (results stay)."""
        try:
            self.manifest_path.unlink()
        except FileNotFoundError:
            pass

    # -- write-ahead journal -----------------------------------------------

    @property
    def journal_path(self) -> Path:
        """Where the append-only commit journal lives."""
        return self._directory / _JOURNAL_FILENAME

    def journal_append(self, entry: Dict[str, Any]) -> None:
        """Append one fsync'd JSON line to the commit journal.

        The campaign writes a ``commit-intent`` line before each
        artifact save and a ``commit-done`` line after the manifest
        update; an intent with no matching done marks the artifact a
        crash may have left half-committed, which ``simra-dram
        repair`` inspects.
        """
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def journal_entries(self) -> List[Dict[str, Any]]:
        """All parsable journal entries, in append order.

        A torn final line (the writer died mid-append) is skipped
        rather than raised: the journal is advisory damage-tracking
        metadata, never the source of truth for result bits.
        """
        path = self.journal_path
        if not path.exists():
            return []
        entries = []
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                entries.append(entry)
        return entries

    def clear_journal(self) -> None:
        """Forget the commit journal (results and manifest stay)."""
        try:
            self.journal_path.unlink()
        except FileNotFoundError:
            pass

    # -- writer lock -------------------------------------------------------

    @property
    def lock_path(self) -> Path:
        """Where the single-writer lockfile lives."""
        return self._directory / _LOCK_FILENAME

    def acquire_lock(self) -> None:
        """Take the store's single-writer lock, or raise.

        The lockfile records the holder's pid; a lock whose pid is dead
        (or is this very process, i.e. a previous run in the same
        interpreter was hard-killed mid-campaign) is stolen.  A lock
        held by a different live process raises
        :class:`~repro.errors.StoreLockedError`.
        """
        path = self.lock_path
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    holder = int(path.read_text().strip() or "0")
                except (OSError, ValueError):
                    holder = 0
                if holder == os.getpid() or not _pid_alive(holder):
                    try:
                        path.unlink()
                    except FileNotFoundError:
                        pass
                    continue
                raise StoreLockedError(
                    f"result store {self._directory} is locked by running "
                    f"process {holder}; a second writer would interleave "
                    "manifest updates"
                )
            try:
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.fsync(fd)
            finally:
                os.close(fd)
            return

    def release_lock(self) -> None:
        """Drop the single-writer lock if this process holds it."""
        path = self.lock_path
        try:
            holder = int(path.read_text().strip() or "0")
        except (OSError, ValueError):
            return
        if holder == os.getpid():
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    @contextlib.contextmanager
    def locked(self) -> Iterator["ResultStore"]:
        """Hold the single-writer lock for the duration of a block."""
        self.acquire_lock()
        try:
            yield self
        finally:
            self.release_lock()
