"""Plain-text rendering of characterization results.

Benchmarks print these tables so a terminal run shows the same rows
and series the paper's figures plot.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from .stats import BootstrapCI, DistributionSummary


def format_distribution_table(
    title: str,
    rows: Mapping[str, DistributionSummary],
    as_percent: bool = True,
) -> str:
    """Render labelled distribution summaries as an aligned table."""
    lines = [title, "-" * len(title)]
    header = f"{'case':<28} {'mean':>8} {'min':>8} {'q1':>8} {'med':>8} {'q3':>8} {'max':>8} {'n':>5}"
    lines.append(header)
    for label, summary in rows.items():
        shown = summary.as_percent() if as_percent else summary
        lines.append(
            f"{label:<28} {shown.mean:>8.3f} {shown.minimum:>8.3f} "
            f"{shown.q1:>8.3f} {shown.median:>8.3f} {shown.q3:>8.3f} "
            f"{shown.maximum:>8.3f} {shown.n:>5d}"
        )
    return "\n".join(lines)


def format_series_table(
    title: str,
    series: Mapping[str, Mapping[object, float]],
    column_order: Sequence[object] = (),
    as_percent: bool = True,
) -> str:
    """Render line-plot style data: one row per series, one column per x.

    ``series[label][x] = value``; used for Figs 4, 11, 12, 16, 17.
    """
    lines = [title, "-" * len(title)]
    columns = list(column_order)
    if not columns:
        seen: Dict[object, None] = {}
        for values in series.values():
            for x in values:
                seen.setdefault(x, None)
        columns = list(seen)
    header = f"{'series':<22}" + "".join(f"{str(c):>12}" for c in columns)
    lines.append(header)
    scale = 100.0 if as_percent else 1.0
    for label, values in series.items():
        cells = []
        for column in columns:
            value = values.get(column)
            cells.append(
                f"{'-':>12}" if value is None else f"{value * scale:>12.3f}"
            )
        lines.append(f"{label:<22}" + "".join(cells))
    return "\n".join(lines)


def format_ci_table(
    title: str,
    rows: Mapping[str, BootstrapCI],
    as_percent: bool = True,
) -> str:
    """Render labelled bootstrap confidence intervals as a table."""
    lines = [title, "-" * len(title)]
    header = (
        f"{'case':<28} {'mean':>8} {'low':>8} {'high':>8} "
        f"{'±half':>8} {'conf':>6} {'n':>5}"
    )
    lines.append(header)
    scale = 100.0 if as_percent else 1.0
    for label, ci in rows.items():
        lines.append(
            f"{label:<28} {ci.mean * scale:>8.3f} {ci.low * scale:>8.3f} "
            f"{ci.high * scale:>8.3f} {ci.halfwidth * scale:>8.3f} "
            f"{ci.confidence:>6.0%} {ci.n:>5d}"
        )
    return "\n".join(lines)


def format_scalar_table(
    title: str, values: Mapping[str, float], unit: str = ""
) -> str:
    """Render labelled scalar values (e.g. power numbers, speedups)."""
    lines = [title, "-" * len(title)]
    width = max((len(str(k)) for k in values), default=10) + 2
    for label, value in values.items():
        suffix = f" {unit}" if unit else ""
        lines.append(f"{str(label):<{width}} {value:>10.3f}{suffix}")
    return "\n".join(lines)
