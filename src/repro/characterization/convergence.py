"""Convergence of the success-rate metric with trial count.

The paper's metric counts a cell as successful only if it is correct
in **every** trial (section 3.1), so measured success *decreases
monotonically* toward the stable-cell fraction as trials accumulate:
an unstable cell flips a fair coin each trial and survives T trials
with probability 2^-T.  Short campaigns therefore overestimate
low-success operations (MAJ9 most visibly).  This module measures the
convergence curve, so scaled-down reproductions can report how far
from the asymptote their trial budget leaves them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.majority import execute_majx, plan_majx
from ..core.success import SuccessRateAccumulator
from ..errors import ExperimentError
from .experiment import CharacterizationScope, OperatingPoint
from .majority import MAJX_POINT


def majx_convergence_curve(
    scope: CharacterizationScope,
    x: int,
    n_rows: int,
    trial_checkpoints: Sequence[int] = (1, 2, 4, 8, 16, 32),
    point: OperatingPoint = MAJX_POINT,
) -> Dict[int, float]:
    """Mean measured success after T trials, for several T.

    Returns ``{T: mean success across groups}``; the values are
    non-increasing in T and converge to the stable-cell fraction.
    """
    if not trial_checkpoints:
        raise ExperimentError("need at least one checkpoint")
    checkpoints = sorted(set(trial_checkpoints))
    max_trials = checkpoints[-1]
    scope.apply_environment(point)
    per_checkpoint: Dict[int, List[float]] = {t: [] for t in checkpoints}
    for bench, bank, subarray in scope.iter_sites():
        profile = bench.module.profile
        if profile.max_reliable_majx < x:
            continue
        columns = bench.module.config.columns_per_row
        for group in scope.groups_for(bench, bank, subarray, n_rows):
            plan = plan_majx(x, group)
            accumulator = SuccessRateAccumulator(columns)
            for trial in range(max_trials):
                operands = [
                    point.pattern.operand_bits(
                        columns, op, bench.module.serial, bank, trial
                    )
                    for op in range(x)
                ]
                outcome = execute_majx(
                    bench, bank, plan, operands,
                    t1_ns=point.t1_ns, t2_ns=point.t2_ns,
                )
                accumulator.record(outcome.correct)
                if (trial + 1) in per_checkpoint:
                    per_checkpoint[trial + 1].append(accumulator.success_rate)
    if not per_checkpoint[checkpoints[0]]:
        raise ExperimentError(f"no module in scope supports MAJ{x}")
    return {
        t: float(np.mean(values)) for t, values in per_checkpoint.items()
    }


def overestimate_at(
    curve: Dict[int, float], budget_trials: int
) -> float:
    """How far a given trial budget sits above the curve's last point."""
    if budget_trials not in curve:
        raise ExperimentError(f"no checkpoint at {budget_trials} trials")
    asymptote = curve[max(curve)]
    return curve[budget_trials] - asymptote
