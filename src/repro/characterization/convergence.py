"""Convergence of the success-rate metric with trial count.

The paper's metric counts a cell as successful only if it is correct
in **every** trial (section 3.1), so measured success *decreases
monotonically* toward the stable-cell fraction as trials accumulate:
an unstable cell flips a fair coin each trial and survives T trials
with probability 2^-T.  Short campaigns therefore overestimate
low-success operations (MAJ9 most visibly).  This module measures the
convergence curve, so scaled-down reproductions can report how far
from the asymptote their trial budget leaves them.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..engine import (
    ExecutorBase,
    checkpoint_means,
    checkpoint_rates_by_count,
    run_plan,
)
from ..errors import ExperimentError
from .experiment import CharacterizationScope, OperatingPoint
from .majority import MAJX_POINT, build_majx_plan
from .stats import BootstrapCI, bootstrap_mean_ci


def majx_convergence_curve(
    scope: CharacterizationScope,
    x: int,
    n_rows: int,
    trial_checkpoints: Sequence[int] = (1, 2, 4, 8, 16, 32),
    point: OperatingPoint = MAJX_POINT,
    executor: Optional[ExecutorBase] = None,
) -> Dict[int, float]:
    """Mean measured success after T trials, for several T.

    Returns ``{T: mean success across groups}``; the values are
    non-increasing in T and converge to the stable-cell fraction.
    """
    result, checkpoints = _convergence_result(
        scope, x, n_rows, trial_checkpoints, point, executor
    )
    return checkpoint_means(result, checkpoints)


def _convergence_result(scope, x, n_rows, trial_checkpoints, point, executor):
    """Run the checkpointed MAJX plan shared by curve and CI reports."""
    if not trial_checkpoints:
        raise ExperimentError("need at least one checkpoint")
    checkpoints = sorted(set(trial_checkpoints))
    if checkpoints[0] < 1:
        raise ExperimentError("checkpoints must be positive trial counts")
    max_trials = checkpoints[-1]
    plan = build_majx_plan(
        scope, x, n_rows, point,
        trials=max_trials,
        checkpoints=tuple(checkpoints),
        empty_message=f"no module in scope supports MAJ{x}",
    )
    return run_plan(plan, executor), checkpoints


def majx_convergence_cis(
    scope: CharacterizationScope,
    x: int,
    n_rows: int,
    trial_checkpoints: Sequence[int] = (1, 2, 4, 8, 16, 32),
    point: OperatingPoint = MAJX_POINT,
    executor: Optional[ExecutorBase] = None,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Dict[int, BootstrapCI]:
    """Bootstrap CI of the mean measured success at each checkpoint.

    Same measurement as :func:`majx_convergence_curve`, but each
    checkpoint's cross-group mean comes back with a seeded bootstrap
    interval, so a scaled-down reproduction can state how much of its
    distance from the asymptote is noise versus trial-budget bias.
    """
    result, checkpoints = _convergence_result(
        scope, x, n_rows, trial_checkpoints, point, executor
    )
    return {
        t: bootstrap_mean_ci(
            rates, confidence=confidence, resamples=resamples, seed=seed
        )
        for t, rates in checkpoint_rates_by_count(result, checkpoints).items()
    }


def overestimate_at(
    curve: Dict[int, float], budget_trials: int
) -> float:
    """How far a given trial budget sits above the curve's last point."""
    if budget_trials not in curve:
        raise ExperimentError(f"no checkpoint at {budget_trials} trials")
    asymptote = curve[max(curve)]
    return curve[budget_trials] - asymptote
