"""Best-timing search (the paper's methodology preamble).

Section 3.1: "We test various reduced timing delays ... All
experiments are conducted at the timing delays that achieve the
highest success rate for the tested PUD operations."  This module
automates that preamble: sweep the issueable (t1, t2) tick grid for
an operation family, measure each configuration on a small probe
scope, and return the winner -- which downstream experiments then use,
exactly as the paper's campaigns did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..engine import ExecutorBase
from ..errors import ExperimentError
from ..units import COMMAND_GRANULARITY_NS
from .activation import activation_success_distribution
from .experiment import CharacterizationScope, OperatingPoint
from .majority import majx_success_distribution
from .rowcopy import multi_row_copy_distribution


@dataclass(frozen=True)
class TimingSearchResult:
    """Outcome of a (t1, t2) grid search."""

    best_t1_ns: float
    best_t2_ns: float
    best_mean: float
    grid: Dict[Tuple[float, float], float]

    def ranked(self) -> List[Tuple[Tuple[float, float], float]]:
        """Configurations from best to worst."""
        return sorted(self.grid.items(), key=lambda item: -item[1])


def _ticks(values: Sequence[float]) -> Tuple[float, ...]:
    for value in values:
        ratio = value / COMMAND_GRANULARITY_NS
        if abs(ratio - round(ratio)) > 1e-9:
            raise ExperimentError(
                f"timing {value} ns is not issueable at "
                f"{COMMAND_GRANULARITY_NS} ns granularity"
            )
    return tuple(values)


def search_timings(
    measure: Callable[[OperatingPoint], float],
    t1_values: Sequence[float],
    t2_values: Sequence[float],
) -> TimingSearchResult:
    """Grid-search any measurement function over (t1, t2)."""
    t1_values = _ticks(t1_values)
    t2_values = _ticks(t2_values)
    if not t1_values or not t2_values:
        raise ExperimentError("empty timing grid")
    grid: Dict[Tuple[float, float], float] = {}
    for t1 in t1_values:
        for t2 in t2_values:
            point = OperatingPoint(t1_ns=t1, t2_ns=t2)
            grid[(t1, t2)] = measure(point)
    (best_t1, best_t2), best_mean = max(grid.items(), key=lambda item: item[1])
    return TimingSearchResult(
        best_t1_ns=best_t1, best_t2_ns=best_t2, best_mean=best_mean, grid=grid
    )


def best_activation_timing(
    scope: CharacterizationScope,
    n_rows: int = 32,
    t1_values: Sequence[float] = (1.5, 3.0, 4.5),
    t2_values: Sequence[float] = (1.5, 3.0),
    executor: Optional[ExecutorBase] = None,
) -> TimingSearchResult:
    """Find the best APA timings for many-row activation (§4)."""
    return search_timings(
        lambda point: activation_success_distribution(
            scope, n_rows, point, executor
        ).mean,
        t1_values,
        t2_values,
    )


def best_majx_timing(
    scope: CharacterizationScope,
    x: int = 3,
    n_rows: int = 32,
    t1_values: Sequence[float] = (1.5, 3.0, 4.5),
    t2_values: Sequence[float] = (1.5, 3.0),
    executor: Optional[ExecutorBase] = None,
) -> TimingSearchResult:
    """Find the best APA timings for MAJX (§5; paper: t1=1.5, t2=3)."""
    return search_timings(
        lambda point: majx_success_distribution(
            scope, x, n_rows, point, executor
        ).mean,
        t1_values,
        t2_values,
    )


def best_copy_timing(
    scope: CharacterizationScope,
    n_destinations: int = 7,
    t1_values: Sequence[float] = (1.5, 3.0, 36.0),
    t2_values: Sequence[float] = (1.5, 3.0),
    executor: Optional[ExecutorBase] = None,
) -> TimingSearchResult:
    """Find the best APA timings for Multi-RowCopy (§6; paper: 36/3)."""
    return search_timings(
        lambda point: multi_row_copy_distribution(
            scope, n_destinations, point, executor
        ).mean,
        t1_values,
        t2_values,
    )
