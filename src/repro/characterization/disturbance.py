"""Section 9, Limitation 3: disturbance outside the activated group.

The paper repeats each PUD operation 10000 times per row group and
checks the *whole bank* for bitflips, observing none outside the
simultaneously activated rows.  This experiment reproduces that
check: initialize a set of bystander rows (including the activated
rows' direct neighbours, the classic RowHammer victims), hammer the
APA, and count any bystander bit that ever changed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..bender.program import apa_program
from ..bender.testbench import TestBench
from ..core.patterns import DataPattern, PATTERN_RANDOM
from ..core.rowgroups import RowGroup
from ..errors import ExperimentError


@dataclass(frozen=True)
class DisturbanceReport:
    """Outcome of one disturbance check."""

    group: RowGroup
    trials: int
    bystander_rows: Tuple[int, ...]
    flipped_bits: int
    flipped_rows: Tuple[int, ...]

    @property
    def clean(self) -> bool:
        """True when no bystander bit ever flipped (the paper's result)."""
        return self.flipped_bits == 0


def bystander_rows_for(
    group: RowGroup, subarray_rows: int, extra: Sequence[int] = ()
) -> List[int]:
    """Bystanders to monitor: every neighbour of an activated row,
    plus the subarray's first/last rows and any caller extras."""
    base = group.subarray * subarray_rows
    activated = set(group.rows)
    candidates = set()
    for row in activated:
        for neighbour in (row - 1, row + 1):
            if 0 <= neighbour < subarray_rows and neighbour not in activated:
                candidates.add(neighbour)
    candidates.add(0)
    candidates.add(subarray_rows - 1)
    candidates -= activated
    candidates.update(e for e in extra if e not in activated)
    return sorted(base + row for row in candidates)


def disturbance_check(
    bench: TestBench,
    bank: int,
    group: RowGroup,
    trials: int = 256,
    t1_ns: float = 1.5,
    t2_ns: float = 3.0,
    pattern: DataPattern = PATTERN_RANDOM,
) -> DisturbanceReport:
    """Hammer one APA row group and audit the bystanders.

    The activated rows are re-initialized per trial (their content is
    consumed by the operation); the bystanders are written once and
    must hold their exact data through every trial.
    """
    if trials < 1:
        raise ExperimentError("trials must be positive")
    profile = bench.module.profile
    subarray_rows = profile.subarray_rows
    device_bank = bench.module.bank(bank)
    columns = bench.module.config.columns_per_row

    bystanders = bystander_rows_for(group, subarray_rows)
    reference: Dict[int, np.ndarray] = {}
    for row in bystanders:
        bits = pattern.row_bits(columns, "disturb-bystander", row)
        device_bank.write_row(row, bits)
        reference[row] = bits

    rf_global, rs_global = group.global_pair(subarray_rows)
    flipped_bits = 0
    flipped_rows = set()
    for trial in range(trials):
        for global_row in group.global_rows(subarray_rows):
            device_bank.write_row(
                global_row,
                pattern.row_bits(columns, "disturb-active", global_row, trial),
            )
        bench.run(apa_program(bank, rf_global, rs_global, t1_ns, t2_ns))
        # Audit a rotating subset each trial plus a full audit at the
        # end, mirroring how long hammer campaigns batch their checks.
        probe = bystanders[trial % len(bystanders)]
        flips = int(np.sum(device_bank.read_row(probe) != reference[probe]))
        if flips:
            flipped_bits += flips
            flipped_rows.add(probe)
    for row in bystanders:
        flips = int(np.sum(device_bank.read_row(row) != reference[row]))
        if flips:
            flipped_bits += flips
            flipped_rows.add(row)
    return DisturbanceReport(
        group=group,
        trials=trials,
        bystander_rows=tuple(bystanders),
        flipped_bits=flipped_bits,
        flipped_rows=tuple(sorted(flipped_rows)),
    )
