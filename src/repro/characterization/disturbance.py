"""Section 9, Limitation 3: disturbance outside the activated group.

The paper repeats each PUD operation 10000 times per row group and
checks the *whole bank* for bitflips, observing none outside the
simultaneously activated rows.  This experiment reproduces that
check: initialize a set of bystander rows (including the activated
rows' direct neighbours, the classic RowHammer victims), hammer the
APA, and count any bystander bit that ever changed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..bender.testbench import TestBench
from ..core.patterns import DataPattern, PATTERN_RANDOM
from ..core.rowgroups import RowGroup
from ..engine import DisturbanceKernel, ExecutorBase, TrialPlan, TrialTask, run_plan
from ..errors import ExperimentError
from .experiment import OperatingPoint


@dataclass(frozen=True)
class DisturbanceReport:
    """Outcome of one disturbance check."""

    group: RowGroup
    trials: int
    bystander_rows: Tuple[int, ...]
    flipped_bits: int
    flipped_rows: Tuple[int, ...]

    @property
    def clean(self) -> bool:
        """True when no bystander bit ever flipped (the paper's result)."""
        return self.flipped_bits == 0


def bystander_rows_for(
    group: RowGroup, subarray_rows: int, extra: Sequence[int] = ()
) -> List[int]:
    """Bystanders to monitor: every neighbour of an activated row,
    plus the subarray's first/last rows and any caller extras."""
    base = group.subarray * subarray_rows
    activated = set(group.rows)
    candidates = set()
    for row in activated:
        for neighbour in (row - 1, row + 1):
            if 0 <= neighbour < subarray_rows and neighbour not in activated:
                candidates.add(neighbour)
    candidates.add(0)
    candidates.add(subarray_rows - 1)
    candidates -= activated
    candidates.update(e for e in extra if e not in activated)
    return sorted(base + row for row in candidates)


def disturbance_check(
    bench: TestBench,
    bank: int,
    group: RowGroup,
    trials: int = 256,
    t1_ns: float = 1.5,
    t2_ns: float = 3.0,
    pattern: DataPattern = PATTERN_RANDOM,
    executor: Optional[ExecutorBase] = None,
) -> DisturbanceReport:
    """Hammer one APA row group and audit the bystanders.

    The activated rows are re-initialized per trial (their content is
    consumed by the operation); the bystanders are written once and
    must hold their exact data through every trial -- a rotating probe
    checks one bystander per trial and a full read-back audit runs at
    the end.  ``flipped_bits`` counts bystander cells that were ever
    observed flipped.  The operating point is built from the bench's
    *current* temperature and VPP: a disturbance check never re-drives
    the rig environment.
    """
    if trials < 1:
        raise ExperimentError("trials must be positive")
    module = bench.module
    subarray_rows = module.profile.subarray_rows
    columns = module.config.columns_per_row
    bystanders = bystander_rows_for(group, subarray_rows)
    kernel = DisturbanceKernel(pattern=pattern, bystanders=tuple(bystanders))
    point = OperatingPoint(
        t1_ns=t1_ns,
        t2_ns=t2_ns,
        temperature_c=module.temperature_c,
        vpp=module.vpp,
        pattern=pattern,
    )
    task = TrialTask(
        index=0,
        bench_index=0,
        serial=module.serial,
        bank=bank,
        subarray=group.subarray,
        group=group,
        trials=trials,
        cells=len(bystanders) * columns,
    )
    plan = TrialPlan(
        name="disturbance",
        kernel=kernel,
        point=point,
        tasks=[task],
        benches=[bench],
        apply_environment=False,
    )
    result = run_plan(plan, executor)
    mask = result.outcomes[0].mask.reshape(len(bystanders), columns)
    flipped_rows = tuple(
        int(row)
        for row, row_mask in zip(bystanders, mask)
        if not bool(np.all(row_mask))
    )
    return DisturbanceReport(
        group=group,
        trials=trials,
        bystander_rows=tuple(bystanders),
        flipped_bits=int(np.sum(~mask)),
        flipped_rows=flipped_rows,
    )
