"""Cross-module variability analysis.

The paper's distributions aggregate 18 modules; some observations
(footnote 11's per-manufacturer MAJX ceilings, die-revision spread)
are about how *modules* differ.  This module breaks a characterization
down per device: one success-rate summary per module, plus the spread
of per-module means -- the quantity a deployer cares about when asking
"will the chips I buy behave like the paper's?".
"""

from __future__ import annotations

from typing import Dict, List

from ..core.majority import execute_majx, plan_majx
from ..core.success import SuccessRateAccumulator
from ..errors import ExperimentError
from .experiment import CharacterizationScope, OperatingPoint
from .majority import MAJX_POINT
from .stats import DistributionSummary, summarize


def per_module_majx(
    scope: CharacterizationScope,
    x: int,
    n_rows: int,
    point: OperatingPoint = MAJX_POINT,
) -> Dict[str, DistributionSummary]:
    """MAJX success distribution per module serial.

    Modules whose vendor caps below X are reported as absent rather
    than zero, mirroring the paper's omissions.
    """
    scope.apply_environment(point)
    result: Dict[str, DistributionSummary] = {}
    for bench in scope.benches:
        profile = bench.module.profile
        if profile.max_reliable_majx < x:
            continue
        columns = bench.module.config.columns_per_row
        rates: List[float] = []
        for bank in scope.banks:
            for subarray in scope.subarrays:
                for group in scope.groups_for(bench, bank, subarray, n_rows):
                    plan = plan_majx(x, group)
                    accumulator = SuccessRateAccumulator(columns)
                    for trial in range(scope.trials):
                        operands = [
                            point.pattern.operand_bits(
                                columns, op, bench.module.serial, bank, trial
                            )
                            for op in range(x)
                        ]
                        outcome = execute_majx(
                            bench, bank, plan, operands,
                            t1_ns=point.t1_ns, t2_ns=point.t2_ns,
                        )
                        accumulator.record(outcome.correct)
                    rates.append(accumulator.success_rate)
        if rates:
            result[bench.module.serial] = summarize(rates)
    if not result:
        raise ExperimentError(f"no module in scope can run MAJ{x}")
    return result


def module_spread(per_module: Dict[str, DistributionSummary]) -> DistributionSummary:
    """Distribution of per-module mean success rates."""
    return summarize([summary.mean for summary in per_module.values()])


def manufacturer_gap(
    scope: CharacterizationScope,
    per_module: Dict[str, DistributionSummary],
) -> Dict[str, float]:
    """Mean success per manufacturer (for footnote-11-style contrasts)."""
    by_mfr: Dict[str, List[float]] = {}
    serial_to_mfr = {
        bench.module.serial: bench.module.profile.manufacturer
        for bench in scope.benches
    }
    for serial, summary in per_module.items():
        by_mfr.setdefault(serial_to_mfr[serial], []).append(summary.mean)
    return {
        mfr: sum(values) / len(values) for mfr, values in by_mfr.items()
    }
