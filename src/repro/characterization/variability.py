"""Cross-module variability analysis.

The paper's distributions aggregate 18 modules; some observations
(footnote 11's per-manufacturer MAJX ceilings, die-revision spread)
are about how *modules* differ.  This module breaks a characterization
down per device: one success-rate summary per module, plus the spread
of per-module means -- the quantity a deployer cares about when asking
"will the chips I buy behave like the paper's?".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..engine import ExecutorBase, rates_by_serial, run_plan
from .experiment import CharacterizationScope, OperatingPoint
from .majority import MAJX_POINT, build_majx_plan
from .stats import (
    BootstrapCI,
    DistributionSummary,
    bootstrap_mean_ci,
    summarize,
    summarize_each,
)


def per_module_majx(
    scope: CharacterizationScope,
    x: int,
    n_rows: int,
    point: OperatingPoint = MAJX_POINT,
    executor: Optional[ExecutorBase] = None,
) -> Dict[str, DistributionSummary]:
    """MAJX success distribution per module serial.

    Modules whose vendor caps below X are reported as absent rather
    than zero, mirroring the paper's omissions.  The fleet's summaries
    are computed in batched vector passes (one per distinct group
    count), bit-identical to summarizing each module separately.
    """
    plan = build_majx_plan(
        scope, x, n_rows, point,
        empty_message=f"no module in scope can run MAJ{x}",
    )
    result = run_plan(plan, executor)
    grouped = rates_by_serial(plan, result)
    summaries = summarize_each(list(grouped.values()))
    return dict(zip(grouped.keys(), summaries))


def module_spread(per_module: Dict[str, DistributionSummary]) -> DistributionSummary:
    """Distribution of per-module mean success rates."""
    return summarize([summary.mean for summary in per_module.values()])


def fleet_bootstrap_ci(
    per_module: Dict[str, DistributionSummary],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Bootstrap CI of the fleet-average success rate.

    Resamples *modules* (not groups), answering "how far could the
    paper's 18-module average sit from mine?" -- the deployer question
    :func:`module_spread` quantifies, with an interval attached.
    """
    return bootstrap_mean_ci(
        [summary.mean for summary in per_module.values()],
        confidence=confidence,
        resamples=resamples,
        seed=seed,
    )


def manufacturer_gap(
    scope: CharacterizationScope,
    per_module: Dict[str, DistributionSummary],
) -> Dict[str, float]:
    """Mean success per manufacturer (for footnote-11-style contrasts)."""
    by_mfr: Dict[str, List[float]] = {}
    serial_to_mfr = {
        bench.module.serial: bench.module.profile.manufacturer
        for bench in scope.benches
    }
    for serial, summary in per_module.items():
        by_mfr.setdefault(serial_to_mfr[serial], []).append(summary.mean)
    return {
        mfr: sum(values) / len(values) for mfr, values in by_mfr.items()
    }
