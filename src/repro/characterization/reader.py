"""The lock-free read path of the result store.

:class:`ResultReader` is everything about a stored campaign that does
not mutate it: loading artifacts, verifying checksums, classifying
damage, and summarizing store state.  It is the single source of truth
for artifact *interpretation* -- :class:`~repro.characterization.store.
ResultStore` (the write path), ``simra-dram audit``, ``simra-dram
repair``, ``simra-dram stats``, the campaign resume path, and the HTTP
result service all read through one reader so their classifications
cannot drift.

Read-path contract:

- **No lock acquisition.**  A reader never touches ``.store.lock``:
  the writer's atomic-rename discipline (same-directory temp file,
  fsync, ``os.replace``) guarantees a reader observes either the old
  or the new document, never a torn one, so arbitrarily many readers
  run concurrently with the single writer without contention.
- **Memory-mapped sidecars.**  ``<name>.columns.npz`` sidecars are
  ``np.savez``-written uncompressed (``ZIP_STORED``), so their member
  arrays can be served straight off a shared read-only ``mmap`` --
  zero copies per reader -- with a transparent ``np.load`` fallback
  for anything the fast path cannot prove safe.
- **Memoized digests.**  Content sha256 digests (and sidecar array
  digests) are cached per artifact, keyed by ``(mtime_ns, size,
  inode)`` stat signatures of the files they were computed from, so a
  repeated ``load`` of an unchanged artifact skips the checksum
  recompute and the HTTP service's ETags cost one ``stat`` instead of
  one hash.
- **One damage taxonomy.**  :meth:`ResultReader.validate` is the only
  implementation of the fine-grained damage classification
  (``torn-json`` / ``checksum-mismatch`` / ``sidecar-missing`` /
  ``sidecar-corrupt`` / ``sidecar-mismatch`` / ``legacy`` / ``ok`` /
  ``missing``); :meth:`verify`'s coarse statuses and ``repair``'s
  findings are both derived from it.
"""

from __future__ import annotations

import ast
import hashlib
import json
import mmap
import os
import re
import struct
import zipfile
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import (
    ChecksumMismatchError,
    ExperimentError,
    ResultCorruptionError,
)
from .stats import DistributionSummary

_FORMAT_VERSION = 2
_COLUMNAR_FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)
"""Version 1 documents predate content checksums; they still load but
``verify`` reports them as ``"legacy"``.  Version 3 documents park
their summary numbers in a columnar ``.npz`` sidecar."""
_CHECKSUM_ALGORITHM = "sha256-canonical-json"
_COLUMNS_CHECKSUM_ALGORITHM = "sha256-column-arrays"
_SUMMARY_MARKER = "__distribution_summary__"
_COLUMN_REF = "__column_ref__"
_COLUMN_FIELDS = ("mean", "minimum", "q1", "median", "q3", "maximum", "n")
_MANIFEST_FILENAME = "campaign-manifest.json"
_MANIFEST_VERSION = 2
_SUPPORTED_MANIFEST_VERSIONS = (1, 2)
_JOURNAL_FILENAME = "campaign-journal.jsonl"
_LOCK_FILENAME = ".store.lock"
_COLUMNS_SUFFIX = ".columns.npz"
_GENERATION_MARK = ".g"
"""Rewriting a live columnar artifact parks the new arrays in
``<name>.g<digest12>.columns.npz`` instead of replacing the canonical
``<name>.columns.npz`` in place, so concurrent lockless readers (and a
crash between the sidecar and document writes) always find the old
document still paired with the old, intact sidecar.  The document's
``columns.file`` field is the source of truth for which file is live;
superseded generations are swept by the writer and reported as
unreferenced debris until then."""

_DAMAGE_CLASSES = (
    "torn-json",
    "checksum-mismatch",
    "sidecar-missing",
    "sidecar-corrupt",
    "sidecar-mismatch",
)
""":meth:`ResultReader.validate` classifications that make a present
artifact untrustworthy (``ok`` / ``legacy`` / ``missing`` are not
damage)."""

_COARSE_STATUS = {
    "ok": "ok",
    "legacy": "legacy",
    "missing": "missing",
    "torn-json": "corrupt",
    "sidecar-missing": "corrupt",
    "sidecar-corrupt": "corrupt",
    "checksum-mismatch": "mismatch",
    "sidecar-mismatch": "mismatch",
}
"""Fine :meth:`~ResultReader.validate` classification to the coarse
:meth:`~ResultReader.verify` status."""


# -- payload codec (shared by the reader and the writer) -------------------


def _encode(value: Any) -> Any:
    if isinstance(value, DistributionSummary):
        payload = asdict(value)
        payload[_SUMMARY_MARKER] = True
        return payload
    if isinstance(value, dict):
        return {str(key): _encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ExperimentError(f"cannot persist value of type {type(value)!r}")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if value.get(_SUMMARY_MARKER):
            fields = {k: v for k, v in value.items() if k != _SUMMARY_MARKER}
            return DistributionSummary(**fields)
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def storable(data: Any) -> Any:
    """Convert tuple keys (t1, t2) to strings for JSON persistence."""
    if isinstance(data, dict):
        return {
            (
                ",".join(str(part) for part in key)
                if isinstance(key, tuple)
                else str(key)
            ): storable(value)
            for key, value in data.items()
        }
    return data


def canonical_data(data: Any) -> Any:
    """The persistence-normal form of a payload (what ``load`` returns).

    Recomputed figures pass through this before being compared against
    stored ones, so tuple keys, numpy scalars converted upstream, and
    summary objects all land in the same representation.
    """
    return _decode(_encode(storable(data)))


def content_checksum(encoded: Any) -> str:
    """SHA-256 of the canonical JSON form of an encoded data payload."""
    canonical = json.dumps(encoded, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _strip_summaries(encoded: Any, columns: List[Dict[str, Any]]) -> Any:
    """Replace encoded summary dicts with ``{_COLUMN_REF: i}`` stubs.

    Appends each stripped summary to ``columns`` in document order, so
    index ``i`` in the sidecar arrays is the ``i``-th summary a reader
    encounters walking the payload.
    """
    if isinstance(encoded, dict):
        if encoded.get(_SUMMARY_MARKER):
            index = len(columns)
            columns.append(encoded)
            return {_COLUMN_REF: index}
        return {key: _strip_summaries(item, columns) for key, item in encoded.items()}
    if isinstance(encoded, list):
        return [_strip_summaries(item, columns) for item in encoded]
    return encoded


def _restore_summaries(value: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`_strip_summaries`: stubs back to summary dicts."""
    if isinstance(value, dict):
        if _COLUMN_REF in value:
            index = value[_COLUMN_REF]
            record: Dict[str, Any] = {
                name: (
                    int(arrays[name][index])
                    if name == "n"
                    else float(arrays[name][index])
                )
                for name in _COLUMN_FIELDS
            }
            record[_SUMMARY_MARKER] = True
            return record
        return {key: _restore_summaries(item, arrays) for key, item in value.items()}
    if isinstance(value, list):
        return [_restore_summaries(item, arrays) for item in value]
    return value


def _columns_checksum(arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over the sidecar arrays' dtypes, shapes, and raw bytes.

    Hashing array *contents* (not the ``.npz`` file bytes) keeps the
    digest independent of zip metadata such as entry timestamps.
    """
    digest = hashlib.sha256()
    for name in _COLUMN_FIELDS:
        arr = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(arr.dtype).encode("utf-8"))
        digest.update(str(arr.shape).encode("utf-8"))
        digest.update(arr.tobytes())
    return digest.hexdigest()


def artifact_path(directory: Path, name: str) -> Path:
    """The JSON document path of a named artifact (name-validated)."""
    if not name or "/" in name or name.startswith("."):
        raise ExperimentError(f"invalid result name {name!r}")
    if f"{name}.json" == _MANIFEST_FILENAME:
        raise ExperimentError(
            f"result name {name!r} is reserved for the campaign manifest"
        )
    return directory / f"{name}.json"


# -- memory-mapped sidecar access -------------------------------------------


def _npy_from_buffer(buffer, offset: int) -> Optional[np.ndarray]:
    """Parse one ``.npy`` member in place and view its data zero-copy.

    Returns ``None`` for anything the fast path cannot prove safe
    (version it does not know, Fortran order, object dtype) -- the
    caller falls back to ``np.load``.
    """
    if bytes(buffer[offset : offset + 6]) != b"\x93NUMPY":
        return None
    major = buffer[offset + 6]
    if major == 1:
        (header_len,) = struct.unpack(
            "<H", bytes(buffer[offset + 8 : offset + 10])
        )
        header_start = offset + 10
    elif major in (2, 3):
        (header_len,) = struct.unpack(
            "<I", bytes(buffer[offset + 8 : offset + 12])
        )
        header_start = offset + 12
    else:
        return None
    header = bytes(buffer[header_start : header_start + header_len])
    try:
        info = ast.literal_eval(header.decode("latin1"))
        dtype = np.dtype(info["descr"])
        shape = tuple(info["shape"])
        fortran = bool(info["fortran_order"])
    except (ValueError, SyntaxError, KeyError, TypeError):
        return None
    if fortran or dtype.hasobject:
        return None
    count = 1
    for dim in shape:
        count *= int(dim)
    data_start = header_start + header_len
    try:
        arr = np.frombuffer(buffer, dtype=dtype, count=count, offset=data_start)
    except ValueError:
        return None
    return arr.reshape(shape)


def mmap_npz_columns(path: Path) -> Optional[Dict[str, np.ndarray]]:
    """Map an uncompressed ``.npz`` sidecar and view its column arrays.

    ``np.savez`` writes ``ZIP_STORED`` members, so each array's bytes
    sit contiguously inside the archive; the returned arrays are
    read-only views over one shared ``mmap`` (their ``.base`` chain
    keeps it alive).  Returns ``None`` whenever the archive is not in
    the exact shape the writer produces -- compressed members, missing
    fields, damaged headers -- so the caller can fall back to
    ``np.load`` (which then raises the usual corruption errors).
    """
    try:
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except (OSError, ValueError):
        return None
    try:
        archive = zipfile.ZipFile(mapped)
        arrays: Dict[str, np.ndarray] = {}
        for field in _COLUMN_FIELDS:
            info = archive.getinfo(f"{field}.npy")
            if info.compress_type != zipfile.ZIP_STORED:
                return None
            local = info.header_offset
            if bytes(mapped[local : local + 4]) != b"PK\x03\x04":
                return None
            name_len, extra_len = struct.unpack(
                "<HH", bytes(mapped[local + 26 : local + 30])
            )
            arr = _npy_from_buffer(mapped, local + 30 + name_len + extra_len)
            if arr is None:
                return None
            arrays[field] = arr
        return arrays
    except (zipfile.BadZipFile, KeyError, OSError, ValueError, struct.error):
        return None


def _stat_signature(path: Path) -> Optional[Tuple[int, int, int]]:
    """``(mtime_ns, size, inode)`` of a file, or ``None`` if absent.

    Atomic-rename writers always produce a fresh inode, so the
    signature changes on every replace even when mtime granularity or
    size collide.
    """
    try:
        stat = path.stat()
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size, stat.st_ino)


class ResultReader:
    """Lock-free, digest-memoizing read access to one result store.

    Many readers may share a directory with the (single) writer: the
    writer's atomic renames mean every document read lands on a
    complete old or new version, and the reader never creates, locks,
    or mutates anything.
    """

    def __init__(self, directory: Union[str, Path]):
        self._directory = Path(directory)
        # name -> (doc signature, sidecar signature, digest, verified).
        # `verified` records whether the digest was RECOMPUTED against
        # the payload for exactly these on-disk bytes; a digest merely
        # copied out of the document (the cheap ETag path) must never
        # let a later verifying load skip its checksum.
        self._digest_cache: Dict[
            str, Tuple[Optional[Tuple], Optional[Tuple], str, bool]
        ] = {}
        self.digest_recomputes = 0
        """Times a content sha256 was actually recomputed (cache misses)."""
        self.digest_reuses = 0
        """Times a memoized digest short-circuited a checksum recompute."""

    @property
    def directory(self) -> Path:
        """Where results live."""
        return self._directory

    # -- paths ---------------------------------------------------------------

    def path_for(self, name: str) -> Path:
        """The JSON document path of a named artifact."""
        return artifact_path(self._directory, name)

    def columns_path_for(self, name: str) -> Path:
        """The columnar sidecar path of a named artifact."""
        return self._directory / f"{name}{_COLUMNS_SUFFIX}"

    @property
    def manifest_path(self) -> Path:
        """Where the store's campaign checkpoint lives."""
        return self._directory / _MANIFEST_FILENAME

    @property
    def journal_path(self) -> Path:
        """Where the append-only commit journal lives."""
        return self._directory / _JOURNAL_FILENAME

    @property
    def lock_path(self) -> Path:
        """Where the single-writer lockfile lives (never acquired here)."""
        return self._directory / _LOCK_FILENAME

    # -- inventory -----------------------------------------------------------

    def names(self) -> List[str]:
        """All stored result names, sorted (campaign manifest excluded)."""
        if not self._directory.is_dir():
            return []
        return sorted(
            p.stem
            for p in self._directory.glob("*.json")
            if p.name != _MANIFEST_FILENAME and not p.name.startswith(".")
        )

    def has(self, name: str) -> bool:
        """Whether a result with this name is stored."""
        return self.path_for(name).exists()

    def orphaned_tmp_files(self) -> List[str]:
        """Stale ``*.tmp`` files left by writers that died mid-write.

        The atomic-write discipline only leaves these behind on a hard
        kill (SIGKILL, ``os._exit``) or an out-of-space failure between
        the temp write and the rename; a clean unwind unlinks them.
        """
        if not self._directory.is_dir():
            return []
        return sorted(
            p.name
            for p in self._directory.glob("*.tmp")
            if p.is_file() and p.name != _LOCK_FILENAME
        )

    def unreferenced_sidecars(self) -> List[str]:
        """``.columns.npz`` sidecars no live document points at.

        A sidecar is referenced only when some version-3 document's
        ``columns.file`` names it; anything else is debris -- a
        crashed columnar write, an injected fault, or a superseded
        generation a live rewrite left behind.
        """
        if not self._directory.is_dir():
            return []
        referenced = set()
        for name in self.names():
            try:
                document = json.loads(self.path_for(name).read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if (
                isinstance(document, dict)
                and document.get("format_version")
                == _COLUMNAR_FORMAT_VERSION
            ):
                columns = document.get("columns")
                if isinstance(columns, dict):
                    referenced.add(columns.get("file"))
        return [
            sidecar.name
            for sidecar in sorted(self._directory.glob(f"*{_COLUMNS_SUFFIX}"))
            if not sidecar.name.startswith(".")
            and sidecar.name not in referenced
        ]

    def sidecar_names(self, name: str) -> List[str]:
        """On-disk sidecar files belonging to one artifact.

        The canonical ``<name>.columns.npz`` plus any
        ``<name>.g<digest12>.columns.npz`` generations a live rewrite
        parked next to it -- what ``repair`` must quarantine together
        with a damaged document.
        """
        if not self._directory.is_dir():
            return []
        pattern = re.compile(
            re.escape(name)
            + r"(\.g[0-9a-f]{12})?"
            + re.escape(_COLUMNS_SUFFIX)
            + r"\Z"
        )
        return [
            sidecar.name
            for sidecar in sorted(
                self._directory.glob(f"{name}*{_COLUMNS_SUFFIX}")
            )
            if pattern.fullmatch(sidecar.name)
        ]

    # -- document access -----------------------------------------------------

    def read_document(self, name: str, path: Optional[Path] = None) -> Dict[str, Any]:
        """Parse a raw result document (no checksum verification)."""
        path = self.path_for(name) if path is None else path
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ResultCorruptionError(
                f"stored result {name!r} is corrupt or truncated: {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise ResultCorruptionError(
                f"stored result {name!r} is not a result document"
            )
        return document

    def _sidecar_arrays(
        self, name: str, sidecar: Path
    ) -> Dict[str, np.ndarray]:
        """The column arrays of a sidecar, memory-mapped when possible."""
        arrays = mmap_npz_columns(sidecar)
        if arrays is not None:
            return arrays
        # Fallback: let np.load produce the canonical corruption errors.
        try:
            with np.load(sidecar) as archive:
                return {field: archive[field] for field in _COLUMN_FIELDS}
        except Exception as exc:
            raise ResultCorruptionError(
                f"column sidecar of result {name!r} is corrupt: {exc}"
            ) from exc

    def _payload(
        self, name: str, document: Dict[str, Any], verify: bool = True
    ) -> Any:
        """The version-2-equivalent encoded data payload of a document.

        For version-3 documents this maps the column sidecar, checks
        its array checksum (when ``verify``), and rebuilds the summary
        dicts in place of their ``__column_ref__`` stubs.
        """
        data = document.get("data")
        if document.get("format_version") != _COLUMNAR_FORMAT_VERSION:
            return data
        columns = document.get("columns")
        if not isinstance(columns, dict):
            raise ResultCorruptionError(
                f"stored result {name!r} is columnar but lists no column sidecar"
            )
        sidecar = self._directory / str(columns.get("file", ""))
        if not sidecar.exists():
            raise ResultCorruptionError(
                f"stored result {name!r} is missing its column sidecar "
                f"{columns.get('file')!r}"
            )
        arrays = self._sidecar_arrays(name, sidecar)
        if verify:
            recorded = (columns.get("checksum") or {}).get("digest")
            actual = _columns_checksum(arrays)
            if recorded != actual:
                raise ChecksumMismatchError(
                    f"column sidecar of result {name!r} failed its integrity "
                    f"check: recorded digest {recorded!r}, recomputed {actual!r}"
                )
        return _restore_summaries(data, arrays)

    def _verify_document(
        self,
        name: str,
        document: Dict[str, Any],
        payload: Any,
        signatures: Optional[Tuple[Optional[Tuple], Optional[Tuple]]] = None,
    ) -> None:
        """Check a document's content checksum (if it has one) against
        its version-2-equivalent payload.

        With ``signatures`` (the document and sidecar stat signatures
        taken *before* the document was read), a digest already
        verified for the same on-disk bytes is trusted without
        recomputing the sha256 -- the memoization the load path and
        service ETags share.
        """
        checksum = document.get("checksum")
        if not isinstance(checksum, dict):
            return  # legacy version-1 document: nothing to verify against
        recorded = checksum.get("digest")
        if signatures is not None:
            cached = self._digest_cache.get(name)
            if (
                cached is not None
                and cached[0] is not None
                and (cached[0], cached[1]) == signatures
                and cached[2] == recorded
                and cached[3]  # recomputed for these bytes, not copied
            ):
                self.digest_reuses += 1
                return
        self.digest_recomputes += 1
        actual = content_checksum(payload)
        if recorded != actual:
            raise ChecksumMismatchError(
                f"stored result {name!r} failed its integrity check: "
                f"recorded digest {recorded!r}, recomputed {actual!r}"
            )
        if signatures is not None:
            self._digest_cache[name] = (
                signatures[0], signatures[1], actual, True
            )

    def _signatures(
        self, name: str
    ) -> Tuple[Optional[Tuple], Optional[Tuple]]:
        """Stat signatures of an artifact's document and sidecar."""
        return (
            _stat_signature(self.path_for(name)),
            _stat_signature(self.columns_path_for(name)),
        )

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop memoized digests (one artifact, or all of them).

        Stale entries are already harmless -- every cache hit is
        re-keyed against the current stat signature -- but the writer
        calls this after a save so the cache never outlives the data
        it described.
        """
        if name is None:
            self._digest_cache.clear()
        else:
            self._digest_cache.pop(name, None)

    def load(self, name: str, verify: bool = True) -> Any:
        """Reload a result's data payload (integrity-checked).

        Repeated loads of an unchanged artifact reuse the memoized
        digest (stat-signature keyed) instead of recomputing the
        content sha256.

        Lockless reads race the writer's commits: an integrity
        failure whose document changed underneath us is a rewrite in
        flight, not damage, so the read retries against the fresh
        document/sidecar pair.  Damage with a *stable* document
        signature raises as usual.
        """
        attempts = 3
        for attempt in range(attempts):
            path = self.path_for(name)
            signatures = self._signatures(name)
            if not path.exists():
                raise ExperimentError(f"no stored result named {name!r}")
            document = self.read_document(name, path)
            if document.get("format_version") not in _SUPPORTED_VERSIONS:
                raise ExperimentError(
                    f"result {name!r} uses unsupported format "
                    f"{document.get('format_version')}"
                )
            try:
                payload = self._payload(name, document, verify=verify)
                if verify:
                    self._verify_document(name, document, payload, signatures)
            except ResultCorruptionError:
                changed = _stat_signature(path) != signatures[0]
                if changed and attempt + 1 < attempts:
                    continue
                raise
            return _decode(payload)
        raise AssertionError("unreachable")  # pragma: no cover

    def metadata(self, name: str) -> Dict[str, Any]:
        """Reload a result's header (version, config, notes, quality)."""
        path = self.path_for(name)
        if not path.exists():
            raise ExperimentError(f"no stored result named {name!r}")
        document = self.read_document(name, path)
        return {
            key: document.get(key)
            for key in (
                "format_version",
                "library_version",
                "config",
                "notes",
                "quality",
                "checksum",
                "columns",
            )
        }

    def content_digest(self, name: str) -> str:
        """The artifact's content sha256 (the HTTP service's ETag key).

        Version-2/3 documents record it at save time, so an unchanged
        artifact costs two ``stat`` calls; legacy version-1 documents
        get theirs computed (and memoized) over the canonical payload.
        Version-2 and version-3 encodings of the same data share one
        digest, so the ETag survives a ``simra-dram migrate``.
        """
        signatures = self._signatures(name)
        cached = self._digest_cache.get(name)
        if cached is not None and (cached[0], cached[1]) == signatures:
            self.digest_reuses += 1
            return cached[2]
        path = self.path_for(name)
        if not path.exists():
            raise ExperimentError(f"no stored result named {name!r}")
        document = self.read_document(name, path)
        checksum = document.get("checksum")
        if isinstance(checksum, dict) and isinstance(
            checksum.get("digest"), str
        ):
            # Copied, not recomputed: a cheap ETag, but a verifying
            # load for these same bytes must still do its checksum.
            digest, verified = checksum["digest"], False
        else:
            self.digest_recomputes += 1
            digest = content_checksum(
                self._payload(name, document, verify=False)
            )
            verified = False
        self._digest_cache[name] = (
            signatures[0], signatures[1], digest, verified
        )
        return digest

    # -- integrity classification --------------------------------------------

    def validate(self, name: str) -> str:
        """Fine-grained damage classification of one stored artifact.

        The single authority behind both :meth:`verify`'s coarse
        statuses and ``simra-dram repair``'s findings: ``"torn-json"``
        (truncated or non-JSON document), ``"checksum-mismatch"``
        (document bytes altered after the save), ``"sidecar-missing"``
        / ``"sidecar-corrupt"`` / ``"sidecar-mismatch"`` (columnar
        sidecar damage), plus the benign ``"ok"`` / ``"legacy"`` /
        ``"missing"``.

        Like :meth:`load`, a damage verdict is re-checked when the
        document changed mid-classification -- a lockless reader
        racing the writer's commit must not misread a rewrite in
        flight as corruption.
        """
        before = _stat_signature(self.path_for(name))
        verdict = self._validate_once(name)
        if (
            verdict in _DAMAGE_CLASSES
            and _stat_signature(self.path_for(name)) != before
        ):
            verdict = self._validate_once(name)
        return verdict

    def _validate_once(self, name: str) -> str:
        path = self.path_for(name)
        signatures = self._signatures(name)
        if not path.exists():
            return "missing"
        try:
            document = self.read_document(name, path)
        except ResultCorruptionError:
            return "torn-json"
        arrays: Optional[Dict[str, np.ndarray]] = None
        if document.get("format_version") == _COLUMNAR_FORMAT_VERSION:
            columns = document.get("columns")
            if not isinstance(columns, dict):
                return "torn-json"
            sidecar = self._directory / str(columns.get("file", ""))
            if not sidecar.exists():
                return "sidecar-missing"
            try:
                arrays = self._sidecar_arrays(name, sidecar)
            except ResultCorruptionError:
                return "sidecar-corrupt"
            recorded = (columns.get("checksum") or {}).get("digest")
            if recorded != _columns_checksum(arrays):
                return "sidecar-mismatch"
        if not isinstance(document.get("checksum"), dict):
            return "legacy"
        try:
            if arrays is not None:
                payload = _restore_summaries(document.get("data"), arrays)
            else:
                payload = self._payload(name, document, verify=True)
            self._verify_document(name, document, payload, signatures)
        except ChecksumMismatchError:
            return "checksum-mismatch"
        except ResultCorruptionError:
            return "torn-json"
        return "ok"

    def verify(self, name: Optional[str] = None) -> Union[str, Dict[str, Any]]:
        """Integrity status of one artifact, or a store-wide scan.

        With ``name``, returns the coarse status :meth:`validate` maps
        to: ``"ok"`` (checksum verified), ``"legacy"`` (version-1
        document with no checksum), ``"corrupt"`` (unparsable, or a
        columnar document whose sidecar is missing or unreadable),
        ``"mismatch"`` (parses, but the content -- document or sidecar
        arrays -- no longer matches its recorded digest), or
        ``"missing"``.

        Without ``name``, returns a store-wide report dict: per-name
        statuses under ``"artifacts"``, plus the debris a crashed
        writer leaves behind -- stale ``*.tmp`` files under
        ``"orphaned_tmp"`` and ``.columns.npz`` sidecars no document
        references under ``"unreferenced_sidecars"``.
        """
        if name is None:
            return {
                "artifacts": {n: self.verify(n) for n in self.names()},
                "orphaned_tmp": self.orphaned_tmp_files(),
                "unreferenced_sidecars": self.unreferenced_sidecars(),
            }
        return _COARSE_STATUS[self.validate(name)]

    # -- campaign checkpoint / journal (read side) -----------------------------

    def load_manifest(self) -> Optional["CampaignManifest"]:  # noqa: F821
        """Reload the campaign checkpoint, or ``None`` if none exists."""
        from .store import CampaignManifest

        path = self.manifest_path
        if not path.exists():
            return None
        document = self.read_document("campaign manifest", path)
        if document.get("format_version") not in _SUPPORTED_MANIFEST_VERSIONS:
            raise ExperimentError(
                "campaign manifest uses unsupported format "
                f"{document.get('format_version')}"
            )
        return CampaignManifest(
            planned=list(document.get("planned", [])),
            completed=list(document.get("completed", [])),
            fingerprint=document.get("fingerprint"),
            failures=dict(document.get("failures", {})),
            serials=list(document.get("serials", [])),
        )

    def journal_entries(self) -> List[Dict[str, Any]]:
        """All parsable journal entries, in append order.

        A torn final line (the writer died mid-append) is skipped
        rather than raised: the journal is advisory damage-tracking
        metadata, never the source of truth for result bits.
        """
        path = self.journal_path
        if not path.exists():
            return []
        entries = []
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                entries.append(entry)
        return entries

    def lock_holder(self) -> Optional[int]:
        """Pid of the live writer holding the store lock, or ``None``.

        Purely observational: a reader never acquires, steals, or
        removes the lock.
        """
        from .store import _pid_alive

        try:
            holder = int(self.lock_path.read_text().strip() or "0")
        except (OSError, ValueError):
            return None
        return holder if _pid_alive(holder) else None

    def state_token(self) -> str:
        """A digest of the store's observable state, for list ETags.

        Covers every artifact's stat signature plus the manifest and
        journal, so any committed write (or repair) changes the token
        -- the coarse invalidation signal the hot-figure cache and the
        ``/figures`` ETag watch.
        """
        digest = hashlib.sha256()
        for name in self.names():
            doc_sig, side_sig = self._signatures(name)
            digest.update(name.encode("utf-8"))
            digest.update(repr(doc_sig).encode("utf-8"))
            digest.update(repr(side_sig).encode("utf-8"))
        digest.update(repr(_stat_signature(self.manifest_path)).encode("utf-8"))
        digest.update(repr(_stat_signature(self.journal_path)).encode("utf-8"))
        return digest.hexdigest()
