"""Subarray boundary reverse engineering (paper section 3.1).

Rows can only charge-share with rows on the same bitlines, so a
RowClone between two rows succeeds iff they live in the same
subarray.  The paper exploits this to map subarray boundaries on
every tested module; we implement the same probe.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .. import rng
from ..bender.testbench import TestBench
from ..errors import ExperimentError
from .rowclone import execute_rowclone


def same_subarray(bench: TestBench, bank: int, row_a: int, row_b: int) -> bool:
    """Probe whether two rows share bitlines, via a RowClone attempt.

    Destroys the contents of both rows (they are filled with probe
    data), exactly like the real reverse-engineering procedure.
    """
    if row_a == row_b:
        return True
    columns = bench.module.config.columns_per_row
    device_bank = bench.module.bank(bank)
    probe = rng.uniform_bits(columns, "subarray-probe", row_a, row_b)
    device_bank.write_row(row_a, probe)
    device_bank.write_row(row_b, probe.astype(np.uint8) ^ 1)
    result = execute_rowclone(bench, bank, row_a, row_b)
    return result.succeeded


def discover_subarray_size(
    bench: TestBench, bank: int, max_rows: int = 2048
) -> int:
    """Infer the subarray size by scanning for the first clone failure.

    Cloning row ``r`` onto ``r + 1`` fails exactly when ``r + 1``
    starts a new subarray, so the first failing ``r`` gives the size.
    """
    if max_rows < 2:
        raise ExperimentError("need at least two rows to probe")
    limit = min(max_rows, bench.module.profile.rows_per_bank)
    for row in range(limit - 1):
        if not same_subarray(bench, bank, row, row + 1):
            return row + 1
    raise ExperimentError(
        f"no subarray boundary found in the first {limit} rows"
    )


def discover_boundaries(
    bench: TestBench, bank: int, max_rows: int
) -> List[int]:
    """All subarray start rows within ``max_rows`` (0 is always one)."""
    limit = min(max_rows, bench.module.profile.rows_per_bank)
    boundaries = [0]
    for row in range(limit - 1):
        if not same_subarray(bench, bank, row, row + 1):
            boundaries.append(row + 1)
    return boundaries
