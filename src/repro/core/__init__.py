"""Core PUD operations -- the paper's primary contribution.

High-level, documented APIs for every operation the paper
characterizes, built on the simulated device and test infrastructure:

- :mod:`patterns`: the tested data patterns (random + fixed pairs);
- :mod:`rowgroups`: the address algebra of simultaneous activation
  (which APA pairs open which row sets, sampling of tested groups);
- :mod:`operations`: command construction and execution for
  simultaneous many-row activation, MAJX, Multi-RowCopy, RowClone,
  and Frac;
- :mod:`majority`: MAJX planning (input replication, neutral rows);
- :mod:`multirowcopy` / :mod:`rowclone` / :mod:`frac`: the individual
  copy and initialization primitives;
- :mod:`subarray_map`: RowClone-based subarray boundary reverse
  engineering (section 3.1);
- :mod:`success`: the paper's success-rate metric.
"""

from .patterns import (
    DataPattern,
    PATTERN_RANDOM,
    PATTERN_00FF,
    PATTERN_AA55,
    PATTERN_CC33,
    PATTERN_6699,
    PATTERN_ALL0,
    PATTERN_ALL1,
    MAJX_TESTED_PATTERNS,
    COPY_TESTED_PATTERNS,
)
from .rowgroups import (
    RowGroup,
    pair_for_field_mask,
    sample_groups,
    group_from_pair,
    VALID_GROUP_SIZES,
)
from .success import SuccessRateAccumulator, SuccessSample
from .majority import MajXPlan, MajXResult, plan_majx, execute_majx
from .multirowcopy import MultiRowCopyResult, execute_multi_row_copy
from .rowclone import RowCloneResult, execute_rowclone
from .frac import initialize_neutral_rows
from .operations import (
    simultaneous_activation_test,
    ACTIVATION_BEST_T1_NS,
    ACTIVATION_BEST_T2_NS,
    MAJX_BEST_T1_NS,
    MAJX_BEST_T2_NS,
    COPY_BEST_T1_NS,
    COPY_BEST_T2_NS,
)
from .subarray_map import discover_subarray_size, same_subarray
from .trng import (
    TrngGenerator,
    TrngStats,
    longest_run,
    monobit_fraction,
    serial_correlation,
)

__all__ = [
    "DataPattern",
    "PATTERN_RANDOM",
    "PATTERN_00FF",
    "PATTERN_AA55",
    "PATTERN_CC33",
    "PATTERN_6699",
    "PATTERN_ALL0",
    "PATTERN_ALL1",
    "MAJX_TESTED_PATTERNS",
    "COPY_TESTED_PATTERNS",
    "RowGroup",
    "pair_for_field_mask",
    "sample_groups",
    "group_from_pair",
    "VALID_GROUP_SIZES",
    "SuccessRateAccumulator",
    "SuccessSample",
    "MajXPlan",
    "MajXResult",
    "plan_majx",
    "execute_majx",
    "MultiRowCopyResult",
    "execute_multi_row_copy",
    "RowCloneResult",
    "execute_rowclone",
    "initialize_neutral_rows",
    "simultaneous_activation_test",
    "ACTIVATION_BEST_T1_NS",
    "ACTIVATION_BEST_T2_NS",
    "MAJX_BEST_T1_NS",
    "MAJX_BEST_T2_NS",
    "COPY_BEST_T1_NS",
    "COPY_BEST_T2_NS",
    "discover_subarray_size",
    "same_subarray",
    "TrngGenerator",
    "TrngStats",
    "longest_run",
    "monobit_fraction",
    "serial_correlation",
]
