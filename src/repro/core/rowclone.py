"""RowClone: in-DRAM row-to-row copy (paper section 2.2).

An ``ACT -> PRE -> ACT`` sequence whose second gap sits between the
interrupt window and nominal tRP (~6 ns) closes the first wordline
but catches the sense amplifiers still driving the source data, so
the second row is overwritten -- consecutive activation of two rows
(footnote 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bender.program import apa_program
from ..bender.testbench import TestBench
from ..errors import ExperimentError

ROWCLONE_T1_NS = 36.0
"""ACT->PRE gap: full tRAS so the amplifiers are fully driven."""
ROWCLONE_T2_NS = 6.0
"""PRE->ACT gap inside the consecutive-activation window."""


@dataclass(frozen=True)
class RowCloneResult:
    """Outcome of one RowClone operation."""

    source_row: int
    destination_row: int
    match_fraction: float
    """Fraction of destination bits equal to the source data."""
    semantic: str
    """What the device actually did (expected: ``rowclone``)."""

    @property
    def succeeded(self) -> bool:
        """Whether the copy is usable (paper-grade: >99% of bits)."""
        return self.semantic == "rowclone" and self.match_fraction > 0.99


def execute_rowclone(
    bench: TestBench,
    bank: int,
    source_row: int,
    destination_row: int,
    t1_ns: float = ROWCLONE_T1_NS,
    t2_ns: float = ROWCLONE_T2_NS,
) -> RowCloneResult:
    """Copy one row onto another via consecutive activation.

    The caller is responsible for the source data; this function
    snapshots it, runs the APA, and reads the destination back with
    nominal timing.
    """
    if source_row == destination_row:
        raise ExperimentError("source and destination rows must differ")
    device_bank = bench.module.bank(bank)
    source_bits = device_bank.read_row(source_row)
    program = apa_program(bank, source_row, destination_row, t1_ns, t2_ns)
    bench.run(program)
    event = device_bank.last_event
    destination_bits = device_bank.read_row(destination_row)
    match = float(np.mean(destination_bits == source_bits))
    return RowCloneResult(
        source_row=source_row,
        destination_row=destination_row,
        match_fraction=match,
        semantic=event.semantic if event is not None else "unknown",
    )
