"""Row-group algebra: which APA pairs open which rows.

Section 7.1 of the paper derives that issuing ``ACT R_F -> PRE ->
ACT R_S`` with violated timings opens the Cartesian product of the
two addresses' predecoder-field values: ``2**k`` rows, where ``k`` is
the number of predecoder fields in which the addresses differ.  This
module turns that rule into sampling utilities: given a target group
size (2, 4, 8, 16, or 32), construct address pairs that open exactly
that many rows, and enumerate the opened set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

from .. import rng
from ..dram.row_decoder import (
    PredecoderField,
    activation_set,
    field_layout_for_subarray_rows,
)
from ..errors import ConfigurationError

VALID_GROUP_SIZES = (2, 4, 8, 16, 32)
"""The only simultaneous-activation counts COTS chips produce
(section 9, Limitation 2)."""


@dataclass(frozen=True)
class RowGroup:
    """One tested group of simultaneously activated rows."""

    subarray: int
    row_first: int
    row_second: int
    rows: FrozenSet[int]

    @property
    def size(self) -> int:
        """Number of simultaneously activated rows."""
        return len(self.rows)

    def global_rows(self, subarray_rows: int) -> Tuple[int, ...]:
        """Bank-level row numbers of the group, sorted."""
        base = self.subarray * subarray_rows
        return tuple(base + row for row in sorted(self.rows))

    def global_pair(self, subarray_rows: int) -> Tuple[int, int]:
        """Bank-level (R_F, R_S) addresses for the APA sequence."""
        base = self.subarray * subarray_rows
        return base + self.row_first, base + self.row_second


def pair_for_field_mask(
    base_row: int,
    field_mask: Sequence[bool],
    fields: Sequence[PredecoderField],
    offsets: Sequence[int],
) -> int:
    """Construct R_S from R_F by changing exactly the masked fields.

    ``offsets[i]`` picks which *other* value the i-th masked field
    takes (1 .. 2**width - 1, added modulo the field size).
    """
    if len(field_mask) != len(fields) or len(offsets) != len(fields):
        raise ConfigurationError("mask/offsets must match the field count")
    row = 0
    for field, flip, offset in zip(fields, field_mask, offsets):
        value = field.extract(base_row)
        if flip:
            step = 1 + offset % (field.n_outputs - 1) if field.n_outputs > 1 else 0
            value = (value + step) % field.n_outputs
        row |= field.insert(value)
    return row


def group_from_pair(
    subarray: int,
    row_first: int,
    row_second: int,
    subarray_rows: int,
    fields: Sequence[PredecoderField] = (),
) -> RowGroup:
    """The row group an APA pair opens (per the decoder model)."""
    layout = tuple(fields) or field_layout_for_subarray_rows(subarray_rows)
    rows = activation_set(row_first, row_second, layout, subarray_rows)
    return RowGroup(
        subarray=subarray, row_first=row_first, row_second=row_second, rows=rows
    )


def sample_groups(
    subarray: int,
    subarray_rows: int,
    group_size: int,
    count: int,
    *identity: rng.Token,
) -> List[RowGroup]:
    """Sample ``count`` distinct row groups of a given size.

    Mirrors the paper's methodology of randomly testing 100 groups per
    size per subarray (section 3.1).  Groups whose Cartesian product
    would extend past the physical row count (possible in 640-row
    subarrays) are rejected and resampled, because the chip cannot
    open nonexistent rows.
    """
    if group_size not in VALID_GROUP_SIZES:
        raise ConfigurationError(
            f"group size {group_size} not achievable; valid: {VALID_GROUP_SIZES}"
        )
    layout = field_layout_for_subarray_rows(subarray_rows)
    n_fields = len(layout)
    k = group_size.bit_length() - 1
    if k > n_fields:
        raise ConfigurationError(
            f"group size {group_size} needs {k} predecoder fields; "
            f"layout has {n_fields}"
        )
    generator = rng.generator("row-groups", subarray, group_size, *identity)
    groups: List[RowGroup] = []
    seen = set()
    attempts = 0
    max_attempts = max(1000, count * 200)
    while len(groups) < count:
        attempts += 1
        if attempts > max_attempts:
            raise ConfigurationError(
                f"could not sample {count} groups of size {group_size} in a "
                f"{subarray_rows}-row subarray after {max_attempts} attempts"
            )
        base = int(generator.integers(0, subarray_rows))
        flips = generator.permutation(n_fields)[:k]
        mask = [i in set(int(f) for f in flips) for i in range(n_fields)]
        offsets = [int(generator.integers(0, 4)) for _ in range(n_fields)]
        second = pair_for_field_mask(base, mask, layout, offsets)
        if second >= subarray_rows or second == base:
            continue
        group = group_from_pair(subarray, base, second, subarray_rows, layout)
        if group.size != group_size:
            continue  # clipped by the physical row limit (640-row arrays)
        key = group.rows
        if key in seen:
            continue
        seen.add(key)
        groups.append(group)
    return groups
