"""The paper's success-rate metric (section 3.1).

*Success rate* = percentage of DRAM cells that produce the correct
output in **all** test trials of a PUD operation.  A cell that is
wrong even once is an *unstable cell* and counts as failed, because
it cannot be relied on for computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ExperimentError


@dataclass(frozen=True)
class SuccessSample:
    """Aggregated success measurement for one tested row group."""

    group_size: int
    success_rate: float
    trials: int
    cells: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.success_rate <= 1.0:
            raise ExperimentError(
                f"success rate must be a fraction: {self.success_rate}"
            )


class SuccessRateAccumulator:
    """Tracks per-cell correctness across trials of one operation.

    Feed one boolean correctness vector per trial; cells stay
    'successful' only while they have been correct in every trial.
    """

    def __init__(self, cells: int):
        if cells <= 0:
            raise ExperimentError("cell count must be positive")
        self._cells = cells
        self._always_correct: Optional[np.ndarray] = None
        self._trials = 0

    @property
    def trials(self) -> int:
        """Number of trials recorded."""
        return self._trials

    @property
    def cells(self) -> int:
        """Number of cells tracked."""
        return self._cells

    def record(self, correct: np.ndarray) -> None:
        """Record one trial's per-cell correctness."""
        correct = np.asarray(correct, dtype=bool)
        if correct.shape != (self._cells,):
            raise ExperimentError(
                f"correctness vector shape {correct.shape} != ({self._cells},)"
            )
        if self._always_correct is None:
            self._always_correct = correct.copy()
        else:
            self._always_correct &= correct
        self._trials += 1

    @property
    def success_rate(self) -> float:
        """Fraction of cells correct in every recorded trial."""
        if self._always_correct is None:
            raise ExperimentError("no trials recorded")
        return float(np.mean(self._always_correct))

    @property
    def unstable_cells(self) -> int:
        """Number of cells that failed at least once."""
        if self._always_correct is None:
            raise ExperimentError("no trials recorded")
        return int(np.sum(~self._always_correct))

    def stable_mask(self) -> np.ndarray:
        """Boolean mask of cells correct in every trial."""
        if self._always_correct is None:
            raise ExperimentError("no trials recorded")
        return self._always_correct.copy()

    def sample(self, group_size: int) -> SuccessSample:
        """Freeze into an immutable sample record."""
        return SuccessSample(
            group_size=group_size,
            success_rate=self.success_rate,
            trials=self._trials,
            cells=self._cells,
        )
