"""Frac: storing fractional (VDD/2) values in DRAM cells.

FracDRAM (paper section 2.2) shows COTS cells can store VDD/2; the
paper uses this to build *neutral rows* that do not contribute to the
bitline perturbation during MAJX (section 3.3).  Mfr. H parts support
Frac directly; Mfr. M parts emulate neutrality by initializing the
rows toward the sense amplifiers' uniform bias (footnote 5).  Both
strategies are dispatched by the bank's ``apply_frac``.
"""

from __future__ import annotations

from typing import Iterable, List

from ..bender.testbench import TestBench


def initialize_neutral_rows(
    bench: TestBench, bank: int, global_rows: Iterable[int]
) -> List[int]:
    """Put rows into the neutral state; returns the rows touched.

    Raises :class:`~repro.errors.UnsupportedOperationError` if the
    module's vendor profile has no neutral-row mechanism.
    """
    device_bank = bench.module.bank(bank)
    touched: List[int] = []
    for row in global_rows:
        device_bank.apply_frac(row)
        touched.append(row)
    return touched
