"""High-level PUD test operations and the best-known timings.

This module holds the §3.2 simultaneous-many-row-activation test (the
init -> APA -> WR -> readback recipe) plus the timing constants the
characterization found optimal for each operation family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..bender.program import ProgramBuilder
from ..bender.testbench import TestBench
from ..errors import ExperimentError
from .patterns import DataPattern
from .rowgroups import RowGroup

ACTIVATION_BEST_T1_NS = 3.0
"""Best ACT->PRE gap for many-row activation (Obs 1)."""
ACTIVATION_BEST_T2_NS = 3.0
"""Best PRE->ACT gap for many-row activation (Obs 1)."""

MAJX_BEST_T1_NS = 1.5
"""Best ACT->PRE gap for MAJX (Obs 7)."""
MAJX_BEST_T2_NS = 3.0
"""Best PRE->ACT gap for MAJX (Obs 7)."""

COPY_BEST_T1_NS = 36.0
"""Best ACT->PRE gap for Multi-RowCopy (Obs 14): full tRAS."""
COPY_BEST_T2_NS = 3.0
"""Best PRE->ACT gap for Multi-RowCopy (Obs 14)."""

WR_SETUP_DELAY_NS = 15.0
"""Delay between the second ACT and the WR overdrive (respecting the
nominal write timing, as the methodology in section 3.2 requires)."""


@dataclass(frozen=True)
class ActivationTestResult:
    """Outcome of one §3.2 simultaneous-activation trial."""

    group: RowGroup
    semantic: str
    correctness: Tuple[Tuple[int, ...], ...]
    """Per activated row, per cell: did the WR data land?"""

    @property
    def success_fraction(self) -> float:
        """Fraction of activated-row cells holding the WR data."""
        if not self.correctness:
            return 0.0
        return float(np.mean([np.mean(row) for row in self.correctness]))

    def flattened(self) -> np.ndarray:
        """All cells' correctness as one boolean vector."""
        return np.concatenate(
            [np.asarray(row, dtype=bool) for row in self.correctness]
        )


def simultaneous_activation_test(
    bench: TestBench,
    bank: int,
    group: RowGroup,
    t1_ns: float = ACTIVATION_BEST_T1_NS,
    t2_ns: float = ACTIVATION_BEST_T2_NS,
    pattern: Optional[DataPattern] = None,
    trial: int = 0,
) -> ActivationTestResult:
    """One trial of the section 3.2 methodology.

    1. initialize the group's rows with the pattern;
    2. issue the APA sequence with (t1, t2);
    3. issue a WR carrying the *inverse* pattern (must differ from the
       initialization data);
    4. precharge, read every group row back with nominal timing, and
       record which cells hold the WR data.
    """
    from .patterns import PATTERN_RANDOM

    if pattern is None:
        pattern = PATTERN_RANDOM
    columns = bench.module.config.columns_per_row
    subarray_rows = bench.module.profile.subarray_rows
    device_bank = bench.module.bank(bank)

    init_bits = {}
    for global_row in group.global_rows(subarray_rows):
        bits = pattern.row_bits(columns, "act-init", global_row, trial)
        init_bits[global_row] = bits
        device_bank.write_row(global_row, bits)

    # The WR overdrive pattern must differ from every initialization
    # row; the complement of a reference row guarantees that for fixed
    # patterns and is near-certainly distinct for random data.
    reference = pattern.row_bits(columns, "act-wr", group.row_first, trial)
    wr_bits = pattern.inverse_bits(reference)

    rf_global, rs_global = group.global_pair(subarray_rows)
    builder = ProgramBuilder()
    builder.act(bank, rf_global)
    builder.wait(t1_ns)
    builder.pre(bank)
    builder.wait(t2_ns)
    builder.act(bank, rs_global)
    builder.wait(WR_SETUP_DELAY_NS)
    builder.wr(bank, wr_bits)
    bench.run(builder.build())
    event = device_bank.last_event
    if event is None:
        raise ExperimentError("APA produced no activation event")

    correctness = []
    for global_row in group.global_rows(subarray_rows):
        bits = device_bank.read_row(global_row)
        correctness.append(tuple(int(v) for v in (bits == wr_bits).astype(np.uint8)))
    return ActivationTestResult(
        group=group, semantic=event.semantic, correctness=tuple(correctness)
    )
