"""True-random-number generation from charge-sharing metastability.

QUAC-TRNG (paper section 10.1) generates true random numbers by
simultaneously activating rows whose cells present *no* net bitline
differential: the sense amplifiers resolve from thermal noise.  The
paper notes its 32-row activation could extend this; we implement
exactly that.  Half of the activated rows are written with all-1s and
half with all-0s, so every column charge-shares to a dead tie; each
APA then harvests one raw random bit per metastable column.

Raw bits carry per-column bias (a stable sense amp resolves its tie
deterministically), so the generator applies Von Neumann whitening
across consecutive APAs by default.  :func:`monobit_fraction` and
:func:`longest_run` give quick quality diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..bender.program import ProgramBuilder
from ..bender.testbench import TestBench
from ..errors import ExperimentError
from .rowgroups import RowGroup, sample_groups

TRNG_T1_NS = 1.5
TRNG_T2_NS = 3.0
READBACK_DELAY_NS = 13.5


@dataclass(frozen=True)
class TrngStats:
    """Raw-harvest statistics of a generation run."""

    apa_operations: int
    raw_bits: int
    whitened_bits: int

    @property
    def whitening_efficiency(self) -> float:
        """Whitened bits per raw bit (Von Neumann ideal: 0.25)."""
        return self.whitened_bits / self.raw_bits if self.raw_bits else 0.0


class TrngGenerator:
    """Harvest random bits from tied many-row activations."""

    def __init__(
        self,
        bench: TestBench,
        bank: int = 0,
        subarray: int = 0,
        group_size: int = 32,
        group: Optional[RowGroup] = None,
    ):
        if group_size % 2 != 0:
            raise ExperimentError("TRNG needs an even activation count")
        self._bench = bench
        self._bank = bank
        profile = bench.module.profile
        if not profile.supports_multi_row_activation:
            raise ExperimentError(
                f"manufacturer {profile.manufacturer!r} cannot multi-activate"
            )
        self._group = group or sample_groups(
            subarray, profile.subarray_rows, group_size, 1, "trng"
        )[0]
        self._columns = bench.module.config.columns_per_row
        self._subarray_rows = profile.subarray_rows
        self._trial = 0
        self._last_stats = TrngStats(0, 0, 0)

    @property
    def group(self) -> RowGroup:
        """The activated row group."""
        return self._group

    @property
    def last_stats(self) -> TrngStats:
        """Statistics of the most recent :meth:`generate` call."""
        return self._last_stats

    def _prepare_tie(self) -> None:
        """Fill half the group with 1s and half with 0s (zero net charge)."""
        bank = self._bench.module.bank(self._bank)
        rows = self._group.global_rows(self._subarray_rows)
        half = len(rows) // 2
        ones = np.ones(self._columns, dtype=np.uint8)
        zeros = np.zeros(self._columns, dtype=np.uint8)
        for index, row in enumerate(rows):
            bank.write_row(row, ones if index < half else zeros)

    def harvest_raw(self) -> np.ndarray:
        """One APA worth of raw (unwhitened) bits, one per column."""
        self._prepare_tie()
        rf, rs = self._group.global_pair(self._subarray_rows)
        builder = ProgramBuilder()
        builder.act(self._bank, rf)
        builder.wait(TRNG_T1_NS)
        builder.pre(self._bank)
        builder.wait(TRNG_T2_NS)
        builder.act(self._bank, rs)
        builder.wait(READBACK_DELAY_NS)
        builder.rd(self._bank)
        result = self._bench.run(builder.build())
        self._trial += 1
        if not result.reads:
            raise ExperimentError("TRNG readback returned no data")
        return result.reads[0]

    def generate(self, n_bits: int, whiten: bool = True) -> np.ndarray:
        """Generate ``n_bits`` random bits.

        With ``whiten=True`` consecutive raw harvests are Von
        Neumann-extracted pairwise per column (01 -> 0, 10 -> 1,
        00/11 discarded), removing per-column bias at a ~4x raw-bit
        cost.
        """
        if n_bits < 1:
            raise ExperimentError("n_bits must be positive")
        collected: List[np.ndarray] = []
        total = 0
        apas = 0
        raw_count = 0
        guard = 0
        while total < n_bits:
            guard += 1
            if guard > 64 + 8 * (n_bits // max(1, self._columns // 8)):
                raise ExperimentError(
                    "TRNG failed to accumulate entropy (degenerate device?)"
                )
            if whiten:
                first = self.harvest_raw()
                second = self.harvest_raw()
                apas += 2
                raw_count += 2 * self._columns
                keep = first != second
                bits = first[keep]
            else:
                bits = self.harvest_raw()
                apas += 1
                raw_count += self._columns
            collected.append(bits)
            total += bits.size
        output = np.concatenate(collected)[:n_bits]
        self._last_stats = TrngStats(
            apa_operations=apas, raw_bits=raw_count, whitened_bits=int(total)
        )
        return output.astype(np.uint8)


def monobit_fraction(bits: np.ndarray) -> float:
    """Fraction of ones (0.5 ideal)."""
    bits = np.asarray(bits)
    if bits.size == 0:
        raise ExperimentError("empty bit stream")
    return float(bits.mean())


def longest_run(bits: np.ndarray) -> int:
    """Longest run of identical bits (NIST runs-test ingredient)."""
    bits = np.asarray(bits)
    if bits.size == 0:
        raise ExperimentError("empty bit stream")
    changes = np.flatnonzero(np.diff(bits)) + 1
    edges = np.concatenate(([0], changes, [bits.size]))
    return int(np.max(np.diff(edges)))


def serial_correlation(bits: np.ndarray) -> float:
    """Lag-1 autocorrelation of the stream (0 ideal)."""
    bits = np.asarray(bits, dtype=np.float64)
    if bits.size < 2:
        raise ExperimentError("need at least two bits")
    centered = bits - bits.mean()
    denominator = float(np.dot(centered, centered))
    if denominator == 0.0:
        return 1.0  # constant stream: maximally correlated
    return float(np.dot(centered[:-1], centered[1:]) / denominator)
