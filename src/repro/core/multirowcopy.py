"""Multi-RowCopy: one source row to up to 31 destinations at once
(paper section 6 -- one of the two operations the paper introduces).

The command recipe (section 3.4): ACT the source, wait a full tRAS so
the sense amplifiers are completely driven, PRE, then a second ACT
within the interrupt window.  The second ACT opens the whole row
group while the amplifiers still hold the source data, overwriting
every opened row with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..bender.program import apa_program
from ..bender.testbench import TestBench
from ..errors import ExperimentError
from .rowgroups import RowGroup

MULTI_ROW_COPY_T1_NS = 36.0
"""Best ACT->PRE gap (Obs 14: waiting tRAS maximizes success)."""
MULTI_ROW_COPY_T2_NS = 3.0
"""Best PRE->ACT gap (inside the interrupt window)."""


@dataclass(frozen=True)
class MultiRowCopyResult:
    """Outcome of one Multi-RowCopy operation."""

    group: RowGroup
    semantic: str
    per_destination_match: Dict[int, float]
    """Bank-level destination row -> fraction of bits matching source."""
    correctness: Tuple[Tuple[int, ...], ...]
    """Per-destination, per-cell correctness (0/1), for accumulation."""

    @property
    def n_destinations(self) -> int:
        """Number of destination rows written."""
        return len(self.per_destination_match)

    @property
    def success_fraction(self) -> float:
        """Mean per-cell correctness across destinations."""
        if not self.correctness:
            return 0.0
        return float(np.mean([np.mean(row) for row in self.correctness]))


def execute_multi_row_copy(
    bench: TestBench,
    bank: int,
    group: RowGroup,
    t1_ns: float = MULTI_ROW_COPY_T1_NS,
    t2_ns: float = MULTI_ROW_COPY_T2_NS,
) -> MultiRowCopyResult:
    """Copy the group's first-activated row onto the rest of the group.

    The caller initializes the source (``group.row_first``) and the
    destinations beforehand (the characterization uses a destination
    pattern distinct from the source, per section 3.4).
    """
    if group.size < 2:
        raise ExperimentError("Multi-RowCopy needs at least one destination")
    subarray_rows = bench.module.profile.subarray_rows
    source_global, second_global = group.global_pair(subarray_rows)
    device_bank = bench.module.bank(bank)
    source_bits = device_bank.read_row(source_global)
    program = apa_program(bank, source_global, second_global, t1_ns, t2_ns)
    bench.run(program)
    event = device_bank.last_event
    matches: Dict[int, float] = {}
    correctness = []
    for global_row in group.global_rows(subarray_rows):
        if global_row == source_global:
            continue
        bits = device_bank.read_row(global_row)
        correct = (bits == source_bits).astype(np.uint8)
        matches[global_row] = float(np.mean(correct))
        correctness.append(tuple(int(c) for c in correct))
    return MultiRowCopyResult(
        group=group,
        semantic=event.semantic if event is not None else "unknown",
        per_destination_match=matches,
        correctness=tuple(correctness),
    )
