"""MAJX: in-DRAM majority-of-X with input replication (paper section 5
-- the other operation the paper introduces).

To run MAJX with an N-row group the plan stores ``floor(N / X)``
copies of each of the X operands among the activated rows and puts
the ``N mod X`` leftover rows into the neutral state (Frac on Mfr. H,
bias-initialization on Mfr. M -- footnote 5).  Replication preserves
the Boolean function (footnote 3: MAJ6(A,B,C,A,B,C) = MAJ3(A,B,C))
while multiplying the bitline perturbation, which is what lifts the
success rate (section 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..bender.program import ProgramBuilder
from ..bender.testbench import TestBench
from ..errors import ExperimentError
from .frac import initialize_neutral_rows
from .rowgroups import RowGroup

MAJX_T1_NS = 1.5
"""Best ACT->PRE gap for MAJX (Obs 7)."""
MAJX_T2_NS = 3.0
"""Best PRE->ACT gap for MAJX (Obs 7)."""

READBACK_DELAY_NS = 13.5
"""Post-APA wait (tRP-grade) before reading the row buffer
(methodology step 5 in section 3.3)."""


@dataclass(frozen=True)
class MajXPlan:
    """Row assignment for one MAJX execution."""

    x: int
    group: RowGroup
    operand_of_row: Dict[int, int]
    """Local row -> operand index (0..X-1) for replica rows."""
    neutral_rows: Tuple[int, ...]
    """Local rows initialized to the neutral state."""

    @property
    def replicas(self) -> int:
        """Copies stored of each operand."""
        return len(self.operand_of_row) // self.x

    @property
    def n_rows(self) -> int:
        """Total simultaneously activated rows."""
        return self.group.size


@dataclass(frozen=True)
class MajXResult:
    """Outcome of one MAJX execution."""

    plan: MajXPlan
    result_bits: np.ndarray
    expected_bits: np.ndarray
    semantic: str

    @property
    def correct(self) -> np.ndarray:
        """Per-cell correctness of the majority result."""
        return (self.result_bits == self.expected_bits).astype(bool)

    @property
    def success_fraction(self) -> float:
        """Fraction of columns computing the correct majority."""
        return float(np.mean(self.correct))


def expected_majority(operands: Sequence[np.ndarray]) -> np.ndarray:
    """Element-wise Boolean majority of an odd number of bit rows."""
    if len(operands) % 2 == 0:
        raise ExperimentError("majority needs an odd number of operands")
    stacked = np.stack([np.asarray(op, dtype=np.int64) for op in operands])
    return (stacked.sum(axis=0) * 2 > len(operands)).astype(np.uint8)


def plan_majx(x: int, group: RowGroup, replicas: int = None) -> MajXPlan:
    """Assign operand replicas and neutral rows within a group.

    Operands are interleaved across the sorted group rows so each
    operand's copies spread over the group (the paper places them
    across all simultaneously activated rows).  ``replicas`` defaults
    to the maximum ``floor(N / X)``; passing a smaller value pads the
    leftover rows with neutrals instead -- the ablation that isolates
    how much of the success rate comes from input replication versus
    merely opening more rows (section 7.2).
    """
    if x < 3 or x % 2 == 0:
        raise ExperimentError(f"MAJX requires odd X >= 3: {x}")
    if group.size < x:
        raise ExperimentError(
            f"group of {group.size} rows cannot host MAJ{x} operands"
        )
    max_replicas = group.size // x
    if replicas is None:
        replicas = max_replicas
    if not 1 <= replicas <= max_replicas:
        raise ExperimentError(
            f"replicas must be in [1, {max_replicas}] for MAJ{x} on "
            f"{group.size} rows: {replicas}"
        )
    rows = sorted(group.rows)
    operand_rows = rows[: replicas * x]
    neutral = tuple(rows[replicas * x :])
    assignment = {row: index % x for index, row in enumerate(operand_rows)}
    return MajXPlan(x=x, group=group, operand_of_row=assignment, neutral_rows=neutral)


def execute_majx(
    bench: TestBench,
    bank: int,
    plan: MajXPlan,
    operands: Sequence[np.ndarray],
    t1_ns: float = MAJX_T1_NS,
    t2_ns: float = MAJX_T2_NS,
) -> MajXResult:
    """Run one MAJX operation and read the result from the row buffer.

    Steps follow section 3.3: store the operands (replicated), set up
    neutral rows, issue the APA with the requested timings, wait, and
    read the row buffer.
    """
    if len(operands) != plan.x:
        raise ExperimentError(
            f"MAJ{plan.x} needs {plan.x} operands, got {len(operands)}"
        )
    columns = bench.module.config.columns_per_row
    operand_arrays: List[np.ndarray] = []
    for operand in operands:
        bits = np.asarray(operand, dtype=np.uint8)
        if bits.shape != (columns,):
            raise ExperimentError(
                f"operand shape {bits.shape} != ({columns},)"
            )
        operand_arrays.append(bits)

    subarray_rows = bench.module.profile.subarray_rows
    base = plan.group.subarray * subarray_rows
    device_bank = bench.module.bank(bank)
    for local_row, operand_index in plan.operand_of_row.items():
        device_bank.write_row(base + local_row, operand_arrays[operand_index])
    if plan.neutral_rows:
        initialize_neutral_rows(
            bench, bank, [base + row for row in plan.neutral_rows]
        )

    rf_global, rs_global = plan.group.global_pair(subarray_rows)
    builder = ProgramBuilder()
    builder.act(bank, rf_global)
    builder.wait(t1_ns)
    builder.pre(bank)
    builder.wait(t2_ns)
    builder.act(bank, rs_global)
    builder.wait(READBACK_DELAY_NS)
    builder.rd(bank)
    result = bench.run(builder.build())
    if not result.reads:
        raise ExperimentError("MAJX readback produced no data")
    event = device_bank.last_event
    return MajXResult(
        plan=plan,
        result_bits=result.reads[0],
        expected_bits=expected_majority(operand_arrays),
        semantic=event.semantic if event is not None else "unknown",
    )
