"""Data patterns used in the characterization (paper section 3.1).

The paper tests a uniformly distributed random pattern (the worst
case, used by default) and four fixed byte pairs: 0x00/0xFF,
0xAA/0x55, 0xCC/0x33, 0x66/0x99.  For fixed pairs, each tested row is
filled entirely with one byte of the pair; which one is a per-row,
per-trial choice (deterministic from the identity tokens so runs are
reproducible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .. import rng, rngblock
from ..errors import ConfigurationError


def byte_to_bits(byte: int, columns: int) -> np.ndarray:
    """Tile one byte across a row of ``columns`` bits (MSB first)."""
    if not 0 <= byte <= 0xFF:
        raise ConfigurationError(f"byte out of range: {byte}")
    bits = np.unpackbits(np.array([byte], dtype=np.uint8))
    repeats = -(-columns // 8)  # ceil division
    return np.tile(bits, repeats)[:columns].astype(np.uint8)


@dataclass(frozen=True)
class DataPattern:
    """One tested data pattern.

    Attributes
    ----------
    kind:
        Token the reliability model recognizes: ``"random"``,
        ``"00ff"``, ``"aa55"``, ``"cc33"``, ``"6699"``, ``"all0"``,
        ``"all1"``.
    byte_pair:
        The two bytes of a fixed pair, or None for random.
    """

    kind: str
    byte_pair: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.kind == "random":
            if self.byte_pair is not None:
                raise ConfigurationError("random pattern has no byte pair")
        elif self.byte_pair is None:
            raise ConfigurationError(f"pattern {self.kind!r} needs a byte pair")

    @property
    def is_random(self) -> bool:
        """True for the uniformly distributed random pattern."""
        return self.kind == "random"

    def row_bits(self, columns: int, *identity: rng.Token) -> np.ndarray:
        """Data for one row, keyed by identity tokens (row, trial, ...)."""
        if self.is_random:
            return rng.uniform_bits(columns, "pattern-random", *identity)
        assert self.byte_pair is not None
        choice = rng.generator("pattern-pair", self.kind, *identity).integers(0, 2)
        byte = self.byte_pair[int(choice)]
        return byte_to_bits(byte, columns)

    def row_bits_block(
        self,
        columns: int,
        identities: Sequence[Tuple[rng.Token, ...]],
    ) -> np.ndarray:
        """:meth:`row_bits` for many identity tuples -> (n, columns).

        Random patterns vectorize through the seed-prefix + bit-block
        pipeline; fixed byte pairs keep the per-row generator (the
        choice draw comes from ``Generator.integers``, which has no
        single-bit shortcut) -- they are already cheap because each
        row is one byte lookup.
        """
        if not self.is_random:
            out = np.empty((len(identities), columns), dtype=np.uint8)
            for i, identity in enumerate(identities):
                out[i] = self.row_bits(columns, *identity)
            return out
        prefix = rng.SeedPrefix("pattern-random")
        encoded = rng.TokenEncoder()
        seeds = np.empty(len(identities), dtype=np.uint64)
        for i, identity in enumerate(identities):
            seeds[i] = prefix.seed_bytes(
                b"".join(encoded(token) for token in identity)
            )
        return rngblock.uniform_bit_block(seeds, columns)

    def operand_bits(
        self, columns: int, operand: int, *identity: rng.Token
    ) -> np.ndarray:
        """Data for one MAJX input operand.

        For fixed pairs every operand is a whole row of one byte of
        the pair; for random, operands are independent random rows.
        """
        return self.row_bits(columns, "operand", operand, *identity)

    def inverse_bits(self, bits: np.ndarray) -> np.ndarray:
        """The complementary data (used as the WR overdrive pattern in
        the activation experiment, which must differ from the
        initialization pattern)."""
        return (1 - np.asarray(bits, dtype=np.uint8)).astype(np.uint8)


PATTERN_RANDOM = DataPattern("random")
PATTERN_00FF = DataPattern("00ff", (0x00, 0xFF))
PATTERN_AA55 = DataPattern("aa55", (0xAA, 0x55))
PATTERN_CC33 = DataPattern("cc33", (0xCC, 0x33))
PATTERN_6699 = DataPattern("6699", (0x66, 0x99))
PATTERN_ALL0 = DataPattern("all0", (0x00, 0x00))
PATTERN_ALL1 = DataPattern("all1", (0xFF, 0xFF))

MAJX_TESTED_PATTERNS = (
    PATTERN_RANDOM,
    PATTERN_00FF,
    PATTERN_AA55,
    PATTERN_CC33,
    PATTERN_6699,
)
"""The five patterns of Fig 7."""

COPY_TESTED_PATTERNS = (PATTERN_ALL0, PATTERN_ALL1, PATTERN_RANDOM)
"""The three patterns of Fig 11."""
