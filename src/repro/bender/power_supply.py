"""Programmable wordline-voltage supply.

Models the paper's TTi PL068-P bench supply driving the DRAM module's
VPP rail with +-1 mV setting resolution.  Experiments sweep VPP from
the 2.5 V nominal down to 2.1 V (section 3.1); the supply enforces a
safety envelope so a mistyped sweep cannot put the simulated part
outside anything the paper explored.
"""

from __future__ import annotations

from ..dram.module import Module
from ..errors import InfrastructureError
from ..units import VPP_NOMINAL


class VppSupply:
    """Bench supply attached to a module's VPP rail."""

    MIN_VOLTS = 2.0
    MAX_VOLTS = 2.6
    RESOLUTION_VOLTS = 0.001

    def __init__(self, module: Module):
        self._module = module
        self._volts = VPP_NOMINAL
        self._output_enabled = True
        module.vpp = self._volts

    @property
    def volts(self) -> float:
        """Programmed output voltage."""
        return self._volts

    @property
    def output_enabled(self) -> bool:
        """Whether the output stage is on."""
        return self._output_enabled

    def set_voltage(self, volts: float) -> float:
        """Program a new VPP level (snapped to 1 mV resolution)."""
        if not self.MIN_VOLTS <= volts <= self.MAX_VOLTS:
            raise InfrastructureError(
                f"VPP {volts} V outside supply envelope "
                f"[{self.MIN_VOLTS}, {self.MAX_VOLTS}]"
            )
        snapped = round(volts / self.RESOLUTION_VOLTS) * self.RESOLUTION_VOLTS
        self._volts = round(snapped, 3)
        if self._output_enabled:
            self._module.vpp = self._volts
        return self._volts

    def disable_output(self) -> None:
        """Cut the output (used by the cold-boot power-off scenario)."""
        self._output_enabled = False
        self._module.vpp = 0.0

    def enable_output(self) -> None:
        """Re-enable the output at the programmed level."""
        self._output_enabled = True
        self._module.vpp = self._volts

    def reset_nominal(self) -> None:
        """Return to the 2.5 V nominal."""
        self.set_voltage(VPP_NOMINAL)
