"""DRAM Bender-style test-program ISA.

The real DRAM Bender exposes a tiny programmable core on the FPGA: a
register file, arithmetic on registers, branches, and DRAM command
slots, so a whole characterization sweep (loop over row pairs, issue
APA, read back) fits in one uploaded program.  This module implements
that layer: an assembler-level instruction set executed by
:class:`ProgramCore`, which *emits* the timed DRAM command stream the
rest of the stack already understands.

Instructions (operands are register indices unless noted):

- ``LI rd, imm``        load immediate
- ``ADD rd, ra, rb`` / ``ADDI rd, ra, imm``
- ``ACT bank_reg, row_reg``   issue ACT to (bank, row)
- ``PRE bank_reg``            issue PRE
- ``WR bank_reg``             issue WR carrying the staged pattern
- ``RD bank_reg``             issue RD
- ``SLEEP ticks``             idle for ticks x 1.5 ns
- ``BL ra, rb, label``        branch to label if ra < rb
- ``JMP label`` / ``END``

The 1.5 ns command-bus granularity applies: every emitted command
lands on the next free bus tick.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, InfrastructureError
from ..units import COMMAND_GRANULARITY_NS
from .program import CommandProgram, ProgramStep
from ..dram.commands import CommandKind

N_REGISTERS = 16
MAX_STEPS = 2_000_000
"""Executed-instruction bound: runaway loops abort the upload."""


class Opcode(enum.Enum):
    """Instruction opcodes."""

    LI = "LI"
    ADD = "ADD"
    ADDI = "ADDI"
    ACT = "ACT"
    PRE = "PRE"
    WR = "WR"
    RD = "RD"
    SLEEP = "SLEEP"
    BL = "BL"
    JMP = "JMP"
    END = "END"


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    opcode: Opcode
    operands: Tuple[int, ...] = ()
    label: Optional[str] = None


class IsaProgramBuilder:
    """Fluent assembler for ISA programs."""

    def __init__(self) -> None:
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}

    def label(self, name: str) -> "IsaProgramBuilder":
        """Define a branch target at the current position."""
        if name in self._labels:
            raise ConfigurationError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    def _push(self, opcode: Opcode, *operands: int, label: str = None):
        self._instructions.append(
            Instruction(opcode, tuple(int(o) for o in operands), label)
        )
        return self

    def li(self, rd: int, imm: int):
        """rd <- imm"""
        return self._push(Opcode.LI, rd, imm)

    def add(self, rd: int, ra: int, rb: int):
        """rd <- ra + rb"""
        return self._push(Opcode.ADD, rd, ra, rb)

    def addi(self, rd: int, ra: int, imm: int):
        """rd <- ra + imm"""
        return self._push(Opcode.ADDI, rd, ra, imm)

    def act(self, bank_reg: int, row_reg: int):
        """Issue ACT to (reg[bank_reg], reg[row_reg])."""
        return self._push(Opcode.ACT, bank_reg, row_reg)

    def pre(self, bank_reg: int):
        """Issue PRE to reg[bank_reg]."""
        return self._push(Opcode.PRE, bank_reg)

    def wr(self, bank_reg: int):
        """Issue WR (carrying the staged data pattern)."""
        return self._push(Opcode.WR, bank_reg)

    def rd(self, bank_reg: int):
        """Issue RD."""
        return self._push(Opcode.RD, bank_reg)

    def sleep(self, ticks: int):
        """Idle for ticks bus cycles (1.5 ns each)."""
        if ticks < 0:
            raise ConfigurationError("sleep ticks must be non-negative")
        return self._push(Opcode.SLEEP, ticks)

    def branch_lt(self, ra: int, rb: int, label: str):
        """if reg[ra] < reg[rb]: goto label"""
        return self._push(Opcode.BL, ra, rb, label=label)

    def jump(self, label: str):
        """Unconditional branch."""
        return self._push(Opcode.JMP, label=label)

    def end(self):
        """Terminate the program."""
        return self._push(Opcode.END)

    def build(self) -> "IsaProgram":
        """Validate labels and freeze."""
        if not self._instructions:
            raise ConfigurationError("empty ISA program")
        if self._instructions[-1].opcode is not Opcode.END:
            raise ConfigurationError("ISA programs must end with END")
        for instruction in self._instructions:
            if instruction.label is not None and (
                instruction.label not in self._labels
            ):
                raise ConfigurationError(
                    f"undefined label {instruction.label!r}"
                )
        return IsaProgram(tuple(self._instructions), dict(self._labels))


@dataclass(frozen=True)
class IsaProgram:
    """A validated ISA program."""

    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)


class ProgramCore:
    """Executes ISA programs, emitting a timed DRAM command stream.

    The core does not touch the DRAM itself: it produces a
    :class:`CommandProgram` that the usual
    :class:`~repro.bender.fpga.DramBender` replays.  ``stage_pattern``
    installs the full-row data that WR slots carry.
    """

    def __init__(self, granularity_ns: float = COMMAND_GRANULARITY_NS):
        self._granularity = granularity_ns
        self._pattern: Optional[np.ndarray] = None

    def stage_pattern(self, bits: np.ndarray) -> None:
        """Install the data pattern WR instructions will carry."""
        self._pattern = np.asarray(bits, dtype=np.uint8)

    def run(self, program: IsaProgram) -> CommandProgram:
        """Execute to completion; returns the emitted command program."""
        registers = [0] * N_REGISTERS
        steps: List[ProgramStep] = []
        pending_ticks = 0
        pc = 0
        executed = 0

        def emit(kind: CommandKind, bank: int, row: int = None) -> None:
            nonlocal pending_ticks
            delay = max(1, pending_ticks) * self._granularity
            if not steps:
                delay = 0.0
            data = None
            if kind is CommandKind.WR:
                if self._pattern is None:
                    raise InfrastructureError(
                        "WR executed with no staged pattern"
                    )
                data = tuple(int(b) for b in self._pattern)
            steps.append(
                ProgramStep(
                    delay_ns=delay, kind=kind, bank=bank, row=row, data=data
                )
            )
            pending_ticks = 0

        def reg(index: int) -> int:
            if not 0 <= index < N_REGISTERS:
                raise ConfigurationError(f"register r{index} out of range")
            return registers[index]

        while True:
            executed += 1
            if executed > MAX_STEPS:
                raise InfrastructureError(
                    f"ISA program exceeded {MAX_STEPS} executed instructions"
                )
            if pc >= len(program.instructions):
                raise InfrastructureError("program ran off the end (no END)")
            instruction = program.instructions[pc]
            opcode = instruction.opcode
            ops = instruction.operands
            pc += 1
            if opcode is Opcode.LI:
                registers[ops[0]] = ops[1]
            elif opcode is Opcode.ADD:
                registers[ops[0]] = reg(ops[1]) + reg(ops[2])
            elif opcode is Opcode.ADDI:
                registers[ops[0]] = reg(ops[1]) + ops[2]
            elif opcode is Opcode.ACT:
                emit(CommandKind.ACT, reg(ops[0]), reg(ops[1]))
            elif opcode is Opcode.PRE:
                emit(CommandKind.PRE, reg(ops[0]))
            elif opcode is Opcode.WR:
                emit(CommandKind.WR, reg(ops[0]))
            elif opcode is Opcode.RD:
                emit(CommandKind.RD, reg(ops[0]))
            elif opcode is Opcode.SLEEP:
                pending_ticks += ops[0]
            elif opcode is Opcode.BL:
                if reg(ops[0]) < reg(ops[1]):
                    pc = program.labels[instruction.label]
            elif opcode is Opcode.JMP:
                pc = program.labels[instruction.label]
            elif opcode is Opcode.END:
                break
            else:  # pragma: no cover - enum is exhaustive
                raise InfrastructureError(f"unhandled opcode {opcode}")

        if not steps:
            raise ConfigurationError("ISA program emitted no DRAM commands")
        return CommandProgram(tuple(steps), self._granularity)


def apa_sweep_program(
    bank: int,
    row_pairs: List[Tuple[int, int]],
    t1_ticks: int,
    t2_ticks: int,
    recovery_ticks: int = 40,
) -> IsaProgram:
    """Assemble a loop issuing an APA for every (R_F, R_S) pair.

    This is the shape of a real Bender characterization kernel: the
    row pairs are loaded into a table region of the register file...
    except the tiny register file cannot hold a table, so (as on the
    real device) the host unrolls the pair list into the instruction
    stream and the loop structure covers the per-pair command timing.
    """
    if not row_pairs:
        raise ConfigurationError("need at least one row pair")
    builder = IsaProgramBuilder()
    builder.li(0, bank)
    for row_first, row_second in row_pairs:
        builder.li(1, row_first)
        builder.li(2, row_second)
        builder.act(0, 1)
        builder.sleep(t1_ticks)
        builder.pre(0)
        builder.sleep(t2_ticks)
        builder.act(0, 2)
        builder.sleep(recovery_ticks)
        builder.pre(0)
        builder.sleep(recovery_ticks)
    builder.end()
    return builder.build()
