"""The assembled experimental setup of the paper's Fig 2.

One :class:`TestBench` = FPGA (command replayer) + host + rubber
heaters with temperature controller + programmable VPP supply, all
attached to one module under test.  Experiments use it as the single
entry point for environmental control and command execution.
"""

from __future__ import annotations

from ..config import DEFAULT_CONFIG, SimulationConfig
from ..dram.module import Module, build_module
from ..dram.vendor import ModuleSpec
from .fpga import DramBender, ExecutionResult
from .host import TestHost
from .power_supply import VppSupply
from .program import CommandProgram
from .thermal import TemperatureController


class TestBench:
    """Fig 2's six-component rig around one simulated module."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, module: Module):
        self._module = module
        self._bender = DramBender(module)
        self._host = TestHost(self._bender)
        self._thermal = TemperatureController(module)
        self._supply = VppSupply(module)
        # Experiments start at the paper's baseline conditions.
        self.set_temperature(50.0)
        self.set_vpp(2.5)

    @classmethod
    def for_spec(
        cls,
        spec: ModuleSpec,
        instance: int = 0,
        config: SimulationConfig = DEFAULT_CONFIG,
    ) -> "TestBench":
        """Build a bench around a fresh module of a catalog spec."""
        return cls(build_module(spec, instance, config=config))

    @property
    def module(self) -> Module:
        """The device under test."""
        return self._module

    @property
    def bender(self) -> DramBender:
        """Command replayer."""
        return self._bender

    @property
    def host(self) -> TestHost:
        """Host-side helpers."""
        return self._host

    @property
    def thermal(self) -> TemperatureController:
        """Temperature controller."""
        return self._thermal

    @property
    def supply(self) -> VppSupply:
        """VPP bench supply."""
        return self._supply

    def set_temperature(self, temp_c: float) -> None:
        """Program and settle a chip temperature."""
        self._thermal.set_target(temp_c)
        self._thermal.settle()

    def set_vpp(self, volts: float) -> None:
        """Program the wordline voltage."""
        self._supply.set_voltage(volts)

    def run(self, program: CommandProgram) -> ExecutionResult:
        """Replay one command program."""
        return self._bender.execute(program)
