"""The assembled experimental setup of the paper's Fig 2.

One :class:`TestBench` = FPGA (command replayer) + host + rubber
heaters with temperature controller + programmable VPP supply, all
attached to one module under test.  Experiments use it as the single
entry point for environmental control and command execution.
"""

from __future__ import annotations

from ..config import DEFAULT_CONFIG, SimulationConfig
from ..dram.module import Module, build_module
from ..dram.vendor import ModuleSpec
from .fpga import DramBender, ExecutionResult
from .host import TestHost
from .power_supply import VppSupply
from .program import CommandProgram
from .thermal import TemperatureController

BASELINE_TEMPERATURE_C = 50.0
"""The paper's idle chip temperature (every bench starts here)."""

BASELINE_VPP = 2.5
"""Nominal wordline voltage (every bench starts here)."""


class TestBench:
    """Fig 2's six-component rig around one simulated module."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, module: Module):
        self._module = module
        self._bender = DramBender(module)
        self._host = TestHost(self._bender)
        self._thermal = TemperatureController(module)
        self._supply = VppSupply(module)
        # Experiments start at the paper's baseline conditions.
        self.reset_environment()

    @classmethod
    def for_spec(
        cls,
        spec: ModuleSpec,
        instance: int = 0,
        config: SimulationConfig = DEFAULT_CONFIG,
    ) -> "TestBench":
        """Build a bench around a fresh module of a catalog spec."""
        return cls(build_module(spec, instance, config=config))

    @property
    def module(self) -> Module:
        """The device under test."""
        return self._module

    @property
    def bender(self) -> DramBender:
        """Command replayer."""
        return self._bender

    @property
    def host(self) -> TestHost:
        """Host-side helpers."""
        return self._host

    @property
    def thermal(self) -> TemperatureController:
        """Temperature controller."""
        return self._thermal

    @property
    def supply(self) -> VppSupply:
        """VPP bench supply."""
        return self._supply

    def reset_environment(self) -> None:
        """Drive the rig back to the paper's baseline conditions.

        The thermal controller settles exactly onto its target, so a
        reset bench is environmentally indistinguishable from a
        freshly built one -- the property that lets worker processes
        reuse benches across shards without breaking bit-identity.
        """
        self.set_temperature(BASELINE_TEMPERATURE_C)
        self.set_vpp(BASELINE_VPP)

    def set_temperature(self, temp_c: float) -> None:
        """Program and settle a chip temperature."""
        self._thermal.set_target(temp_c)
        self._thermal.settle()

    def set_vpp(self, volts: float) -> None:
        """Program the wordline voltage."""
        self._supply.set_voltage(volts)

    def run(self, program: CommandProgram) -> ExecutionResult:
        """Replay one command program."""
        return self._bender.execute(program)
