"""Host-side test orchestration.

:class:`TestHost` wraps a :class:`~repro.bender.fpga.DramBender` with
the row-level initialization and readback helpers every
characterization experiment needs (paper sections 3.2-3.4 all follow
the same skeleton: initialize rows -> run a command program -> read
rows back -> compare).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..dram.module import Module
from .fpga import DramBender, ExecutionResult
from .program import CommandProgram


class TestHost:
    """Generates test data, drives the Bender, and reads back results."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, bender: DramBender):
        self._bender = bender

    @property
    def bender(self) -> DramBender:
        """The attached command replayer."""
        return self._bender

    @property
    def module(self) -> Module:
        """The device under test."""
        return self._bender.module

    def initialize_rows(
        self, bank: int, rows_to_bits: Dict[int, np.ndarray]
    ) -> None:
        """Write known data into specific rows with nominal timing."""
        device_bank = self.module.bank(bank)
        for row, bits in rows_to_bits.items():
            device_bank.write_row(row, bits)

    def initialize_range(
        self, bank: int, rows: Iterable[int], bits: np.ndarray
    ) -> None:
        """Write the same data into a range of rows."""
        device_bank = self.module.bank(bank)
        for row in rows:
            device_bank.write_row(row, bits)

    def read_rows(self, bank: int, rows: Sequence[int]) -> Dict[int, np.ndarray]:
        """Read rows back with nominal timing after the bank quiesced."""
        device_bank = self.module.bank(bank)
        return {row: device_bank.read_row(row) for row in rows}

    def run(self, program: CommandProgram) -> ExecutionResult:
        """Replay one program."""
        return self._bender.execute(program)

    def mismatch_fraction(
        self, bank: int, rows: Sequence[int], expected: np.ndarray
    ) -> float:
        """Average fraction of bits differing from ``expected`` across rows."""
        readback = self.read_rows(bank, rows)
        expected = np.asarray(expected, dtype=np.uint8)
        fractions: List[float] = [
            float(np.mean(bits != expected)) for bits in readback.values()
        ]
        return float(np.mean(fractions)) if fractions else 0.0
