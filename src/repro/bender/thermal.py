"""Thermal rig: rubber heaters + temperature controller.

Models the paper's MaxWell FT20X setup as a first-order thermal plant
under proportional control: the module temperature approaches the
setpoint exponentially, and experiments call :meth:`settle` before
measuring, as the real controller does when it waits for the chamber
to stabilize.
"""

from __future__ import annotations

import math

from ..dram.module import Module
from ..errors import InfrastructureError


class TemperatureController:
    """Closed-loop temperature control of one module."""

    MIN_TARGET_C = 20.0
    MAX_TARGET_C = 95.0
    SETTLE_TOLERANCE_C = 0.1

    def __init__(
        self,
        module: Module,
        ambient_c: float = 25.0,
        time_constant_s: float = 30.0,
    ):
        if time_constant_s <= 0:
            raise InfrastructureError("time constant must be positive")
        self._module = module
        self._current_c = ambient_c
        self._target_c = ambient_c
        self._time_constant_s = time_constant_s
        module.temperature_c = ambient_c

    @property
    def current_c(self) -> float:
        """Measured module temperature."""
        return self._current_c

    @property
    def target_c(self) -> float:
        """Controller setpoint."""
        return self._target_c

    def set_target(self, temp_c: float) -> None:
        """Program a new setpoint (within the rig's envelope)."""
        if not self.MIN_TARGET_C <= temp_c <= self.MAX_TARGET_C:
            raise InfrastructureError(
                f"target {temp_c} C outside rig envelope "
                f"[{self.MIN_TARGET_C}, {self.MAX_TARGET_C}]"
            )
        self._target_c = temp_c

    def step(self, dt_s: float) -> float:
        """Advance the thermal plant by ``dt_s`` seconds."""
        if dt_s < 0:
            raise InfrastructureError("time step must be non-negative")
        decay = math.exp(-dt_s / self._time_constant_s)
        self._current_c = self._target_c + (self._current_c - self._target_c) * decay
        self._module.temperature_c = self._current_c
        return self._current_c

    def settle(self) -> float:
        """Run the plant until the module is at the setpoint."""
        # Eight time constants bring the error below 0.04% of the step.
        self.step(8.0 * self._time_constant_s)
        self._current_c = self._target_c
        self._module.temperature_c = self._current_c
        return self._current_c

    def is_settled(self) -> bool:
        """Whether the measured temperature matches the setpoint."""
        return abs(self._current_c - self._target_c) <= self.SETTLE_TOLERANCE_C
