"""Power measurement harness.

The paper measures each operation's average power on a live module by
replaying it continuously (Fig 5 and Obs 5).  :class:`PowerMeter`
does the simulator equivalent: snapshot a bank's action counters and
event log, replay a command program a number of times, and convert
the accumulated energy over the elapsed bus time into average power.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List

from ..dram.energy import EnergyAccountant, budget_from_power_model
from ..errors import ConfigurationError
from .fpga import DramBender
from .program import CommandProgram


@dataclass(frozen=True)
class PowerMeasurement:
    """Result of one power-measurement run."""

    average_mw: float
    energy_pj: float
    elapsed_ns: float
    repetitions: int


class PowerMeter:
    """Measure the average power of a replayed command program."""

    def __init__(self, bender: DramBender, accountant: EnergyAccountant = None):
        self._bender = bender
        self._accountant = accountant or EnergyAccountant(
            budget_from_power_model()
        )

    @property
    def accountant(self) -> EnergyAccountant:
        """The energy budget in use."""
        return self._accountant

    def measure(
        self, program: CommandProgram, repetitions: int = 32
    ) -> PowerMeasurement:
        """Replay a program repeatedly and report its average power.

        Elapsed time counts the program durations plus the
        inter-program quiesce gaps the rig inserts, matching how a
        bench supply would average the draw.
        """
        if repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        banks = [
            self._bender.module.bank(i)
            for i in range(self._bender.module.n_banks)
        ]
        stats_before = [Counter(bank.stats) for bank in banks]
        events_before = [len(bank.event_log) for bank in banks]
        start_ns = self._bender.scheduler.clock_ns

        for _ in range(repetitions):
            self._bender.execute(program)

        elapsed = self._bender.scheduler.clock_ns - start_ns
        stats_delta: Counter = Counter()
        events: List = []
        for bank, before, event_mark in zip(banks, stats_before, events_before):
            delta = Counter(bank.stats)
            delta.subtract(before)
            stats_delta.update(delta)
            events.extend(list(bank.event_log)[event_mark:])
        energy = self._accountant.total_energy_pj(stats_delta, events, elapsed)
        return PowerMeasurement(
            average_mw=energy / elapsed,
            energy_pj=energy,
            elapsed_ns=elapsed,
            repetitions=repetitions,
        )
