"""The simulated FPGA command replayer.

:class:`DramBender` plays compiled command programs into a simulated
module, collects RD outputs, and quiesces the device between programs
(the real infrastructure similarly returns the DRAM to a precharged,
refreshed state between tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..dram.commands import CommandKind, pre
from ..dram.module import Module
from ..errors import InfrastructureError
from .program import CommandProgram
from .scheduler import Scheduler, TimingViolation

_INTER_PROGRAM_GAP_NS = 100.0


@dataclass
class ExecutionResult:
    """Outcome of replaying one command program."""

    reads: List[np.ndarray] = field(default_factory=list)
    """Row-buffer contents returned by each RD, in program order."""
    violations: List[TimingViolation] = field(default_factory=list)
    """JEDEC timing parameters the program undershot."""
    duration_ns: float = 0.0
    """Bus time from first to last command."""

    @property
    def violated_parameters(self) -> List[str]:
        """Names of the distinct violated timing parameters."""
        return sorted({v.parameter for v in self.violations})


class DramBender:
    """Replay command programs against a simulated module."""

    def __init__(self, module: Module):
        self._module = module
        self._scheduler = Scheduler(module.timings)

    @property
    def module(self) -> Module:
        """The device under test."""
        return self._module

    @property
    def scheduler(self) -> Scheduler:
        """The bus scheduler (exposes the running clock)."""
        return self._scheduler

    def execute(self, program: CommandProgram) -> ExecutionResult:
        """Replay one program; the device quiesces afterwards."""
        scheduled, violations = self._scheduler.compile(program)
        result = ExecutionResult(
            violations=violations, duration_ns=program.duration_ns()
        )
        for item in scheduled:
            command = item.command
            if command.kind is CommandKind.REF:
                # REF is all-bank: settle and refresh every built bank.
                for bank_index in range(self._module.n_banks):
                    bank = self._module.bank(bank_index)
                    bank.settle(command.time_ns)
                    bank.process(command)
                continue
            bank = self._module.bank(command.bank)
            output = bank.process(command)
            if command.kind is CommandKind.RD:
                if output is None:
                    raise InfrastructureError("RD returned no data")
                result.reads.append(output)
        self._quiesce()
        return result

    def execute_all(self, programs: List[CommandProgram]) -> List[ExecutionResult]:
        """Replay several programs back to back."""
        return [self.execute(program) for program in programs]

    def _quiesce(self) -> None:
        """Precharge every bank and advance past any pending precharge."""
        self._scheduler.advance(_INTER_PROGRAM_GAP_NS)
        now = self._scheduler.clock_ns
        for bank_index in range(self._module.n_banks):
            bank = self._module.bank(bank_index)
            bank.settle(now)
            if bank.state.name == "ACTIVE":
                bank.process(pre(now, bank_index))
                bank.settle(now + _INTER_PROGRAM_GAP_NS)
        self._scheduler.advance(_INTER_PROGRAM_GAP_NS)
