"""Program scheduler: compiles programs to timed commands and audits
which JEDEC constraints the schedule violates.

PUD operations *intentionally* violate tRAS and tRP; the scheduler
does not forbid that (the device model decides what physically
happens), but it records every violation so experiments can report
the exact deviations from the standard -- the same bookkeeping the
paper's methodology sections describe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dram.commands import Command, CommandKind
from ..dram.timing import DDR4_TIMINGS, TimingParameters
from ..errors import ConfigurationError
from .program import CommandProgram


@dataclass(frozen=True)
class TimingViolation:
    """One undershot JEDEC parameter in a scheduled command stream."""

    parameter: str
    required_ns: float
    actual_ns: float
    command_index: int

    @property
    def undershoot_ns(self) -> float:
        """How far below the nominal parameter the schedule went."""
        return self.required_ns - self.actual_ns


@dataclass(frozen=True)
class ScheduledCommand:
    """A command with its position in the compiled stream."""

    index: int
    command: Command


class Scheduler:
    """Compile :class:`CommandProgram` objects into command streams."""

    def __init__(self, timings: TimingParameters = DDR4_TIMINGS):
        self._timings = timings
        self._clock = 0.0

    @property
    def clock_ns(self) -> float:
        """Current bus time."""
        return self._clock

    def reset(self) -> None:
        """Rewind the bus clock (new test run)."""
        self._clock = 0.0

    def advance(self, delay_ns: float) -> None:
        """Insert idle bus time between programs."""
        if delay_ns < 0:
            raise ConfigurationError("cannot advance the clock backwards")
        self._clock += delay_ns

    def compile(
        self, program: CommandProgram
    ) -> Tuple[List[ScheduledCommand], List[TimingViolation]]:
        """Compile a program starting at the current bus time.

        Returns the scheduled commands and the list of JEDEC timing
        violations found (per bank: ACT->PRE vs tRAS, PRE->ACT vs tRP,
        ACT->ACT vs tRC).
        """
        commands = program.to_commands(start_ns=self._clock)
        if commands:
            self._clock = commands[-1].time_ns
        scheduled = [
            ScheduledCommand(index=i, command=c) for i, c in enumerate(commands)
        ]
        return scheduled, self.audit(commands)

    def audit(self, commands: List[Command]) -> List[TimingViolation]:
        """Find JEDEC violations in an absolute-time command list."""
        violations: List[TimingViolation] = []
        last_act: Dict[int, Optional[float]] = {}
        last_pre: Dict[int, Optional[float]] = {}
        for index, command in enumerate(commands):
            bank = command.bank
            if command.kind is CommandKind.ACT:
                pre_time = last_pre.get(bank)
                if pre_time is not None:
                    gap = command.time_ns - pre_time
                    if gap < self._timings.t_rp:
                        violations.append(
                            TimingViolation("tRP", self._timings.t_rp, gap, index)
                        )
                act_time = last_act.get(bank)
                if act_time is not None:
                    gap = command.time_ns - act_time
                    if gap < self._timings.t_rc:
                        violations.append(
                            TimingViolation("tRC", self._timings.t_rc, gap, index)
                        )
                last_act[bank] = command.time_ns
            elif command.kind is CommandKind.PRE:
                act_time = last_act.get(bank)
                if act_time is not None:
                    gap = command.time_ns - act_time
                    if gap < self._timings.t_ras:
                        violations.append(
                            TimingViolation("tRAS", self._timings.t_ras, gap, index)
                        )
                last_pre[bank] = command.time_ns
        return violations
