"""Infrastructure self-test.

Real test rigs ship maintenance diagnostics; this module provides the
simulator's: march-style data-retention patterns over sample rows, a
timing-regime regression (the APA windows must classify as designed),
and environmental-control checks.  Run it before a long
characterization campaign to catch a mis-assembled bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core.patterns import byte_to_bits
from ..dram.timing import ApaRegime
from .program import apa_program
from .testbench import TestBench

MARCH_BYTES = (0x00, 0xFF, 0xAA, 0x55)
SAMPLE_ROWS = (0, 1, 255, 511)


@dataclass
class SelfTestReport:
    """Outcome of one self-test run."""

    checks_run: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every check succeeded."""
        return not self.failures

    def record(self, ok: bool, description: str) -> None:
        """Tally one check."""
        self.checks_run += 1
        if not ok:
            self.failures.append(description)


def run_self_test(bench: TestBench, bank: int = 0) -> SelfTestReport:
    """Exercise the bench end to end; returns a pass/fail report."""
    report = SelfTestReport()
    module = bench.module
    device_bank = module.bank(bank)
    columns = module.config.columns_per_row

    # 1. March patterns: write/readback must be bit-exact at nominal
    #    timing for every sample row and byte pattern.
    rows = [r for r in SAMPLE_ROWS if r < module.profile.rows_per_bank]
    for byte in MARCH_BYTES:
        bits = byte_to_bits(byte, columns)
        for row in rows:
            device_bank.write_row(row, bits)
            ok = bool(np.array_equal(device_bank.read_row(row), bits))
            report.record(ok, f"march 0x{byte:02X} row {row}")

    # 2. Timing-regime regression: the nominal windows must classify
    #    as designed (a drifted rig would silently change semantics).
    timings = module.timings
    expectations = [
        (1.5, ApaRegime.SIMULTANEOUS),
        (3.0, ApaRegime.SIMULTANEOUS),
        (6.0, ApaRegime.CONSECUTIVE),
        (timings.t_rp, ApaRegime.STANDARD),
    ]
    for t2, expected in expectations:
        ok = timings.classify_apa(t2) is expected
        report.record(ok, f"regime at t2={t2}ns should be {expected.value}")

    # 3. The scheduler must flag the canonical PUD violations.
    result = bench.run(apa_program(bank, 0, 1, 1.5, 3.0))
    ok = set(result.violated_parameters) == {"tRAS", "tRC", "tRP"}
    report.record(ok, "violation audit of the PUD APA")

    # 4. Environmental controls reach their setpoints.
    bench.set_temperature(62.0)
    report.record(
        abs(module.temperature_c - 62.0) < 0.01, "thermal setpoint 62C"
    )
    bench.set_vpp(2.317)
    report.record(abs(module.vpp - 2.317) < 1e-9, "VPP setpoint 2.317V")
    bench.set_temperature(50.0)
    bench.set_vpp(2.5)

    # 5. On a susceptible part, an APA must open exactly the set the
    #    decoder algebra predicts (the Fig 14 walk-through, expressed
    #    against this module's predecoder layout).
    if module.profile.supports_multi_row_activation:
        from ..dram.row_decoder import (
            activation_set,
            field_layout_for_subarray_rows,
        )

        subarray_rows = module.profile.subarray_rows
        layout = field_layout_for_subarray_rows(subarray_rows)
        expected_rows = activation_set(0, 7, layout, subarray_rows)
        bench.run(apa_program(bank, 0, 7, 1.5, 3.0))
        event = device_bank.last_event
        ok = event is not None and event.rows == expected_rows
        report.record(ok, f"APA(0,7) activation set {sorted(expected_rows)}")
    return report
