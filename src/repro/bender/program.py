"""Command-program DSL.

A :class:`CommandProgram` is an ordered list of DRAM commands with
explicit inter-command delays -- the representation a DRAM Bender user
writes and the FPGA replays.  The builder enforces the infrastructure's
1.5 ns command granularity (paper section 9, Limitation 2): command
issue times must land on granularity ticks, which is exactly why the
paper can only reach t1/t2 values that are multiples of 1.5 ns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..units import COMMAND_GRANULARITY_NS
from ..dram.commands import Command, CommandKind

_TICK_TOLERANCE = 1e-9


@dataclass(frozen=True)
class ProgramStep:
    """One command plus the delay separating it from the previous one."""

    delay_ns: float
    kind: CommandKind
    bank: int = 0
    row: Optional[int] = None
    data: Optional[Tuple[int, ...]] = field(default=None, repr=False)


@dataclass(frozen=True)
class CommandProgram:
    """An immutable, validated command program."""

    steps: Tuple[ProgramStep, ...]
    granularity_ns: float = COMMAND_GRANULARITY_NS

    def __len__(self) -> int:
        return len(self.steps)

    def duration_ns(self) -> float:
        """Total time from the first command to the last."""
        return sum(step.delay_ns for step in self.steps[1:])

    def to_commands(self, start_ns: float = 0.0) -> List[Command]:
        """Compile to absolute-time commands starting at ``start_ns``."""
        commands: List[Command] = []
        clock = start_ns
        for index, step in enumerate(self.steps):
            if index > 0:
                clock += step.delay_ns
            commands.append(
                Command(
                    kind=step.kind,
                    time_ns=clock,
                    bank=step.bank,
                    row=step.row,
                    data=step.data,
                )
            )
        return commands


class ProgramBuilder:
    """Fluent builder of :class:`CommandProgram` objects.

    Delays are validated against the command-bus granularity: a delay
    that does not land on a 1.5 ns tick cannot be issued by the
    infrastructure and raises :class:`ConfigurationError`, mirroring
    the real limitation.
    """

    def __init__(self, granularity_ns: float = COMMAND_GRANULARITY_NS):
        if granularity_ns <= 0:
            raise ConfigurationError("granularity must be positive")
        self._granularity = granularity_ns
        self._steps: List[ProgramStep] = []
        self._pending_delay = 0.0

    def _check_tick(self, delay_ns: float) -> float:
        if delay_ns < 0:
            raise ConfigurationError(f"delay must be non-negative: {delay_ns}")
        ticks = delay_ns / self._granularity
        if abs(ticks - round(ticks)) > _TICK_TOLERANCE:
            raise ConfigurationError(
                f"delay {delay_ns} ns is not a multiple of the "
                f"{self._granularity} ns command granularity"
            )
        return delay_ns

    def wait(self, delay_ns: float) -> "ProgramBuilder":
        """Insert idle time before the next command."""
        self._pending_delay += self._check_tick(delay_ns)
        return self

    def _push(
        self,
        kind: CommandKind,
        bank: int = 0,
        row: Optional[int] = None,
        data: Optional[np.ndarray] = None,
    ) -> "ProgramBuilder":
        delay = self._pending_delay
        if self._steps and delay < self._granularity - _TICK_TOLERANCE:
            # Back-to-back commands are at least one bus tick apart.
            delay = self._granularity
        packed = None
        if data is not None:
            bits = np.asarray(data, dtype=np.uint8)
            packed = tuple(int(b) for b in bits)
        self._steps.append(
            ProgramStep(delay_ns=delay, kind=kind, bank=bank, row=row, data=packed)
        )
        self._pending_delay = 0.0
        return self

    def act(self, bank: int, row: int) -> "ProgramBuilder":
        """Append an ACTIVATE."""
        return self._push(CommandKind.ACT, bank=bank, row=row)

    def pre(self, bank: int) -> "ProgramBuilder":
        """Append a PRECHARGE."""
        return self._push(CommandKind.PRE, bank=bank)

    def wr(self, bank: int, data: np.ndarray) -> "ProgramBuilder":
        """Append a full-row WRITE."""
        return self._push(CommandKind.WR, bank=bank, data=data)

    def rd(self, bank: int) -> "ProgramBuilder":
        """Append a READ of the open row."""
        return self._push(CommandKind.RD, bank=bank)

    def ref(self) -> "ProgramBuilder":
        """Append a REFRESH."""
        return self._push(CommandKind.REF)

    def nop(self) -> "ProgramBuilder":
        """Append a NOP (one tick of bus idle)."""
        return self._push(CommandKind.NOP)

    def extend(self, other: CommandProgram) -> "ProgramBuilder":
        """Append all steps of an existing program."""
        for step in other.steps:
            self._pending_delay += step.delay_ns
            self._push(step.kind, bank=step.bank, row=step.row, data=step.data)
        return self

    def build(self) -> CommandProgram:
        """Finalize into an immutable program."""
        if not self._steps:
            raise ConfigurationError("cannot build an empty command program")
        return CommandProgram(tuple(self._steps), self._granularity)


def snap_to_granularity(
    delay_ns: float, granularity_ns: float = COMMAND_GRANULARITY_NS
) -> float:
    """Round a desired delay to the nearest issueable bus tick."""
    ticks = max(1, round(delay_ns / granularity_ns))
    return ticks * granularity_ns


def program_from_absolute(
    commands: Sequence[Tuple[float, CommandKind, int, Optional[int]]],
    granularity_ns: float = COMMAND_GRANULARITY_NS,
) -> CommandProgram:
    """Build a program from (time, kind, bank, row) tuples.

    Times must land on bus ticks and be strictly increasing after
    sorting; used by multi-bank schedulers that compute absolute slot
    assignments rather than sequential delays.
    """
    if not commands:
        raise ConfigurationError("cannot build an empty command program")
    ordered = sorted(commands, key=lambda item: item[0])
    steps = []
    previous = None
    for time_ns, kind, bank, row in ordered:
        ticks = time_ns / granularity_ns
        if abs(ticks - round(ticks)) > _TICK_TOLERANCE:
            raise ConfigurationError(
                f"command time {time_ns} ns is off the {granularity_ns} ns grid"
            )
        if previous is not None and time_ns <= previous:
            raise ConfigurationError(
                f"bus conflict: two commands at/before {time_ns} ns"
            )
        delay = 0.0 if previous is None else time_ns - previous
        steps.append(
            ProgramStep(delay_ns=delay, kind=kind, bank=bank, row=row)
        )
        previous = time_ns
    return CommandProgram(tuple(steps), granularity_ns)


def apa_program(
    bank: int,
    row_first: int,
    row_second: int,
    t1_ns: float,
    t2_ns: float,
    granularity_ns: float = COMMAND_GRANULARITY_NS,
) -> CommandProgram:
    """The paper's core ``ACT R_F -> t1 -> PRE -> t2 -> ACT R_S`` sequence."""
    builder = ProgramBuilder(granularity_ns)
    builder.act(bank, row_first)
    builder.wait(t1_ns)
    builder.pre(bank)
    builder.wait(t2_ns)
    builder.act(bank, row_second)
    return builder.build()
