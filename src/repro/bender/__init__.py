"""DRAM Bender-style testing infrastructure (paper section 3.1, Fig 2).

The paper's experiments run on an FPGA board programmed with DRAM
Bender, which gives the host precise (1.5 ns granularity) control of
the DRAM command bus, plus a thermal rig and a programmable wordline
voltage supply.  This package simulates that rig:

- :mod:`program` / :mod:`scheduler`: a command-program DSL compiled to
  timed command streams with the same 1.5 ns issue granularity;
- :mod:`fpga`: the program executor driving a simulated module;
- :mod:`thermal`: rubber-heater + controller plant (MaxWell FT200);
- :mod:`power_supply`: the VPP supply (TTi PL068-P, +-1 mV);
- :mod:`testbench`: the assembled experimental setup of Fig 2.
"""

from .program import CommandProgram, ProgramBuilder, apa_program
from .scheduler import ScheduledCommand, Scheduler, TimingViolation
from .fpga import DramBender, ExecutionResult
from .host import TestHost
from .thermal import TemperatureController
from .power_supply import VppSupply
from .testbench import TestBench
from .isa import IsaProgram, IsaProgramBuilder, ProgramCore, apa_sweep_program
from .measurement import PowerMeasurement, PowerMeter
from .selftest import SelfTestReport, run_self_test

__all__ = [
    "CommandProgram",
    "ProgramBuilder",
    "apa_program",
    "ScheduledCommand",
    "Scheduler",
    "TimingViolation",
    "DramBender",
    "ExecutionResult",
    "TestHost",
    "TemperatureController",
    "VppSupply",
    "TestBench",
    "IsaProgram",
    "IsaProgramBuilder",
    "ProgramCore",
    "apa_sweep_program",
    "PowerMeasurement",
    "PowerMeter",
    "SelfTestReport",
    "run_self_test",
]
