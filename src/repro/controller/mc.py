"""The memory controller.

Compiles byte-granularity loads and stores into JEDEC-legal command
sequences (ACT, tRCD, RD/WR, tRAS/tWR, PRE, tRP) against the
simulated module, and exposes PUD fast paths:

- :meth:`MemoryController.copy_row`: in-DRAM RowClone when source and
  destination share a subarray, buffered copy-through-the-host
  otherwise -- with the decision and both latencies reported, so
  callers see exactly what PiDRAM-style acceleration buys.
- :meth:`MemoryController.broadcast_row`: Multi-RowCopy of one row
  onto a whole activation group.
- :meth:`MemoryController.memset_rows`: bulk initialization via one
  seed write plus in-DRAM copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..bender.program import ProgramBuilder
from ..bender.testbench import TestBench
from ..core.rowgroups import RowGroup, group_from_pair
from ..errors import AddressError, ExperimentError
from .mapping import AddressMapping

ROWCLONE_T2_NS = 6.0
MULTI_COPY_T2_NS = 3.0


@dataclass
class MemoryControllerStats:
    """Operation and bus-time accounting."""

    reads: int = 0
    writes: int = 0
    rowclones: int = 0
    multi_copies: int = 0
    buffered_copies: int = 0
    bus_time_ns: float = 0.0

    def merged(self) -> dict:
        """Plain-dict view for reporting."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "rowclones": self.rowclones,
            "multi_copies": self.multi_copies,
            "buffered_copies": self.buffered_copies,
            "bus_time_ns": self.bus_time_ns,
        }


@dataclass(frozen=True)
class CopyOutcome:
    """Result of a controller-level row copy."""

    used_rowclone: bool
    rows_written: int
    bus_time_ns: float
    fallback_estimate_ns: float

    @property
    def speedup_vs_fallback(self) -> float:
        """How much faster than the buffered path this copy ran."""
        if self.bus_time_ns <= 0:
            return float("inf")
        return self.fallback_estimate_ns / self.bus_time_ns


class MemoryController:
    """Byte-granularity front end over one simulated module."""

    def __init__(self, bench: TestBench):
        self._bench = bench
        self._module = bench.module
        self._mapping = AddressMapping(
            self._module.profile, self._module.config.columns_per_row
        )
        self._timings = self._module.timings
        self.stats = MemoryControllerStats()

    @property
    def mapping(self) -> AddressMapping:
        """The physical address mapping."""
        return self._mapping

    @property
    def capacity_bytes(self) -> int:
        """Mapped capacity."""
        return self._mapping.capacity_bytes

    # -- row-level command helpers ------------------------------------------------

    def _row_read_program(self, bank: int, row: int) -> ProgramBuilder:
        builder = ProgramBuilder()
        builder.act(bank, row)
        builder.wait(self._timings.t_rcd)
        builder.rd(bank)
        builder.wait(self._timings.t_ras - self._timings.t_rcd)
        builder.pre(bank)
        builder.wait(self._timings.t_rp)
        builder.nop()
        return builder

    def _fetch_row(self, bank: int, row: int) -> np.ndarray:
        result = self._bench.run(self._row_read_program(bank, row).build())
        self.stats.reads += 1
        self.stats.bus_time_ns += result.duration_ns
        if not result.reads:
            raise ExperimentError("row read returned no data")
        return result.reads[0]

    def _store_row(self, bank: int, row: int, bits: np.ndarray) -> None:
        builder = ProgramBuilder()
        builder.act(bank, row)
        builder.wait(self._timings.t_rcd)
        builder.wr(bank, bits)
        builder.wait(self._timings.t_wr)
        builder.pre(bank)
        builder.wait(self._timings.t_rp)
        builder.nop()
        result = self._bench.run(builder.build())
        self.stats.writes += 1
        self.stats.bus_time_ns += result.duration_ns

    @staticmethod
    def _bits_to_bytes(bits: np.ndarray) -> bytes:
        return np.packbits(bits.astype(np.uint8)).tobytes()

    @staticmethod
    def _bytes_to_bits(data: bytes) -> np.ndarray:
        return np.unpackbits(np.frombuffer(data, dtype=np.uint8))

    # -- byte-granularity API -----------------------------------------------------

    def read_bytes(self, address: int, length: int) -> bytes:
        """Load ``length`` bytes starting at ``address``."""
        if length < 0:
            raise AddressError("length must be non-negative")
        chunks: List[bytes] = []
        cursor = address
        remaining = length
        while remaining > 0:
            location = self._mapping.locate(cursor)
            row_bits = self._fetch_row(location.bank, location.row)
            row_bytes = self._bits_to_bytes(row_bits)
            take = min(
                remaining, self._mapping.row_bytes - location.byte_in_row
            )
            chunks.append(
                row_bytes[location.byte_in_row : location.byte_in_row + take]
            )
            cursor += take
            remaining -= take
        return b"".join(chunks)

    def write_bytes(self, address: int, data: bytes) -> None:
        """Store ``data`` starting at ``address`` (read-modify-write)."""
        cursor = address
        remaining = memoryview(data)
        while len(remaining) > 0:
            location = self._mapping.locate(cursor)
            take = min(
                len(remaining), self._mapping.row_bytes - location.byte_in_row
            )
            row_bits = self._fetch_row(location.bank, location.row)
            row_bytes = bytearray(self._bits_to_bytes(row_bits))
            row_bytes[
                location.byte_in_row : location.byte_in_row + take
            ] = remaining[:take]
            self._store_row(
                location.bank, location.row, self._bytes_to_bits(bytes(row_bytes))
            )
            cursor += take
            remaining = remaining[take:]

    # -- PUD fast paths -------------------------------------------------------------

    def _buffered_copy_estimate_ns(self, rows: int) -> float:
        per_row = 2 * (
            self._timings.t_rcd + self._timings.t_ras + self._timings.t_rp
        )
        return rows * per_row

    def copy_row(self, src_address: int, dst_address: int) -> CopyOutcome:
        """Copy one full row; RowClone when the mapping allows it.

        Addresses must be row-aligned.  When the rows share a
        subarray, the copy is one consecutive-activation APA; when
        they do not, the controller transparently falls back to a
        read + write through the host buffer (PiDRAM's slow path).
        """
        src = self._mapping.locate(src_address)
        dst = self._mapping.locate(dst_address)
        if src.byte_in_row or dst.byte_in_row:
            raise AddressError("row copies require row-aligned addresses")
        fallback = self._buffered_copy_estimate_ns(1)
        if (
            self._mapping.same_subarray(src_address, dst_address)
            and self._module.profile.supports_multi_row_activation
        ):
            builder = ProgramBuilder()
            builder.act(src.bank, src.row)
            builder.wait(self._timings.t_ras)
            builder.pre(src.bank)
            builder.wait(ROWCLONE_T2_NS)
            builder.act(src.bank, dst.row)
            builder.wait(self._timings.t_ras)
            builder.pre(src.bank)
            builder.wait(self._timings.t_rp)
            builder.nop()
            result = self._bench.run(builder.build())
            self.stats.rowclones += 1
            self.stats.bus_time_ns += result.duration_ns
            return CopyOutcome(
                used_rowclone=True,
                rows_written=1,
                bus_time_ns=result.duration_ns,
                fallback_estimate_ns=fallback,
            )
        bits = self._fetch_row(src.bank, src.row)
        self._store_row(dst.bank, dst.row, bits)
        self.stats.buffered_copies += 1
        return CopyOutcome(
            used_rowclone=False,
            rows_written=1,
            bus_time_ns=fallback,
            fallback_estimate_ns=fallback,
        )

    def broadcast_row(self, src_address: int, partner_row: int) -> CopyOutcome:
        """Multi-RowCopy the source row onto its activation group.

        ``partner_row`` is the second ACT's bank-level row address;
        the opened group is the decoder product of the two addresses
        (2..32 rows).  Returns the copy outcome with the group size.
        """
        src = self._mapping.locate(src_address)
        if src.byte_in_row:
            raise AddressError("broadcast requires a row-aligned source")
        profile = self._module.profile
        if not profile.supports_multi_row_activation:
            raise ExperimentError(
                f"manufacturer {profile.manufacturer!r} cannot multi-activate"
            )
        subarray_rows = profile.subarray_rows
        if src.row // subarray_rows != partner_row // subarray_rows:
            raise AddressError("broadcast partner must share the subarray")
        group: RowGroup = group_from_pair(
            src.row // subarray_rows,
            src.row % subarray_rows,
            partner_row % subarray_rows,
            subarray_rows,
        )
        builder = ProgramBuilder()
        builder.act(src.bank, src.row)
        builder.wait(self._timings.t_ras)
        builder.pre(src.bank)
        builder.wait(MULTI_COPY_T2_NS)
        builder.act(src.bank, partner_row)
        builder.wait(self._timings.t_ras)
        builder.pre(src.bank)
        builder.wait(self._timings.t_rp)
        builder.nop()
        result = self._bench.run(builder.build())
        self.stats.multi_copies += 1
        self.stats.bus_time_ns += result.duration_ns
        rows_written = group.size - 1
        return CopyOutcome(
            used_rowclone=True,
            rows_written=rows_written,
            bus_time_ns=result.duration_ns,
            fallback_estimate_ns=self._buffered_copy_estimate_ns(rows_written),
        )

    def memset_rows(
        self, bank: int, rows: Sequence[int], value_byte: int
    ) -> int:
        """Initialize whole rows to a repeated byte via seed + clones.

        Writes the pattern once, then RowClones it into every other
        row (the section 8.2 RowClone-based initialization recipe).
        Returns the number of in-DRAM copies performed.
        """
        if not rows:
            raise AddressError("memset needs at least one row")
        if not 0 <= value_byte <= 0xFF:
            raise AddressError(f"byte out of range: {value_byte}")
        columns = self._module.config.columns_per_row
        pattern = np.unpackbits(
            np.full(columns // 8, value_byte, dtype=np.uint8)
        )
        seed_row = rows[0]
        self._store_row(bank, seed_row, pattern)
        copies = 0
        subarray_rows = self._module.profile.subarray_rows
        for row in rows[1:]:
            src_addr = self._mapping.row_aligned_span(bank, seed_row)
            dst_addr = self._mapping.row_aligned_span(bank, row)
            outcome = self.copy_row(src_addr, dst_addr)
            copies += 1
            if not outcome.used_rowclone and (
                row // subarray_rows == seed_row // subarray_rows
            ):  # pragma: no cover - defensive
                raise ExperimentError("same-subarray clone unexpectedly fell back")
        return copies
