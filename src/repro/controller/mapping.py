"""Physical address mapping.

Maps a flat physical byte address onto (bank, row, byte-in-row) for
the simulated module.  The default scheme is row-interleaved across
banks -- consecutive rows of the address space rotate through the
banks, the standard trick for bank-level parallelism -- with the
row's bytes contiguous, which keeps RowClone-eligible buffers (same
bank, same subarray) easy to construct via :meth:`row_aligned_span`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.vendor import VendorProfile
from ..errors import AddressError, ConfigurationError


@dataclass(frozen=True)
class PhysicalLocation:
    """Decoded physical location of one byte."""

    bank: int
    row: int
    byte_in_row: int


class AddressMapping:
    """Flat byte address <-> (bank, row, offset)."""

    def __init__(self, profile: VendorProfile, columns_per_row: int):
        if columns_per_row % 8 != 0:
            raise ConfigurationError(
                "columns_per_row must be a whole number of bytes"
            )
        self._profile = profile
        self._row_bytes = columns_per_row // 8
        self._banks = profile.banks
        self._rows_per_bank = profile.rows_per_bank

    @property
    def row_bytes(self) -> int:
        """Bytes per DRAM row at the simulated width."""
        return self._row_bytes

    @property
    def capacity_bytes(self) -> int:
        """Total mapped capacity."""
        return self._row_bytes * self._banks * self._rows_per_bank

    def locate(self, address: int) -> PhysicalLocation:
        """Decode a byte address."""
        if not 0 <= address < self.capacity_bytes:
            raise AddressError(
                f"address {address:#x} outside {self.capacity_bytes:#x}-byte "
                "capacity"
            )
        row_index = address // self._row_bytes
        byte_in_row = address % self._row_bytes
        bank = row_index % self._banks
        row = row_index // self._banks
        return PhysicalLocation(bank=bank, row=row, byte_in_row=byte_in_row)

    def address_of(self, location: PhysicalLocation) -> int:
        """Inverse of :meth:`locate`."""
        if not 0 <= location.bank < self._banks:
            raise AddressError(f"bank {location.bank} out of range")
        if not 0 <= location.row < self._rows_per_bank:
            raise AddressError(f"row {location.row} out of range")
        if not 0 <= location.byte_in_row < self._row_bytes:
            raise AddressError(f"offset {location.byte_in_row} out of range")
        row_index = location.row * self._banks + location.bank
        return row_index * self._row_bytes + location.byte_in_row

    def row_aligned_span(self, bank: int, row: int) -> int:
        """The byte address where (bank, row) begins."""
        return self.address_of(PhysicalLocation(bank, row, 0))

    def same_subarray(self, address_a: int, address_b: int) -> bool:
        """Whether two addresses' rows share bitlines (RowClone-able)."""
        a = self.locate(address_a)
        b = self.locate(address_b)
        if a.bank != b.bank:
            return False
        subarray_rows = self._profile.subarray_rows
        return a.row // subarray_rows == b.row // subarray_rows
