"""End-to-end memory-controller integration (PiDRAM direction).

The paper's related work highlights PiDRAM, a framework that exposes
PUD operations (RowClone and friends) to real programs through the
memory controller.  This package provides that integration layer for
the simulated stack: byte-granularity loads and stores compiled to
JEDEC-legal command sequences, plus PUD fast paths (in-DRAM copy,
broadcast, and bulk initialization) with automatic fallback when the
operands do not share bitlines.
"""

from .mapping import AddressMapping, PhysicalLocation
from .mc import CopyOutcome, MemoryController, MemoryControllerStats

__all__ = [
    "AddressMapping",
    "PhysicalLocation",
    "CopyOutcome",
    "MemoryController",
    "MemoryControllerStats",
]
