"""Per-module fleet health accounting.

:class:`HealthTracker` is the campaign's view of which benches can be
trusted.  Executor and probe outcomes feed it (successes, transient
errors, persistent errors, retry exhaustion, checksum mismatches);
one seeded :class:`~repro.health.breaker.CircuitBreaker` per module
turns those observations into an admit/quarantine decision.  A
quarantined module is excluded from the measurement scope and the
campaign degrades gracefully to the healthy subset, annotating every
stored result with what was excluded (instead of silently shrinking
the fleet).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional

from .breaker import BreakerPolicy, BreakerState, CircuitBreaker


@dataclass
class ModuleHealth:
    """Raw observation counters for one module's bench."""

    serial: str
    successes: int = 0
    transient_errors: int = 0
    persistent_errors: int = 0
    retry_exhaustions: int = 0


class HealthTracker:
    """Fleet supervisor: breakers + counters for every module."""

    def __init__(self, policy: Optional[BreakerPolicy] = None):
        self._policy = policy if policy is not None else BreakerPolicy()
        self._records: Dict[str, ModuleHealth] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.checksum_mismatches = 0
        """Stored-artifact integrity failures observed (fleet-wide)."""
        self.retry_exhaustions = 0
        """Experiments that burned their whole retry budget (fleet-wide)."""

    @property
    def policy(self) -> BreakerPolicy:
        """The breaker policy applied to every module."""
        return self._policy

    def register(self, serial: str) -> None:
        """Start tracking a module (idempotent)."""
        if serial not in self._records:
            self._records[serial] = ModuleHealth(serial=serial)
            self._breakers[serial] = CircuitBreaker(serial, self._policy)

    def breaker(self, serial: str) -> CircuitBreaker:
        """The breaker guarding one module."""
        self.register(serial)
        return self._breakers[serial]

    def health(self, serial: str) -> ModuleHealth:
        """The observation counters for one module."""
        self.register(serial)
        return self._records[serial]

    def admits(self, serial: str) -> bool:
        """Whether the module may be used now (advances open cooldowns)."""
        return self.breaker(serial).allows()

    # -- observation feed --------------------------------------------------

    def record_success(self, serial: str) -> None:
        """A bench operation/probe on this module succeeded."""
        self.health(serial).successes += 1
        self._breakers[serial].record_success()

    def record_transient(self, serial: str) -> None:
        """A bench operation/probe failed with a *transient* fault."""
        self.health(serial).transient_errors += 1
        self._breakers[serial].record_failure()

    def record_persistent(self, serial: str) -> None:
        """A bench operation/probe failed persistently: trip at once."""
        self.health(serial).persistent_errors += 1
        self._breakers[serial].failures += 1
        self._breakers[serial].trip()

    def record_retry_exhaustion(self, serial: Optional[str] = None) -> None:
        """An experiment exhausted its retries (module-attributed or not)."""
        self.retry_exhaustions += 1
        if serial is not None:
            self.health(serial).retry_exhaustions += 1
            self._breakers[serial].record_failure()

    def record_checksum_mismatch(self) -> None:
        """A stored artifact failed its integrity check on reload."""
        self.checksum_mismatches += 1

    # -- fleet views -------------------------------------------------------

    @property
    def serials(self) -> List[str]:
        """Every module this tracker has seen, in registration order."""
        return list(self._records)

    def quarantined_serials(self) -> List[str]:
        """Modules currently excluded (breaker open or latched)."""
        return [
            serial
            for serial, breaker in self._breakers.items()
            if breaker.latched or breaker.state is BreakerState.OPEN
        ]

    def healthy_serials(self, serials: Iterable[str]) -> List[str]:
        """Filter a serial list down to currently-admitted modules."""
        return [serial for serial in serials if self.admits(serial)]

    @property
    def breaker_trips(self) -> int:
        """Total breaker trips across the fleet."""
        return sum(breaker.trips for breaker in self._breakers.values())

    def coverage(self, total: Optional[int] = None) -> float:
        """Fraction of the fleet not currently quarantined."""
        count = total if total is not None else len(self._records)
        if count <= 0:
            return 1.0
        return max(0.0, 1.0 - len(self.quarantined_serials()) / count)

    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON summary (what campaign results persist)."""
        return {
            "modules": {
                serial: {
                    **{k: v for k, v in asdict(record).items() if k != "serial"},
                    "breaker": self._breakers[serial].as_dict(),
                }
                for serial, record in self._records.items()
            },
            "quarantined": self.quarantined_serials(),
            "breaker_trips": self.breaker_trips,
            "coverage": self.coverage(),
            "retry_exhaustions": self.retry_exhaustions,
            "checksum_mismatches": self.checksum_mismatches,
        }
