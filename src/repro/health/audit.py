"""Result-integrity audits over a stored campaign.

Checksums catch bytes that rotted on disk; they cannot catch a result
that was *written* wrong (a buggy executor, a mis-restored rig).  The
audit closes that gap with two passes over a
:class:`~repro.characterization.store.ResultStore`:

1. **Integrity** -- every stored artifact's content checksum is
   re-verified (``store.verify``).
2. **Recompute** -- a deterministic sample of completed figures is
   recomputed from scratch with a
   :class:`~repro.engine.SerialExecutor` (the reference executor) on
   the same module fleet the stored run used -- rebuilt from the
   campaign manifest and restricted to the healthy subset recorded in
   each artifact's data-quality annotation -- and compared
   bit-for-bit against the stored payload.  A campaign whose
   fingerprint carries ``adaptive`` knobs is recomputed through the
   same :class:`~repro.engine.AdaptivePlanner` (rebuilt from those
   knobs) instead of the fixed-budget figure function: the planner's
   round schedule, bootstrap, and allocation are all seeded pure
   functions of the observations, so its serial recompute lands on
   identical bits too.

Everything the audit needs to rebuild the measurement context is in
the store: the manifest carries the config fingerprint and the full
serial list; each artifact carries ``quality["modules_active"]``.
Because all measurement noise is context-keyed (never history-keyed),
the recompute lands on identical bits unless the stored data is wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .. import rng
from ..errors import ExperimentError


@dataclass(frozen=True)
class AuditFinding:
    """One artifact's audit outcome."""

    name: str
    kind: str
    """``"integrity"`` (checksum pass) or ``"recompute"`` (cross-check)."""
    status: str
    """Integrity: ``ok`` / ``legacy`` / ``mismatch`` / ``corrupt`` /
    ``missing``, plus the store-debris findings ``orphaned-tmp`` (a
    stale temp file from a writer that died mid-write) and
    ``orphaned-sidecar`` (a ``.columns.npz`` no document references).
    Recompute: ``match`` / ``mismatch`` / ``skipped``."""
    detail: str = ""

    @property
    def ok(self) -> bool:
        """Whether this finding is benign."""
        return self.status in ("ok", "legacy", "match", "skipped")


@dataclass
class AuditReport:
    """Outcome of one audit run over a stored campaign."""

    findings: List[AuditFinding] = field(default_factory=list)
    artifacts_checked: int = 0
    figures_recomputed: int = 0

    @property
    def mismatches(self) -> int:
        """Findings that indicate wrong or damaged data."""
        return sum(1 for finding in self.findings if not finding.ok)

    @property
    def passed(self) -> bool:
        """Whether every artifact survived both passes."""
        return self.mismatches == 0

    def summary_lines(self) -> List[str]:
        """One line per non-trivial finding, plus totals."""
        lines = [
            f"  artifacts checked: {self.artifacts_checked}",
            f"  figures recomputed: {self.figures_recomputed}",
        ]
        for finding in self.findings:
            if finding.kind == "integrity" and finding.status == "ok":
                continue
            marker = "ok" if finding.ok else "FAIL"
            detail = f" ({finding.detail})" if finding.detail else ""
            lines.append(
                f"  [{marker}] {finding.kind} {finding.name}: "
                f"{finding.status}{detail}"
            )
        lines.append(f"  verdict: {'PASS' if self.passed else 'FAIL'}")
        return lines

    def as_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (what ``simra-dram audit`` persists)."""
        return {
            "artifacts_checked": self.artifacts_checked,
            "figures_recomputed": self.figures_recomputed,
            "mismatches": self.mismatches,
            "passed": self.passed,
            "findings": [
                {
                    "name": finding.name,
                    "kind": finding.kind,
                    "status": finding.status,
                    "detail": finding.detail,
                }
                for finding in self.findings
            ],
        }


def scope_from_manifest(manifest) -> "CharacterizationScope":  # noqa: F821
    """Rebuild the stored campaign's measurement scope.

    The manifest's fingerprint carries the config identity and the
    scope knobs; its serial list names the module fleet.  Benches are
    rebuilt by looking each serial's spec up in the tested-module
    catalog -- which works because the simulated fleet is itself a
    pure function of (spec, instance, config).
    """
    # Imported lazily: this module sits below the campaign layer in
    # the package graph, but the scope types live beside it.
    from ..bender.testbench import TestBench
    from ..characterization.experiment import CharacterizationScope
    from ..config import SimulationConfig
    from ..dram.vendor import TESTED_MODULES

    fingerprint = manifest.fingerprint or {}
    required = ("seed", "columns_per_row", "trials_per_test")
    if not all(key in fingerprint for key in required):
        raise ExperimentError(
            "campaign manifest has no usable config fingerprint; "
            "cannot rebuild the audit scope"
        )
    if not manifest.serials:
        raise ExperimentError(
            "campaign manifest records no module serials (pre-health-layer "
            "campaign?); pass an explicit scope to audit_store"
        )
    config = SimulationConfig(
        seed=int(fingerprint["seed"]),
        columns_per_row=int(fingerprint["columns_per_row"]),
        trials_per_test=int(fingerprint["trials_per_test"]),
        functional_only=bool(fingerprint.get("functional_only", False)),
    )
    specs_by_identifier = {
        spec.module_identifier: spec for spec in TESTED_MODULES
    }
    benches = []
    for serial in manifest.serials:
        identifier, sep, instance = serial.rpartition("#")
        if not sep or identifier not in specs_by_identifier:
            raise ExperimentError(
                f"manifest serial {serial!r} does not name a catalog module"
            )
        benches.append(
            TestBench.for_spec(
                specs_by_identifier[identifier], int(instance), config=config
            )
        )
    return CharacterizationScope(
        benches=benches,
        banks=tuple(fingerprint.get("banks", (0,))),
        subarrays=tuple(fingerprint.get("subarrays", (0,))),
        groups_per_size=int(fingerprint.get("groups_per_size", 4)),
        trials=int(fingerprint.get("trials", 8)),
    )


def _restricted(scope, serials: Optional[List[str]]):
    """The scope narrowed to the serials a stored figure actually used."""
    import dataclasses

    if not serials:
        return scope
    wanted = set(serials)
    benches = [b for b in scope.benches if b.module.serial in wanted]
    if not benches:
        return None
    return dataclasses.replace(scope, benches=benches)


def audit_store(
    store,
    sample: int = 2,
    seed: int = 0,
    scope=None,
    cache=None,
) -> AuditReport:
    """Audit one stored campaign: checksums for all, recompute a sample.

    ``sample`` figures (deterministically chosen by ``seed``) are
    recomputed with the reference serial executor and compared against
    the stored bits.  ``scope`` overrides the manifest-rebuilt scope
    (useful when auditing inside a live session that already holds the
    benches).  ``cache`` (a :class:`~repro.engine.cache.TrialCache`)
    lets repeated audits skip bit-identical recomputation; pass one
    built with ``require_origin="serial"`` so the audit only consumes
    entries the reference executor itself produced -- never the output
    of an executor it is supposed to cross-check.
    """
    # The campaign layer imports repro.health; import it lazily here so
    # the health package never imports it at module load.
    from ..characterization.campaign import EXPERIMENT_PROGRAMS, EXPERIMENTS
    from ..characterization.reader import canonical_data
    from ..engine import AdaptiveConfig, SerialExecutor

    if sample < 0:
        raise ExperimentError("audit sample size must be non-negative")

    report = AuditReport()
    # Audits are read-only: everything below goes through the store's
    # lock-free read path (a bare ResultReader is accepted directly).
    reader = getattr(store, "reader", store)

    # Pass 1: integrity of every artifact, plus crashed-writer debris
    # (stale temp files, sidecars no document references).
    scan = reader.verify()
    for name, status in scan["artifacts"].items():
        report.artifacts_checked += 1
        report.findings.append(
            AuditFinding(name=name, kind="integrity", status=status)
        )
    for filename in scan["orphaned_tmp"]:
        report.findings.append(
            AuditFinding(
                name=filename,
                kind="integrity",
                status="orphaned-tmp",
                detail="stale temp file from an interrupted write; "
                "run simra-dram repair",
            )
        )
    for filename in scan["unreferenced_sidecars"]:
        report.findings.append(
            AuditFinding(
                name=filename,
                kind="integrity",
                status="orphaned-sidecar",
                detail="column sidecar no stored document references; "
                "run simra-dram repair",
            )
        )

    # Pass 2: recompute a deterministic sample of completed figures.
    manifest = reader.load_manifest()
    candidates = []
    if manifest is not None:
        candidates = [
            name
            for name in manifest.completed
            if name in EXPERIMENTS
            and reader.has(name)
            and reader.verify(name) == "ok"
        ]
    if sample and candidates:
        order = rng.generator("audit", seed).permutation(len(candidates))
        chosen = [candidates[int(i)] for i in order[:sample]]
        audit_scope = scope
        scope_error = None
        if audit_scope is None:
            try:
                audit_scope = scope_from_manifest(manifest)
            except ExperimentError as exc:
                scope_error = str(exc)
        adaptive = None
        adaptive_payload = (manifest.fingerprint or {}).get("adaptive")
        if adaptive_payload:
            try:
                adaptive = AdaptiveConfig.from_dict(adaptive_payload)
            except (ExperimentError, KeyError, TypeError, ValueError) as exc:
                audit_scope = None
                scope_error = (
                    "manifest records unusable adaptive knobs: "
                    f"{adaptive_payload!r} ({exc})"
                )
        for name in sorted(chosen):
            if audit_scope is None:
                report.findings.append(
                    AuditFinding(
                        name=name,
                        kind="recompute",
                        status="skipped",
                        detail=scope_error or "no scope available",
                    )
                )
                continue
            quality = (reader.metadata(name) or {}).get("quality") or {}
            figure_scope = _restricted(
                audit_scope, quality.get("modules_active")
            )
            if figure_scope is None:
                report.findings.append(
                    AuditFinding(
                        name=name,
                        kind="recompute",
                        status="skipped",
                        detail="no bench in scope matches the stored "
                        "modules_active annotation",
                    )
                )
                continue
            if adaptive is not None and name in EXPERIMENT_PROGRAMS:
                # Same planner, same knobs, reference executor: the
                # round schedule replays deterministically, so the
                # figure value must match the stored bits exactly.
                planner = adaptive.planner(SerialExecutor(cache=cache))
                fresh = canonical_data(
                    planner.run_program(
                        EXPERIMENT_PROGRAMS[name](figure_scope)
                    ).value
                )
            else:
                fresh = canonical_data(
                    EXPERIMENTS[name](
                        figure_scope, executor=SerialExecutor(cache=cache)
                    )
                )
            stored = reader.load(name)
            report.figures_recomputed += 1
            if fresh == stored:
                report.findings.append(
                    AuditFinding(name=name, kind="recompute", status="match")
                )
            else:
                report.findings.append(
                    AuditFinding(
                        name=name,
                        kind="recompute",
                        status="mismatch",
                        detail="serial recompute disagrees with stored data",
                    )
                )
    return report
