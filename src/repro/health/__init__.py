"""Fleet health supervision for long characterization campaigns.

A real 18-module rig degrades piecewise: one bench's FPGA link dies,
one worker process crashes, one stored file rots.  The paper's
campaigns survive by quarantining what is broken and continuing on
what is not -- this package is that supervision layer:

- :class:`CircuitBreaker` / :class:`BreakerPolicy` -- seeded,
  deterministic closed / open / half-open state machine per module
  (:mod:`repro.health.breaker`).
- :class:`HealthTracker` -- per-module observation counters feeding
  the breakers; quarantine and coverage views the campaign consumes
  (:mod:`repro.health.tracker`).
- :func:`audit_store` / :class:`AuditReport` -- checksum verification
  plus serial-recompute cross-checks over a stored campaign
  (:mod:`repro.health.audit`).

The campaign layer threads this through execution: probes feed the
tracker, tripped modules leave the scope, and every stored result is
annotated with the fleet it was actually measured on.
"""

from .audit import AuditFinding, AuditReport, audit_store, scope_from_manifest
from .breaker import BreakerPolicy, BreakerState, CircuitBreaker
from .tracker import HealthTracker, ModuleHealth

__all__ = [
    "AuditFinding",
    "AuditReport",
    "audit_store",
    "scope_from_manifest",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "HealthTracker",
    "ModuleHealth",
]
