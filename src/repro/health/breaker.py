"""Seeded, deterministic circuit breakers for fleet components.

A :class:`CircuitBreaker` guards one module/bench: consecutive
failures trip it ``CLOSED -> OPEN``, a cooldown measured in *probe
opportunities* (not wall clock, so whole campaigns stay deterministic)
moves it ``OPEN -> HALF_OPEN``, and a successful probe trial closes it
again.  A breaker that keeps re-tripping can latch permanently via
``max_trips``, which is how a persistently dead bench ends up
quarantined for the rest of a campaign instead of burning the retry
budget on every figure.

The optional cooldown jitter is drawn from the repository's stable
hash (:func:`repro.rng.generator`), keyed by the breaker's name and
trip count, so two runs of the same campaign trip, cool down, and
probe on exactly the same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from .. import rng
from ..errors import ConfigurationError


class BreakerState(Enum):
    """Where in the closed -> open -> half-open cycle a breaker sits."""

    CLOSED = "closed"
    """Healthy: operations flow through, failures are counted."""
    OPEN = "open"
    """Tripped: the guarded module is quarantined until the cooldown
    (counted in :meth:`CircuitBreaker.allows` consultations) expires."""
    HALF_OPEN = "half-open"
    """Cooling down finished: probe trials are admitted; a success
    closes the breaker, a failure re-trips it immediately."""


@dataclass(frozen=True)
class BreakerPolicy:
    """How quickly a breaker trips, cools down, and closes again."""

    failure_threshold: int = 3
    """Consecutive failures (while closed) that trip the breaker."""
    cooldown_probes: int = 2
    """Probe opportunities skipped while open before going half-open."""
    cooldown_jitter: int = 0
    """Up to this many *extra* skipped opportunities, drawn seeded per
    trip so repeated trips don't probe in lockstep across a fleet."""
    half_open_successes: int = 1
    """Successful probe trials needed to close from half-open."""
    max_trips: Optional[int] = None
    """Trips after which the breaker latches open permanently
    (``None`` = keep probing forever)."""
    seed: int = 7
    """Seed for the cooldown-jitter draws."""

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be at least 1")
        if self.cooldown_probes < 0 or self.cooldown_jitter < 0:
            raise ConfigurationError("cooldown knobs must be non-negative")
        if self.half_open_successes < 1:
            raise ConfigurationError("half_open_successes must be at least 1")
        if self.max_trips is not None and self.max_trips < 1:
            raise ConfigurationError("max_trips must be at least 1 (or None)")


class CircuitBreaker:
    """One guarded component's closed/open/half-open state machine."""

    def __init__(self, name: str, policy: Optional[BreakerPolicy] = None):
        self._name = name
        self._policy = policy if policy is not None else BreakerPolicy()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._half_open_successes = 0
        self._cooldown_remaining = 0
        self._trips = 0
        self._latched = False
        self.failures = 0
        self.successes = 0

    @property
    def name(self) -> str:
        """Which component this breaker guards."""
        return self._name

    @property
    def policy(self) -> BreakerPolicy:
        """The trip/cooldown policy in force."""
        return self._policy

    @property
    def state(self) -> BreakerState:
        """The current breaker state."""
        return self._state

    @property
    def trips(self) -> int:
        """How many times this breaker has tripped open."""
        return self._trips

    @property
    def latched(self) -> bool:
        """Whether the breaker is permanently open (``max_trips`` hit)."""
        return self._latched

    def allows(self) -> bool:
        """Whether the guarded component may be used right now.

        Each consultation while open counts toward the cooldown, so the
        half-open probe schedule is a deterministic function of how
        often the fleet supervisor asks -- no wall clocks involved.
        """
        if self._latched:
            return False
        if self._state is BreakerState.OPEN:
            if self._cooldown_remaining > 0:
                self._cooldown_remaining -= 1
                return False
            self._state = BreakerState.HALF_OPEN
            self._half_open_successes = 0
        return True

    def record_success(self) -> None:
        """Feed one successful operation/probe into the state machine."""
        self.successes += 1
        if self._state is BreakerState.CLOSED:
            self._consecutive_failures = 0
        elif self._state is BreakerState.HALF_OPEN:
            self._half_open_successes += 1
            if self._half_open_successes >= self._policy.half_open_successes:
                self._state = BreakerState.CLOSED
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        """Feed one failed operation/probe into the state machine."""
        self.failures += 1
        if self._state is BreakerState.HALF_OPEN:
            self.trip()
        elif self._state is BreakerState.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self._policy.failure_threshold:
                self.trip()

    def trip(self) -> None:
        """Force the breaker open (e.g. on a *persistent* bench error)."""
        if self._latched:
            return
        self._trips += 1
        self._state = BreakerState.OPEN
        self._consecutive_failures = 0
        self._cooldown_remaining = self._policy.cooldown_probes + self._jitter()
        if (
            self._policy.max_trips is not None
            and self._trips >= self._policy.max_trips
        ):
            self._latched = True

    def _jitter(self) -> int:
        if self._policy.cooldown_jitter <= 0:
            return 0
        draw = rng.generator(
            "breaker", self._policy.seed, self._name, self._trips
        )
        return int(draw.integers(0, self._policy.cooldown_jitter + 1))

    def as_dict(self) -> dict:
        """Plain-JSON snapshot for health annotations."""
        return {
            "state": self._state.value,
            "trips": self._trips,
            "latched": self._latched,
            "failures": self.failures,
            "successes": self.successes,
        }
