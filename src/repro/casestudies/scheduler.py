"""Trace-to-ISA compilation: turn a recorded in-DRAM computation into
a replayable Bender program.

The full software stack of a real deployment: expressions compile to
gate netlists (:mod:`compiler`), gates execute as engine operations
(:mod:`bitserial`), and this module lowers the recorded operation
trace into one :class:`~repro.bender.isa.IsaProgram` -- the artifact
you would actually upload to the FPGA to run the computation without
host involvement.  Host ``load`` operations stay host-side (they
carry data) and are returned separately as the program's input
staging list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..bender.isa import IsaProgram, IsaProgramBuilder
from ..errors import ExperimentError
from .bitserial import BitSerialEngine, TraceOp

TICKS_T_RAS = 24  # 36 ns
TICKS_ROWCLONE_T2 = 4  # 6 ns
TICKS_MAJ_T1 = 1  # 1.5 ns
TICKS_MAJ_T2 = 2  # 3 ns
TICKS_FRAC_T1 = 2  # 3 ns (inside the Frac window)
TICKS_RECOVERY = 40  # quiesce between operations
TICKS_T_RP = 9  # 13.5 ns


@dataclass(frozen=True)
class CompiledComputation:
    """An exported computation: staging data + the command kernel."""

    program: IsaProgram
    staged_rows: Tuple[Tuple[int, Tuple[int, ...]], ...]
    """(local row, bits) pairs the host must write before launch."""
    operation_count: int

    def staged_dict(self) -> Dict[int, np.ndarray]:
        """Staging data as arrays keyed by local row."""
        return {
            row: np.array(bits, dtype=np.uint8)
            for row, bits in self.staged_rows
        }


def export_trace(
    trace: List[TraceOp], bank: int, base_row: int
) -> CompiledComputation:
    """Lower an engine trace to an ISA program.

    ``base_row`` is the bank-level row of the engine subarray's row 0
    (``subarray_index * subarray_rows``).
    """
    if not trace:
        raise ExperimentError("empty trace: enable record_trace on the engine")
    builder = IsaProgramBuilder()
    builder.li(0, bank)
    staged: List[Tuple[int, Tuple[int, ...]]] = []
    operations = 0
    for op in trace:
        if op.kind == "load":
            if op.data is None:
                raise ExperimentError("load trace entry lost its data")
            staged.append((op.rows[0], op.data))
            continue
        operations += 1
        if op.kind == "rowclone":
            src, dst = op.rows
            builder.li(1, base_row + src)
            builder.li(2, base_row + dst)
            builder.act(0, 1)
            builder.sleep(TICKS_T_RAS)
            builder.pre(0)
            builder.sleep(TICKS_ROWCLONE_T2)
            builder.act(0, 2)
            builder.sleep(TICKS_T_RAS)
            builder.pre(0)
            builder.sleep(TICKS_RECOVERY)
        elif op.kind == "frac":
            for row in op.rows:
                builder.li(1, base_row + row)
                builder.act(0, 1)
                builder.sleep(TICKS_FRAC_T1)
                builder.pre(0)
                builder.sleep(TICKS_RECOVERY)
        elif op.kind == "maj":
            rf, rs = op.rows
            builder.li(1, base_row + rf)
            builder.li(2, base_row + rs)
            builder.act(0, 1)
            builder.sleep(TICKS_MAJ_T1)
            builder.pre(0)
            builder.sleep(TICKS_MAJ_T2)
            builder.act(0, 2)
            builder.sleep(TICKS_T_RAS)
            builder.pre(0)
            builder.sleep(TICKS_RECOVERY)
        else:
            raise ExperimentError(f"unknown trace op {op.kind!r}")
    builder.end()
    return CompiledComputation(
        program=builder.build(),
        staged_rows=tuple(staged),
        operation_count=operations,
    )


def export_engine(engine: BitSerialEngine) -> CompiledComputation:
    """Export everything the engine recorded since construction."""
    return export_trace(
        engine.trace,
        bank=engine._bank_index,  # noqa: SLF001 - deliberate introspection
        base_row=engine._base,  # noqa: SLF001
    )


def replay(
    compiled: CompiledComputation,
    bench,
    bank: int = 0,
    base_row: int = 0,
) -> None:
    """Stage the inputs and replay the kernel on a (fresh) bench."""
    from ..bender.isa import ProgramCore

    device_bank = bench.module.bank(bank)
    for row, bits in compiled.staged_rows:
        device_bank.write_row(
            base_row + row, np.array(bits, dtype=np.uint8)
        )
    core = ProgramCore()
    bench.run(core.run(compiled.program))
