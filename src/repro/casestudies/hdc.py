"""Hyperdimensional computing on in-DRAM majority operations.

HDC (paper refs [152-154]) represents symbols as very long random
binary *hypervectors* and builds class prototypes by **bundling** --
the component-wise majority of the training vectors.  Bundling is
literally a MAJX operation, which makes the paper's MAJ5/7/9 a
1-operation bundler for 5/7/9 training samples at a time: each DRAM
column holds one hypervector component, and one APA bundles all
columns at once.

The pipeline here:

- :class:`ItemMemory`: deterministic random hypervectors per symbol;
- :class:`HdcClassifier`: trains class prototypes with in-DRAM MAJX
  bundling (executed through :class:`~repro.casestudies.bitserial.
  BitSerialEngine`), classifies by Hamming similarity;
- binding (XOR) for key-value composition runs through the dual-rail
  gate library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .. import rng
from ..errors import ExperimentError
from .bitserial import BitSerialEngine
from .gates import DualRailGates


class ItemMemory:
    """Deterministic random hypervectors for named symbols."""

    def __init__(self, dimensions: int, seed: int = 2024):
        if dimensions < 8:
            raise ExperimentError("hypervectors need at least 8 dimensions")
        self._dimensions = dimensions
        self._seed = seed
        self._vectors: Dict[str, np.ndarray] = {}

    @property
    def dimensions(self) -> int:
        """Components per hypervector."""
        return self._dimensions

    def vector(self, symbol: str) -> np.ndarray:
        """The (cached) hypervector of a symbol."""
        if symbol not in self._vectors:
            self._vectors[symbol] = rng.uniform_bits(
                self._dimensions, self._seed, "hdc-item", symbol
            )
        return self._vectors[symbol]


def hamming_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of agreeing components (1.0 = identical)."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape != b.shape:
        raise ExperimentError("hypervector shapes differ")
    return float(np.mean(a == b))


@dataclass(frozen=True)
class TrainingReport:
    """What the in-DRAM trainer did."""

    classes: int
    samples_bundled: int
    majx_operations: int
    bundle_width: int


class HdcClassifier:
    """Prototype-based HDC classifier with in-DRAM bundling.

    ``bundle_width`` selects the MAJX used per bundling step (3, 5, 7,
    or 9 -- capped by the module's vendor capability, footnote 11).
    Training folds samples into the prototype ``bundle_width`` at a
    time; an odd sample count per fold keeps the majority well
    defined, so the trainer re-bundles the running prototype with the
    next ``bundle_width - 1`` samples.
    """

    def __init__(self, engine: BitSerialEngine, bundle_width: int = 5):
        if bundle_width not in (3, 5, 7, 9):
            raise ExperimentError(
                f"bundle width must be 3/5/7/9: {bundle_width}"
            )
        profile = engine._bench.module.profile  # noqa: SLF001 - introspection
        if profile.max_reliable_majx < bundle_width:
            raise ExperimentError(
                f"manufacturer {profile.manufacturer!r} caps MAJX below "
                f"{bundle_width} (footnote 11)"
            )
        self._engine = engine
        self._width = bundle_width
        self._prototypes: Dict[str, np.ndarray] = {}
        self._majx_count = 0
        self._samples = 0

    @property
    def dimensions(self) -> int:
        """Hypervector dimensionality (one component per DRAM column)."""
        return self._engine.columns

    @property
    def prototypes(self) -> Dict[str, np.ndarray]:
        """Trained class prototypes (host-side copies)."""
        return dict(self._prototypes)

    def _bundle(self, vectors: Sequence[np.ndarray]) -> np.ndarray:
        """In-DRAM majority of an odd number of hypervectors."""
        if len(vectors) % 2 == 0:
            raise ExperimentError("bundling needs an odd number of vectors")
        allocator = self._engine.allocator
        rows = [allocator.alloc() for _ in range(len(vectors) + 1)]
        try:
            for row, vector in zip(rows, vectors):
                self._engine.load(row, np.asarray(vector, dtype=np.uint8))
            self._engine.maj(rows[:-1], rows[-1])
            self._majx_count += 1
            return self._engine.read(rows[-1])
        finally:
            for row in rows:
                allocator.free(row)

    def train(self, dataset: Dict[str, Sequence[np.ndarray]]) -> TrainingReport:
        """Bundle each class's samples into a prototype.

        The first fold bundles ``bundle_width`` raw samples; later
        folds bundle the running prototype with the next
        ``bundle_width - 1`` samples (prototype-weighted folding).
        Sample counts must allow whole folds.
        """
        if not dataset:
            raise ExperimentError("empty training set")
        for label, samples in dataset.items():
            samples = list(samples)
            if len(samples) < self._width:
                raise ExperimentError(
                    f"class {label!r} needs at least {self._width} samples"
                )
            if (len(samples) - self._width) % (self._width - 1) != 0:
                raise ExperimentError(
                    f"class {label!r}: sample count must be "
                    f"{self._width} + k*{self._width - 1}"
                )
            prototype = self._bundle(samples[: self._width])
            cursor = self._width
            while cursor < len(samples):
                fold = [prototype] + samples[cursor : cursor + self._width - 1]
                prototype = self._bundle(fold)
                cursor += self._width - 1
            self._prototypes[label] = prototype
            self._samples += len(samples)
        return TrainingReport(
            classes=len(self._prototypes),
            samples_bundled=self._samples,
            majx_operations=self._majx_count,
            bundle_width=self._width,
        )

    def classify(self, query: np.ndarray) -> str:
        """Nearest prototype by Hamming similarity."""
        if not self._prototypes:
            raise ExperimentError("classifier is untrained")
        return max(
            self._prototypes,
            key=lambda label: hamming_similarity(
                query, self._prototypes[label]
            ),
        )

    def similarities(self, query: np.ndarray) -> Dict[str, float]:
        """Similarity of a query to every prototype."""
        return {
            label: hamming_similarity(query, prototype)
            for label, prototype in self._prototypes.items()
        }


def bind(gates: DualRailGates, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """HDC binding (component-wise XOR), executed in-DRAM."""
    left = gates.load(np.asarray(a, dtype=np.uint8))
    right = gates.load(np.asarray(b, dtype=np.uint8))
    bound = gates.xor_(left, right)
    result = gates.read(bound)
    for signal in (left, right, bound):
        gates.release(signal)
    return result


def noisy_samples(
    prototype: np.ndarray, count: int, flip_fraction: float, *tokens
) -> List[np.ndarray]:
    """Training/query samples: the prototype with random bit flips."""
    if not 0.0 <= flip_fraction < 0.5:
        raise ExperimentError("flip fraction must be in [0, 0.5)")
    prototype = np.asarray(prototype, dtype=np.uint8)
    samples = []
    for index in range(count):
        flips = (
            rng.generator("hdc-noise", index, *tokens).random(prototype.size)
            < flip_fraction
        )
        samples.append((prototype ^ flips.astype(np.uint8)).astype(np.uint8))
    return samples
