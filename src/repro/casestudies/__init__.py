"""Case studies (paper section 8).

- :mod:`gates` / :mod:`bitserial` / :mod:`arith`: a *functional*
  majority-based bit-serial computation engine running on the
  simulated DRAM -- dual-rail logic built from MAJX operations, up to
  32-bit adders, subtractors, multipliers, and dividers.
- :mod:`perfmodel`: the analytic execution-time model behind Fig 16
  (seven microbenchmarks, MAJ5/7/9 vs the MAJ3 state of the art).
- :mod:`coldboot`: content-destruction-based cold-boot-attack
  prevention and the Fig 17 speedup comparison (RowClone- vs Frac-
  vs Multi-RowCopy-based destruction).
- :mod:`tmr`: majority-based error correction (triple/multi modular
  redundancy voting, the section 8.1 sketch).
"""

from .gates import DualRailGates, GateCounts
from .bitserial import BitSerialEngine, RowAllocator
from .arith import BitSerialALU
from .perfmodel import (
    MicrobenchmarkModel,
    MAJX_LATENCIES_NS,
    MICROBENCHMARKS,
    figure16_speedups,
)
from .coldboot import (
    ContentDestructionModel,
    DestructionPlan,
    figure17_speedups,
)
from .tmr import majority_vote_correct, tmr_fault_tolerance
from .compiler import (
    Expression,
    ExpressionCompiler,
    compile_and_run,
    const,
    evaluate_reference,
    var,
)
from .database import BitmapIndex, ColumnSpec, scan_cost_model
from .hdc import HdcClassifier, ItemMemory, hamming_similarity, noisy_samples
from .scheduler import CompiledComputation, export_engine, export_trace, replay
from .parallelism import (
    BankOperation,
    InterleavedSchedule,
    parallel_multi_row_copy,
    schedule_interleaved,
)

__all__ = [
    "DualRailGates",
    "GateCounts",
    "BitSerialEngine",
    "RowAllocator",
    "BitSerialALU",
    "MicrobenchmarkModel",
    "MAJX_LATENCIES_NS",
    "MICROBENCHMARKS",
    "figure16_speedups",
    "ContentDestructionModel",
    "DestructionPlan",
    "figure17_speedups",
    "majority_vote_correct",
    "tmr_fault_tolerance",
    "Expression",
    "ExpressionCompiler",
    "compile_and_run",
    "const",
    "evaluate_reference",
    "var",
    "BitmapIndex",
    "ColumnSpec",
    "scan_cost_model",
    "HdcClassifier",
    "ItemMemory",
    "hamming_similarity",
    "noisy_samples",
    "CompiledComputation",
    "export_engine",
    "export_trace",
    "replay",
    "BankOperation",
    "InterleavedSchedule",
    "parallel_multi_row_copy",
    "schedule_interleaved",
]
