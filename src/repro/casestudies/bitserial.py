"""Functional majority-based bit-serial computation engine.

Runs *in* the simulated DRAM: operands are rows, data moves with
RowClone / Multi-RowCopy, and every logic operation is a MAJX executed
through the same APA command sequences the characterization uses --
the execution recipe of paper section 8.1 ("we perform RowClone to
copy the MAJX inputs into X rows and replicate the input operands
into N rows using Multi-RowCopy operations").

Data layout is bit-serial/vertical as in Ambit and SIMDRAM: one row
holds bit *i* of every element, with elements across columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bender.program import apa_program
from ..bender.testbench import TestBench
from ..core.frac import initialize_neutral_rows
from ..core.rowclone import ROWCLONE_T1_NS, ROWCLONE_T2_NS
from ..core.rowgroups import RowGroup, sample_groups
from ..errors import ExperimentError

MAJ_T1_NS = 1.5
MAJ_T2_NS = 3.0


@dataclass(frozen=True)
class TraceOp:
    """One recorded engine operation (for ISA export and analysis).

    ``kind`` is one of ``load`` (host write), ``rowclone``, ``frac``,
    or ``maj``.  Row numbers are local to the engine's subarray.
    """

    kind: str
    rows: Tuple[int, ...]
    data: Optional[Tuple[int, ...]] = field(default=None, repr=False)


class RowAllocator:
    """Allocates named rows within one subarray."""

    def __init__(self, subarray_rows: int, reserved: Sequence[int] = ()):
        self._free = [r for r in range(subarray_rows) if r not in set(reserved)]
        self._free.reverse()  # allocate low rows first
        self._named: Dict[str, int] = {}

    def alloc(self, name: Optional[str] = None) -> int:
        """Allocate one row, optionally under a name."""
        if not self._free:
            raise ExperimentError("subarray out of allocatable rows")
        row = self._free.pop()
        if name is not None:
            if name in self._named:
                raise ExperimentError(f"row name already allocated: {name}")
            self._named[name] = row
        return row

    def free(self, row: int) -> None:
        """Return a row to the pool (double frees are ownership bugs)."""
        if row in self._free:
            raise ExperimentError(f"row {row} freed twice")
        self._free.append(row)
        for name, named_row in list(self._named.items()):
            if named_row == row:
                del self._named[name]

    def named(self, name: str) -> int:
        """Look up a named row."""
        return self._named[name]

    @property
    def available(self) -> int:
        """Rows still allocatable."""
        return len(self._free)


def _group_size_for(x: int) -> int:
    """Smallest valid activation size hosting X operands (one replica)."""
    for size in (2, 4, 8, 16, 32):
        if size >= x:
            return size
    raise ExperimentError(f"no activation size hosts MAJ{x}")


class BitSerialEngine:
    """MAJX / copy primitives over rows of one subarray.

    For functional verification build it on an ``ideal`` simulation
    config (every cell computes perfectly); on a default config the
    engine computes with the device's real reliability, which is
    exactly what makes MAJ9 impractical (Obs in section 8.1).
    """

    def __init__(
        self,
        bench: TestBench,
        bank: int = 0,
        subarray: int = 0,
        record_trace: bool = False,
    ):
        self._bench = bench
        self._bank_index = bank
        self._subarray = subarray
        self._record_trace = record_trace
        self.trace: List[TraceOp] = []
        self._profile = bench.module.profile
        self._columns = bench.module.config.columns_per_row
        self._base = subarray * self._profile.subarray_rows

        # Reserve one compute group per MAJ width we may execute.
        self._groups: Dict[int, RowGroup] = {}
        reserved: List[int] = []
        for index, size in enumerate((4, 8, 16, 32)):
            group = sample_groups(
                subarray,
                self._profile.subarray_rows,
                size,
                1,
                "bitserial-group",
                index,
            )[0]
            self._groups[size] = group
            reserved.extend(sorted(group.rows))
        self._allocator = RowAllocator(self._profile.subarray_rows, reserved)

        # Constant rows (all-0 / all-1), written once by the host (and
        # recorded so an exported kernel stages them too).
        self._zero_row = self._allocator.alloc("const-zero")
        self._one_row = self._allocator.alloc("const-one")
        self.load(self._zero_row, np.zeros(self._columns, dtype=np.uint8))
        self.load(self._one_row, np.ones(self._columns, dtype=np.uint8))

    @property
    def columns(self) -> int:
        """Elements processed in parallel (one per column)."""
        return self._columns

    @property
    def allocator(self) -> RowAllocator:
        """The subarray's row allocator."""
        return self._allocator

    @property
    def zero_row(self) -> int:
        """Local row holding the all-0 constant."""
        return self._zero_row

    @property
    def one_row(self) -> int:
        """Local row holding the all-1 constant."""
        return self._one_row

    # -- host data access -------------------------------------------------------

    def load(self, local_row: int, bits: np.ndarray) -> None:
        """Host write of operand bits into a row."""
        bits = np.asarray(bits, dtype=np.uint8)
        self._bench.module.bank(self._bank_index).write_row(
            self._base + local_row, bits
        )
        if self._record_trace:
            self.trace.append(
                TraceOp(
                    kind="load",
                    rows=(local_row,),
                    data=tuple(int(b) for b in bits),
                )
            )

    def read(self, local_row: int) -> np.ndarray:
        """Host read of a row's bits."""
        return self._bench.module.bank(self._bank_index).read_row(
            self._base + local_row
        )

    # -- in-DRAM primitives ------------------------------------------------------

    def rowclone(self, src_local: int, dst_local: int) -> None:
        """Copy one row onto another via consecutive activation."""
        program = apa_program(
            self._bank_index,
            self._base + src_local,
            self._base + dst_local,
            ROWCLONE_T1_NS,
            ROWCLONE_T2_NS,
        )
        self._bench.run(program)
        if self._record_trace:
            self.trace.append(TraceOp(kind="rowclone", rows=(src_local, dst_local)))

    def maj(self, inputs: Sequence[int], dest_local: int) -> None:
        """dest <- MAJ(inputs), all arguments local rows.

        Copies the inputs into the reserved compute group, pads with
        neutral rows, runs the APA majority, and copies the result
        back out -- all with in-DRAM operations.
        """
        x = len(inputs)
        if x % 2 == 0 or x < 3:
            raise ExperimentError(f"majority needs an odd number >= 3 of inputs: {x}")
        group = self._groups[_group_size_for(x)]
        group_rows = sorted(group.rows)
        for operand_row, src in zip(group_rows, inputs):
            self.rowclone(src, operand_row)
        spare = group_rows[x:]
        if spare:
            initialize_neutral_rows(
                self._bench,
                self._bank_index,
                [self._base + row for row in spare],
            )
            if self._record_trace:
                self.trace.append(TraceOp(kind="frac", rows=tuple(spare)))
        rf, rs = group.global_pair(self._profile.subarray_rows)
        self._bench.run(
            apa_program(self._bank_index, rf, rs, MAJ_T1_NS, MAJ_T2_NS)
        )
        if self._record_trace:
            self.trace.append(
                TraceOp(
                    kind="maj",
                    rows=(
                        rf - self._base,
                        rs - self._base,
                    ),
                )
            )
        self.rowclone(group_rows[0], dest_local)
