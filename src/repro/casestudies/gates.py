"""Dual-rail majority logic gates.

COTS DRAM has no in-array NOT, so (as in ComputeDRAM-style execution)
every logical signal is stored as a *dual-rail* pair of rows: the
value and its complement.  NOT is then free (swap the rails), and De
Morgan gives each gate's complement output from the complemented
inputs:

- AND(a, b)  = MAJ3(a, b, 0);     NAND via MAJ3(~a, ~b, 1)
- OR(a, b)   = MAJ3(a, b, 1);     NOR via MAJ3(~a, ~b, 0)
- XOR(a, b)  = AND(OR(a, b), NAND(a, b))
- full adder: carry = MAJ3(a, b, c); sum = XOR3 with MAJ3 only, or --
  the identity that makes MAJ5 valuable (section 8.1) --
  ``sum = MAJ5(a, b, c, ~carry, ~carry)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ExperimentError
from .bitserial import BitSerialEngine


@dataclass(frozen=True)
class Signal:
    """A dual-rail logical signal: rows holding the value and inverse."""

    pos: int
    neg: int

    def inverted(self) -> "Signal":
        """NOT: swap the rails (zero DRAM operations)."""
        return Signal(pos=self.neg, neg=self.pos)


@dataclass(frozen=True)
class GateCounts:
    """MAJ-operation counts of one gate, per MAJ width.

    Used by the Fig 16 analytic model; maps MAJ width -> operations.
    """

    by_width: Dict[int, int]

    @property
    def total(self) -> int:
        """Total MAJ operations regardless of width."""
        return sum(self.by_width.values())


class DualRailGates:
    """Gate library over a :class:`BitSerialEngine`.

    ``use_maj5`` switches the full adder to the MAJ5 sum identity,
    turning 14 MAJ ops per full adder into 4 -- the source of the
    addition speedups in Fig 16.
    """

    def __init__(self, engine: BitSerialEngine, use_maj5: bool = False):
        self._engine = engine
        self._use_maj5 = use_maj5
        if use_maj5 and engine is not None:
            profile = engine._bench.module.profile  # noqa: SLF001 - introspection
            if profile.max_reliable_majx < 5:
                raise ExperimentError(
                    f"manufacturer {profile.manufacturer!r} cannot run MAJ5"
                )

    @property
    def engine(self) -> BitSerialEngine:
        """The underlying execution engine."""
        return self._engine

    # -- signal management -------------------------------------------------------

    def fresh(self, name: str = None) -> Signal:
        """Allocate an uninitialized dual-rail signal."""
        alloc = self._engine.allocator
        return Signal(pos=alloc.alloc(name), neg=alloc.alloc())

    def release(self, signal: Signal) -> None:
        """Return a signal's rows to the allocator.

        Constant signals (built on the shared all-0/all-1 rows) are
        left alone, so callers can release uniformly.
        """
        constants = {self._engine.zero_row, self._engine.one_row}
        for row in (signal.pos, signal.neg):
            if row not in constants:
                self._engine.allocator.free(row)

    def constant(self, value: int) -> Signal:
        """The all-0 or all-1 constant signal."""
        zero, one = self._engine.zero_row, self._engine.one_row
        return Signal(pos=one, neg=zero) if value else Signal(pos=zero, neg=one)

    def load(self, bits) -> Signal:
        """Host-load a bit row as a dual-rail signal."""
        import numpy as np

        bits = np.asarray(bits, dtype=np.uint8)
        signal = self.fresh()
        self._engine.load(signal.pos, bits)
        self._engine.load(signal.neg, (1 - bits).astype(np.uint8))
        return signal

    def read(self, signal: Signal):
        """Host-read a signal's value rail."""
        return self._engine.read(signal.pos)

    # -- gates --------------------------------------------------------------------

    def not_(self, a: Signal) -> Signal:
        """Free inversion."""
        return a.inverted()

    def and_(self, a: Signal, b: Signal) -> Signal:
        """AND, 2 MAJ3 operations (one per rail)."""
        out = self.fresh()
        zero, one = self._engine.zero_row, self._engine.one_row
        self._engine.maj([a.pos, b.pos, zero], out.pos)
        self._engine.maj([a.neg, b.neg, one], out.neg)
        return out

    def or_(self, a: Signal, b: Signal) -> Signal:
        """OR, 2 MAJ3 operations."""
        out = self.fresh()
        zero, one = self._engine.zero_row, self._engine.one_row
        self._engine.maj([a.pos, b.pos, one], out.pos)
        self._engine.maj([a.neg, b.neg, zero], out.neg)
        return out

    def xor_(self, a: Signal, b: Signal) -> Signal:
        """XOR = AND(OR(a,b), NAND(a,b)): 6 MAJ3 operations."""
        disjunction = self.or_(a, b)
        conjunction = self.and_(a, b)
        result = self.and_(disjunction, conjunction.inverted())
        self.release(disjunction)
        self.release(conjunction)
        return result

    def mux(self, select: Signal, when_true: Signal, when_false: Signal) -> Signal:
        """``select ? when_true : when_false`` -- 6 MAJ3 operations."""
        taken = self.and_(select, when_true)
        skipped = self.and_(select.inverted(), when_false)
        result = self.or_(taken, skipped)
        self.release(taken)
        self.release(skipped)
        return result

    def full_adder(
        self, a: Signal, b: Signal, carry_in: Signal
    ) -> Tuple[Signal, Signal]:
        """(sum, carry_out) of a 1-bit full addition.

        MAJ3-only: carry = MAJ3 (2 ops) + sum = XOR(XOR(a,b),c)
        (12 ops) = 14 ops.  With MAJ5: carry (2 ops) + the
        ``sum = MAJ5(a, b, c, ~carry, ~carry)`` identity (2 ops) =
        4 ops total.
        """
        carry = self.fresh()
        self._engine.maj([a.pos, b.pos, carry_in.pos], carry.pos)
        self._engine.maj([a.neg, b.neg, carry_in.neg], carry.neg)
        if self._use_maj5:
            total = self.fresh()
            self._engine.maj(
                [a.pos, b.pos, carry_in.pos, carry.neg, carry.neg], total.pos
            )
            self._engine.maj(
                [a.neg, b.neg, carry_in.neg, carry.pos, carry.pos], total.neg
            )
        else:
            partial = self.xor_(a, b)
            total = self.xor_(partial, carry_in)
            self.release(partial)
        return total, carry
