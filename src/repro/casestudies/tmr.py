"""Majority-based error correction (section 8.1, "Majority-based
Error Correction Operations").

Triple modular redundancy (TMR) stores three copies of data and
majority-votes reads; MAJX generalizes it to X-copy redundancy
tolerating ``(X-1)/2`` faults per bit.  These helpers quantify that
fault tolerance and run the vote through the in-DRAM MAJX machinery.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..bender.testbench import TestBench
from ..core.majority import execute_majx, plan_majx
from ..core.rowgroups import sample_groups
from ..errors import ExperimentError


def majority_vote_correct(
    bench: TestBench,
    bank: int,
    copies: Sequence[np.ndarray],
    subarray: int = 0,
) -> np.ndarray:
    """Vote X stored copies into a corrected value using in-DRAM MAJX."""
    x = len(copies)
    if x % 2 == 0 or x < 3:
        raise ExperimentError(f"voting needs an odd number >= 3 of copies: {x}")
    profile = bench.module.profile
    if profile.max_reliable_majx < x:
        raise ExperimentError(
            f"manufacturer {profile.manufacturer!r} cannot vote {x} copies"
        )
    size = next(s for s in (4, 8, 16, 32) if s >= x)
    group = sample_groups(
        subarray, profile.subarray_rows, size, 1, "tmr-vote", x
    )[0]
    plan = plan_majx(x, group)
    result = execute_majx(bench, bank, plan, list(copies))
    return result.result_bits


def tmr_fault_tolerance(x: int) -> int:
    """Faulty copies an X-way vote tolerates per bit: (X-1)/2."""
    if x % 2 == 0 or x < 3:
        raise ExperimentError(f"X must be odd and >= 3: {x}")
    return (x - 1) // 2


def vote_failure_probability(x: int, bit_error_rate: float) -> float:
    """Probability an X-way vote returns the wrong bit.

    Independent per-copy bit errors at rate ``p``: the vote fails when
    more than (X-1)/2 copies are wrong.
    """
    if not 0.0 <= bit_error_rate <= 1.0:
        raise ExperimentError("bit error rate must be a probability")
    threshold = (x + 1) // 2
    total = 0.0
    for wrong in range(threshold, x + 1):
        total += (
            math.comb(x, wrong)
            * bit_error_rate**wrong
            * (1.0 - bit_error_rate) ** (x - wrong)
        )
    return total
