"""Bitmap-index scans in DRAM.

Bulk bitwise operations' motivating application (paper section 1
cites bitmap indices, BitWeaving, and friends): a categorical column
is stored as one bitmap per distinct value -- bit j of bitmap v says
"row j has value v" -- and predicates become bitwise expressions over
bitmaps.  Here the bitmaps live in DRAM rows and the expressions
execute in-DRAM through the majority-gate compiler, so a selection
scan never moves the table through the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from ..errors import ExperimentError
from .compiler import Expression, ExpressionCompiler, evaluate_reference, var
from .gates import DualRailGates


@dataclass(frozen=True)
class ColumnSpec:
    """One categorical table column."""

    name: str
    categories: Sequence[str]

    def __post_init__(self) -> None:
        if not self.categories:
            raise ExperimentError(f"column {self.name!r} needs categories")
        if len(set(self.categories)) != len(self.categories):
            raise ExperimentError(f"column {self.name!r} repeats categories")

    def bitmap_name(self, category: str) -> str:
        """The variable name of one category bitmap."""
        if category not in self.categories:
            raise ExperimentError(
                f"column {self.name!r} has no category {category!r}"
            )
        return f"{self.name}={category}"


class BitmapIndex:
    """Bitmap-encoded table resident in a DRAM subarray.

    One table row per DRAM column (lane); one DRAM row per
    (column, category) bitmap.
    """

    def __init__(self, gates: DualRailGates, columns: Sequence[ColumnSpec]):
        if not columns:
            raise ExperimentError("need at least one table column")
        self._gates = gates
        self._compiler = ExpressionCompiler(gates)
        self._columns = {spec.name: spec for spec in columns}
        self._bitmaps: Dict[str, np.ndarray] = {}
        self._n_rows = gates.engine.columns

    @property
    def capacity(self) -> int:
        """Table rows the index can hold (one per DRAM bitline)."""
        return self._n_rows

    @property
    def loaded_bitmaps(self) -> Dict[str, np.ndarray]:
        """Host-side copies of the loaded bitmaps (for verification)."""
        return dict(self._bitmaps)

    def load_table(self, table: Mapping[str, Sequence[str]]) -> None:
        """Encode and load a column-oriented table.

        ``table[column] = per-row category values``; all columns must
        have exactly :attr:`capacity` rows (pad shorter tables with a
        dedicated category if needed).
        """
        if set(table) != set(self._columns):
            raise ExperimentError(
                f"table columns {sorted(table)} do not match the index "
                f"schema {sorted(self._columns)}"
            )
        for name, values in table.items():
            spec = self._columns[name]
            if len(values) != self._n_rows:
                raise ExperimentError(
                    f"column {name!r} has {len(values)} rows; the index "
                    f"holds exactly {self._n_rows}"
                )
            values = list(values)
            unknown = set(values) - set(spec.categories)
            if unknown:
                raise ExperimentError(
                    f"column {name!r} contains unknown categories {unknown}"
                )
            for category in spec.categories:
                bitmap = np.fromiter(
                    (1 if value == category else 0 for value in values),
                    dtype=np.uint8,
                    count=self._n_rows,
                )
                self._bitmaps[spec.bitmap_name(category)] = bitmap

    def predicate(self, column: str, category: str) -> Expression:
        """The expression selecting rows where ``column == category``."""
        if column not in self._columns:
            raise ExperimentError(f"unknown column {column!r}")
        return var(self._columns[column].bitmap_name(category))

    def scan(self, expression: Expression) -> np.ndarray:
        """Evaluate a predicate expression in-DRAM; returns the
        selection bitmap (1 = row matches)."""
        needed = expression.variables()
        missing = needed - set(self._bitmaps)
        if missing:
            raise ExperimentError(
                f"predicate references unloaded bitmaps: {sorted(missing)}"
            )
        bindings = {name: self._bitmaps[name] for name in needed}
        return self._compiler.run(expression, bindings)

    def count(self, expression: Expression) -> int:
        """COUNT(*) of a predicate, computed from the in-DRAM scan."""
        return int(self.scan(expression).sum())

    def verify_scan(self, expression: Expression) -> bool:
        """Cross-check the in-DRAM scan against numpy semantics."""
        needed = expression.variables()
        bindings = {name: self._bitmaps[name] for name in needed}
        reference = evaluate_reference(expression, bindings)
        return bool(np.array_equal(self.scan(expression), reference))


def scan_cost_model(
    expression: Expression,
    n_rows: int,
    lanes: int,
    op_latency_ns: float = 162.0,
    dram_bandwidth_gbps: float = 19.2,
) -> Dict[str, float]:
    """Compare in-DRAM scan time against moving the bitmaps to a CPU.

    The in-DRAM scan costs ``gate_cost * op_latency`` per batch of
    ``lanes`` rows; a CPU scan must first pull every referenced bitmap
    over the memory bus.  Returns both times (ns) for ``n_rows`` table
    rows and the resulting speedup.
    """
    if n_rows <= 0 or lanes <= 0:
        raise ExperimentError("row and lane counts must be positive")
    batches = -(-n_rows // lanes)
    in_dram_ns = expression.gate_cost() * op_latency_ns * batches
    bitmap_bytes = len(expression.variables()) * n_rows / 8.0
    transfer_ns = bitmap_bytes * 8.0 / dram_bandwidth_gbps
    cpu_compute_ns = n_rows / 64.0  # 64 rows/ns: generous SIMD estimate
    cpu_ns = transfer_ns + cpu_compute_ns
    return {
        "in_dram_ns": in_dram_ns,
        "cpu_ns": cpu_ns,
        "speedup": cpu_ns / in_dram_ns if in_dram_ns else float("inf"),
    }
