"""Content-destruction-based cold-boot-attack prevention (section 8.2,
Fig 17).

Three in-DRAM content-destruction mechanisms, compared by the time to
overwrite a whole bank:

- **RowClone-based**: WR a predetermined pattern into one row per
  subarray, then RowClone it onto every other row (one copy per
  ~55.5 ns APA).
- **Frac-based**: drive every row to the neutral VDD/2 state, one
  short Frac cycle per row; no seed row needed.
- **Multi-RowCopy-based**: seed one row per subarray, then each
  ~52.5 ns APA overwrites up to 31 further rows.  The destruction
  *schedule* matters: each copy group must contain an
  already-destroyed row to act as the source, so group selection
  follows the decoder algebra (computed here, not assumed).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Set, Tuple

from ..dram.row_decoder import activation_set, field_layout_for_subarray_rows
from ..dram.vendor import PROFILE_H_A_DIE, VendorProfile
from ..errors import ConfigurationError

ROWCLONE_OP_NS = 55.5
"""One RowClone: ACT ->36-> PRE ->6-> ACT + precharge."""
FRAC_OP_NS = 20.1
"""One Frac cycle: a truncated ACT/PRE pair storing VDD/2."""
MULTI_ROW_COPY_OP_NS = 52.5
"""One Multi-RowCopy APA: ACT ->36-> PRE ->3-> ACT + precharge."""
SEED_ROW_WRITE_NS = 490.0
"""Writing the predetermined pattern into one row over the bus
(burst writes covering the full row, with command overheads)."""


@dataclass(frozen=True)
class DestructionPlan:
    """Cost breakdown of destroying one full bank."""

    mechanism: str
    operations: int
    seed_writes: int
    total_ns: float

    @property
    def total_us(self) -> float:
        """Total destruction time in microseconds."""
        return self.total_ns / 1000.0


@lru_cache(maxsize=None)
def _mrc_ops_per_subarray(subarray_rows: int, group_size: int) -> int:
    """Multi-RowCopy operations needed to overwrite one subarray.

    Greedy schedule over the decoder algebra: starting from one seeded
    row, repeatedly issue an APA whose first-activated row is already
    destroyed and whose opened group covers as many untouched rows as
    possible.  Returns the number of APAs.
    """
    if group_size < 2:
        raise ConfigurationError("group size must be at least 2")
    layout = field_layout_for_subarray_rows(subarray_rows)
    n_fields = len(layout)
    k = group_size.bit_length() - 1
    if 1 << k != group_size or k > n_fields:
        raise ConfigurationError(f"invalid group size {group_size}")

    destroyed: Set[int] = {0}
    operations = 0
    # Candidate second-row addresses: flip k fields through every
    # combination of non-zero per-field deltas relative to a source
    # row that is already destroyed, preferring the candidate covering
    # the most untouched rows.  A wide source pool lets the greedy
    # search discover near-disjoint product blocks (each new block can
    # overlap the destroyed set in as little as the source row and its
    # field-aligned mates).
    while len(destroyed) < subarray_rows:
        best_cover: Tuple[int, ...] = ()
        best_new = -1
        ordered = sorted(destroyed)
        stride = max(1, len(ordered) // 32)
        sources = ordered[::stride][:32]
        for source in sources:
            for candidate in _candidate_partners(source, layout, k, subarray_rows):
                rows = activation_set(source, candidate, layout, subarray_rows)
                if len(rows) != group_size:
                    continue
                new = len(rows - destroyed)
                if new > best_new:
                    best_new = new
                    best_cover = tuple(rows)
                if best_new >= group_size - 2:
                    break
            if best_new >= group_size - 2:
                break
        if best_new <= 0:
            # No candidate grows coverage (possible near the tail):
            # fall back to reseeding one untouched row via RowClone
            # semantics, counted as one operation.
            remaining = next(iter(set(range(subarray_rows)) - destroyed))
            destroyed.add(remaining)
            operations += 1
            continue
        destroyed.update(best_cover)
        operations += 1
    return operations


def _candidate_partners(
    source: int, layout, k: int, subarray_rows: int
) -> List[int]:
    """Second-ACT addresses differing from ``source`` in k fields.

    For each combination of k fields, every per-field delta assignment
    yields a distinct opened group; enumerating the delta space (capped)
    lets the greedy scheduler find groups overlapping the destroyed set
    in only the source row.
    """
    from itertools import combinations, product as iter_product

    candidates: List[int] = []
    n_fields = len(layout)
    for fields in combinations(range(n_fields), k):
        delta_ranges = [range(1, layout[i].n_outputs) for i in fields]
        for deltas in iter_product(*delta_ranges):
            partner = source
            for index, delta in zip(fields, deltas):
                field = layout[index]
                value = field.extract(source)
                flipped = (value + delta) % field.n_outputs
                partner = (
                    partner & ~((field.n_outputs - 1) << field.bit_offset)
                ) | field.insert(flipped)
            if partner < subarray_rows and partner != source:
                candidates.append(partner)
            if len(candidates) >= 256:
                return candidates
    return candidates


class ContentDestructionModel:
    """Bank-level destruction-time model for one vendor profile."""

    def __init__(self, profile: VendorProfile = PROFILE_H_A_DIE):
        self._profile = profile

    @property
    def profile(self) -> VendorProfile:
        """Device geometry in force."""
        return self._profile

    def rowclone_plan(self) -> DestructionPlan:
        """Seed one row per subarray, RowClone onto every other row."""
        subarrays = self._profile.subarrays_per_bank
        rows = self._profile.subarray_rows
        operations = subarrays * (rows - 1)
        total = subarrays * (
            SEED_ROW_WRITE_NS + (rows - 1) * ROWCLONE_OP_NS
        )
        return DestructionPlan("rowclone", operations, subarrays, total)

    def frac_plan(self) -> DestructionPlan:
        """One Frac cycle per row; no seeds."""
        total_rows = self._profile.rows_per_bank
        return DestructionPlan("frac", total_rows, 0, total_rows * FRAC_OP_NS)

    def multi_row_copy_plan(self, group_size: int) -> DestructionPlan:
        """Seed one row per subarray, then group-wise Multi-RowCopy."""
        subarrays = self._profile.subarrays_per_bank
        ops_per_subarray = _mrc_ops_per_subarray(
            self._profile.subarray_rows, group_size
        )
        operations = subarrays * ops_per_subarray
        total = subarrays * (
            SEED_ROW_WRITE_NS + ops_per_subarray * MULTI_ROW_COPY_OP_NS
        )
        return DestructionPlan(
            f"multirowcopy-{group_size}", operations, subarrays, total
        )

    def speedups_vs_rowclone(
        self, group_sizes: Sequence[int] = (2, 4, 8, 16, 32)
    ) -> Dict[str, float]:
        """Fig 17 data: destruction speedup normalized to RowClone."""
        baseline = self.rowclone_plan().total_ns
        result: Dict[str, float] = {
            "frac": baseline / self.frac_plan().total_ns,
        }
        for size in group_sizes:
            plan = self.multi_row_copy_plan(size)
            result[plan.mechanism] = baseline / plan.total_ns
        return result


def figure17_speedups(
    profile: VendorProfile = PROFILE_H_A_DIE,
    group_sizes: Sequence[int] = (2, 4, 8, 16, 32),
) -> Dict[str, float]:
    """Fig 17: speedup over RowClone-based content destruction."""
    return ContentDestructionModel(profile).speedups_vs_rowclone(group_sizes)
