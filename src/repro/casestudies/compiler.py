"""Expression compiler for the in-DRAM gate library.

SIMDRAM-style front end (paper refs [105, 130]): users write Boolean
expressions over named bit-vector variables with Python operators;
the compiler walks the AST, schedules dual-rail majority gates on a
:class:`~repro.casestudies.gates.DualRailGates` engine, releases
intermediate rows as they die, and reports the static MAJ-operation
cost -- the number the Fig 16 model prices.

Example::

    from repro.casestudies.compiler import var
    expr = (var("a") & var("b")) | ~var("c")
    result_bits = compile_and_run(expr, gates, {"a": ..., "b": ..., "c": ...})
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Tuple

import numpy as np

from ..errors import ExperimentError
from .gates import DualRailGates, Signal


class Expression:
    """Base class: a Boolean expression over named bit-vectors."""

    def __and__(self, other: "Expression") -> "Expression":
        return Gate("and", (self, _as_expression(other)))

    def __or__(self, other: "Expression") -> "Expression":
        return Gate("or", (self, _as_expression(other)))

    def __xor__(self, other: "Expression") -> "Expression":
        return Gate("xor", (self, _as_expression(other)))

    def __invert__(self) -> "Expression":
        return Gate("not", (self,))

    def variables(self) -> FrozenSet[str]:
        """Names of the free variables."""
        raise NotImplementedError

    def gate_cost(self) -> int:
        """Static MAJ-operation count of the compiled form."""
        raise NotImplementedError


@dataclass(frozen=True)
class Variable(Expression):
    """A named input bit-vector."""

    name: str

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def gate_cost(self) -> int:
        return 0


@dataclass(frozen=True)
class Constant(Expression):
    """A constant 0 or 1 broadcast over all lanes."""

    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ExperimentError(f"constant must be 0 or 1: {self.value}")

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def gate_cost(self) -> int:
        return 0


@dataclass(frozen=True)
class Gate(Expression):
    """An operator node."""

    op: str
    inputs: Tuple[Expression, ...]

    _COSTS = {"and": 2, "or": 2, "xor": 6, "not": 0}

    def __post_init__(self) -> None:
        if self.op not in self._COSTS:
            raise ExperimentError(f"unknown operator {self.op!r}")
        arity = 1 if self.op == "not" else 2
        if len(self.inputs) != arity:
            raise ExperimentError(
                f"{self.op} expects {arity} inputs, got {len(self.inputs)}"
            )

    def variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for node in self.inputs:
            names |= node.variables()
        return names

    def gate_cost(self) -> int:
        return self._COSTS[self.op] + sum(n.gate_cost() for n in self.inputs)


def var(name: str) -> Variable:
    """A named input bit-vector."""
    return Variable(name)


def const(value: int) -> Constant:
    """A broadcast constant."""
    return Constant(value)


def _as_expression(value) -> Expression:
    if isinstance(value, Expression):
        return value
    if value in (0, 1):
        return Constant(int(value))
    raise ExperimentError(f"cannot use {value!r} in an expression")


class ExpressionCompiler:
    """Schedules an expression onto the dual-rail gate engine."""

    def __init__(self, gates: DualRailGates):
        self._gates = gates

    def run(
        self, expression: Expression, bindings: Mapping[str, np.ndarray]
    ) -> np.ndarray:
        """Load inputs, execute the expression in-DRAM, read the result.

        Every intermediate row is released once its last consumer has
        executed; inputs are loaded once even when referenced many
        times.
        """
        missing = expression.variables() - set(bindings)
        if missing:
            raise ExperimentError(f"unbound variables: {sorted(missing)}")
        loaded: Dict[str, Signal] = {
            name: self._gates.load(np.asarray(bindings[name], dtype=np.uint8))
            for name in sorted(expression.variables())
        }
        try:
            result, owned = self._evaluate(expression, loaded)
            bits = self._gates.read(result)
            if owned:
                self._gates.release(result)
            return bits
        finally:
            for signal in loaded.values():
                self._gates.release(signal)

    def _evaluate(
        self, node: Expression, loaded: Mapping[str, Signal]
    ) -> Tuple[Signal, bool]:
        """Returns (signal, owned) -- owned signals are ours to free."""
        if isinstance(node, Variable):
            return loaded[node.name], False
        if isinstance(node, Constant):
            return self._gates.constant(node.value), False
        assert isinstance(node, Gate)
        if node.op == "not":
            inner, owned = self._evaluate(node.inputs[0], loaded)
            return inner.inverted(), owned
        left, left_owned = self._evaluate(node.inputs[0], loaded)
        right, right_owned = self._evaluate(node.inputs[1], loaded)
        operator = {
            "and": self._gates.and_,
            "or": self._gates.or_,
            "xor": self._gates.xor_,
        }[node.op]
        result = operator(left, right)
        if left_owned:
            self._gates.release(left)
        if right_owned:
            self._gates.release(right)
        return result, True


def compile_and_run(
    expression: Expression,
    gates: DualRailGates,
    bindings: Mapping[str, np.ndarray],
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`ExpressionCompiler`."""
    return ExpressionCompiler(gates).run(expression, bindings)


def evaluate_reference(
    expression: Expression, bindings: Mapping[str, np.ndarray]
) -> np.ndarray:
    """Pure-numpy reference semantics (for verification)."""
    if isinstance(expression, Variable):
        return np.asarray(bindings[expression.name], dtype=np.uint8)
    if isinstance(expression, Constant):
        width = len(next(iter(bindings.values()))) if bindings else 1
        return np.full(width, expression.value, dtype=np.uint8)
    assert isinstance(expression, Gate)
    if expression.op == "not":
        return 1 - evaluate_reference(expression.inputs[0], bindings)
    left = evaluate_reference(expression.inputs[0], bindings)
    right = evaluate_reference(expression.inputs[1], bindings)
    if expression.op == "and":
        return left & right
    if expression.op == "or":
        return left | right
    return left ^ right
