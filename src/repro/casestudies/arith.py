"""Bit-serial arithmetic on the in-DRAM gate library.

Values are stored *vertically* (SIMDRAM layout): a W-bit unsigned
vector register is W dual-rail signals, signal ``i`` holding bit ``i``
of every element (elements across columns).  All arithmetic is
ripple-carry / shift-and-add built purely from majority gates, so the
whole ALU runs on the simulated DRAM through APA command sequences.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import ExperimentError
from .gates import DualRailGates, Signal


class BitSerialALU:
    """W-bit unsigned vector ALU over dual-rail majority gates."""

    def __init__(self, gates: DualRailGates, width: int = 8):
        if width < 1:
            raise ExperimentError("width must be positive")
        self._gates = gates
        self._width = width

    @property
    def width(self) -> int:
        """Bits per element."""
        return self._width

    @property
    def gates(self) -> DualRailGates:
        """The gate library in use."""
        return self._gates

    @property
    def lanes(self) -> int:
        """Parallel elements (one per DRAM column)."""
        return self._gates.engine.columns

    # -- registers ---------------------------------------------------------------

    def load_vector(self, values: np.ndarray) -> List[Signal]:
        """Load unsigned integers (one per lane) as a bit-sliced register."""
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != (self.lanes,):
            raise ExperimentError(
                f"expected {self.lanes} lane values, got {values.shape}"
            )
        if values.size and int(values.max()) >= (1 << self._width):
            raise ExperimentError(f"values exceed {self._width} bits")
        register = []
        for bit in range(self._width):
            bits = ((values >> np.uint64(bit)) & np.uint64(1)).astype(np.uint8)
            register.append(self._gates.load(bits))
        return register

    def read_vector(self, register: List[Signal]) -> np.ndarray:
        """Read a bit-sliced register back as unsigned integers."""
        values = np.zeros(self.lanes, dtype=np.uint64)
        for bit, signal in enumerate(register):
            values |= self._gates.read(signal).astype(np.uint64) << np.uint64(bit)
        return values

    def release_vector(self, register: List[Signal]) -> None:
        """Free a register's rows."""
        for signal in register:
            self._gates.release(signal)

    # -- arithmetic ---------------------------------------------------------------

    def bitwise(self, op: str, a: List[Signal], b: List[Signal]) -> List[Signal]:
        """Element-wise AND / OR / XOR of two registers."""
        table = {"and": self._gates.and_, "or": self._gates.or_, "xor": self._gates.xor_}
        if op not in table:
            raise ExperimentError(f"unknown bitwise op {op!r}")
        return [table[op](x, y) for x, y in zip(a, b)]

    def add(self, a: List[Signal], b: List[Signal]) -> List[Signal]:
        """Ripple-carry addition (modulo 2^W)."""
        carry = self._gates.constant(0)
        result: List[Signal] = []
        for bit in range(self._width):
            total, carry_out = self._gates.full_adder(a[bit], b[bit], carry)
            result.append(total)
            self._gates.release(carry)
            carry = carry_out
        self._gates.release(carry)
        return result

    def sub(self, a: List[Signal], b: List[Signal]) -> List[Signal]:
        """Subtraction via two's complement: a + ~b + 1 (modulo 2^W)."""
        carry = self._gates.constant(1)
        result: List[Signal] = []
        for bit in range(self._width):
            total, carry_out = self._gates.full_adder(
                a[bit], b[bit].inverted(), carry
            )
            result.append(total)
            self._gates.release(carry)
            carry = carry_out
        self._gates.release(carry)
        return result

    def less_than(self, a: List[Signal], b: List[Signal]) -> Signal:
        """a < b (unsigned): the borrow out of ``a - b``."""
        carry = self._gates.constant(1)
        for bit in range(self._width):
            total, carry_out = self._gates.full_adder(
                a[bit], b[bit].inverted(), carry
            )
            self._gates.release(total)
            self._gates.release(carry)
            carry = carry_out
        return carry.inverted()

    def mul(self, a: List[Signal], b: List[Signal]) -> List[Signal]:
        """Shift-and-add multiplication (low W bits of the product)."""
        result = [self._gates.constant(0) for _ in range(self._width)]
        for i in range(self._width):
            carry = self._gates.constant(0)
            for k in range(self._width - i):
                partial = self._gates.and_(a[k], b[i])
                total, carry_out = self._gates.full_adder(
                    result[i + k], partial, carry
                )
                self._gates.release(partial)
                self._gates.release(result[i + k])
                self._gates.release(carry)
                result[i + k] = total
                carry = carry_out
            self._gates.release(carry)
        return result

    def divmod(
        self, a: List[Signal], b: List[Signal]
    ) -> Tuple[List[Signal], List[Signal]]:
        """Restoring division: returns (quotient, remainder).

        Lanes where the divisor is zero produce an all-ones quotient
        and remainder = dividend, matching the hardware-restoring
        convention (callers should mask zero divisors).
        """
        remainder = [self._gates.constant(0) for _ in range(self._width)]
        quotient: List[Signal] = [
            self._gates.constant(0) for _ in range(self._width)
        ]
        for bit in range(self._width - 1, -1, -1):
            # remainder = (remainder << 1) | a[bit]; the top bit drops.
            dropped = remainder[self._width - 1]
            shifted = [a[bit]] + remainder[: self._width - 1]
            trial = self.sub(shifted, b)
            fits = self.less_than(shifted, b).inverted()
            new_remainder = [
                self._gates.mux(fits, t, r) for t, r in zip(trial, shifted)
            ]
            for signal in trial:
                self._gates.release(signal)
            self._gates.release(dropped)
            for signal in remainder[: self._width - 1]:
                self._gates.release(signal)
            quotient[bit] = fits
            remainder = new_remainder
        return quotient, remainder
