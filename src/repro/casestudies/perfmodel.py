"""Analytic performance model for the Fig 16 microbenchmarks.

The paper's methodology (section 8.1): measure MAJX / Multi-RowCopy /
RowClone latencies with DRAM Bender, take the *empirical success
rates* per operation, select the row groups with the highest
throughput, and analytically model seven 32-bit arithmetic & logic
microbenchmarks on 8 KB of elements.  The baseline is MAJ3 with 4-row
activation plus RowClone (the prior state of the art).

We mirror that: execution time of a benchmark is

    T = sum over gate widths w:  ops(w) * T_OP / yield(w)

where ``ops(w)`` comes from the dual-rail majority-gate constructions
of :mod:`repro.casestudies.gates` (MAJ5 full-adder identity, MAJ7
carry/compressor identities, wider-input gates for operand
reductions), ``T_OP`` is the measured per-operation command latency,
and ``yield(w)`` is the success rate of the best row group for MAJ_w
(throughput scales with the fraction of usable columns).

The logic and add/sub microbenchmarks are modelled as 8-operand bulk
reductions (the bulk-bitwise setting that motivates PUD); mul/div are
two-operand 32-bit operations.  Op counts are documented per entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from ..errors import ConfigurationError

MAJX_LATENCIES_NS: Dict[str, float] = {
    "apa": 54.0,  # ACT ->1.5ns-> PRE ->3ns-> ACT + restore + precharge
    "rowclone": 55.5,  # ACT ->36ns-> PRE ->6ns-> ACT + precharge
    "multirowcopy": 52.5,  # ACT ->36ns-> PRE ->3ns-> ACT + precharge
}
"""Per-operation DRAM command latencies (Bender-measured style)."""

T_OP_NS = (
    MAJX_LATENCIES_NS["apa"]
    + MAJX_LATENCIES_NS["rowclone"]
    + MAJX_LATENCIES_NS["multirowcopy"]
)
"""One in-DRAM gate at 32-row activation: result copy-out (RowClone)
+ operand replication into the activation group (Multi-RowCopy) + the
MAJX APA itself."""

T_OP_BASELINE_NS = MAJX_LATENCIES_NS["apa"] + MAJX_LATENCIES_NS["rowclone"]
"""One baseline gate (MAJ3 @ 4-row activation): no replication copy is
needed with a single replica per operand, so each gate is just the APA
plus the result copy-out."""

ELEMENTS_PER_ROW_SET = 2048
"""32-bit elements in 8 KB of data (the paper's working set)."""

# Dual-rail MAJ-op counts per 32-bit element, keyed benchmark ->
# max usable X -> {gate width: operations}.  Constructions:
# - and/or: 8-operand reduction trees; a MAJ(2k-1) gate computes a
#   k-input AND/OR, so wider MAJ flattens the tree.
# - xor: 8-operand parity; multi-input XOR built from multi-input
#   majority networks (Alkaldy et al., paper ref [188]).
# - add/sub: 8-vector summation; MAJ3 = carry + MAJ3-only XOR sum
#   (14 ops/bit/add), MAJ5 = the sum = MAJ5(a,b,c,~cout,~cout)
#   identity (4 ops/bit/add), MAJ7/MAJ9 = carry-skip / column
#   compressors covering 2-3 positions per gate.
# - mul: 32x32 shift-add; partial products (AND) + adder ops, with
#   wider MAJ compressing the partial-product accumulation.
# - div: 32-step restoring division (subtract + mux per step).
MICROBENCHMARKS: Dict[str, Dict[int, Dict[int, int]]] = {
    "and": {
        3: {3: 448},
        5: {5: 256},
        7: {7: 128},
        9: {9: 96},
    },
    "or": {
        3: {3: 448},
        5: {5: 256},
        7: {7: 128},
        9: {9: 96},
    },
    "xor": {
        3: {3: 1344},
        5: {3: 256, 5: 256},
        7: {3: 128, 7: 128},
        9: {3: 96, 9: 96},
    },
    "addition": {
        3: {3: 3136},
        5: {3: 448, 5: 448},
        7: {3: 224, 7: 224},
        9: {3: 160, 9: 160},
    },
    "subtraction": {
        3: {3: 3136},
        5: {3: 448, 5: 448},
        7: {3: 224, 7: 224},
        9: {3: 160, 9: 160},
    },
    "multiplication": {
        3: {3: 15936},
        5: {3: 2048, 5: 3968},
        7: {3: 2048, 7: 2000},
        9: {3: 2048, 9: 1600},
    },
    "division": {
        3: {3: 20480},
        5: {3: 4096, 5: 4096},
        7: {3: 2048, 7: 2048},
        9: {3: 1536, 9: 1536},
    },
}

DEFAULT_YIELDS: Dict[str, Dict[int, float]] = {
    "H": {3: 0.999, 5: 0.83, 7: 0.52, 9: 0.07},
    "M": {3: 0.995, 5: 0.83, 7: 0.63},
}
"""Best-row-group success rates for MAJ_w with 32-row activation,
per manufacturer (selected-group values; Mfr. M has no usable MAJ9,
footnote 11)."""

DEFAULT_BASELINE_YIELD: Dict[str, float] = {"H": 0.92, "M": 0.88}
"""Best-group success of the baseline MAJ3 with 4-row activation."""


@dataclass
class MicrobenchmarkModel:
    """Execution-time model for the seven microbenchmarks.

    Success-rate inputs can come from the characterization harness (see
    ``benchmarks/bench_fig16_microbenchmarks.py``) or default to the
    paper-calibrated values.
    """

    yields: Mapping[int, float]
    """MAJ width -> best-group success rate with 32-row activation."""
    baseline_yield: float
    """Best-group success rate of MAJ3 with 4-row activation."""
    op_latency_ns: float = T_OP_NS
    baseline_op_latency_ns: float = T_OP_BASELINE_NS
    elements: int = ELEMENTS_PER_ROW_SET

    def __post_init__(self) -> None:
        for width, value in self.yields.items():
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(
                    f"yield for MAJ{width} must be in (0, 1]: {value}"
                )
        if not 0.0 < self.baseline_yield <= 1.0:
            raise ConfigurationError("baseline yield must be in (0, 1]")

    @classmethod
    def for_manufacturer(cls, manufacturer: str) -> "MicrobenchmarkModel":
        """Paper-calibrated model for Mfr. H or Mfr. M."""
        if manufacturer not in DEFAULT_YIELDS:
            raise ConfigurationError(
                f"no default yields for manufacturer {manufacturer!r}"
            )
        return cls(
            yields=DEFAULT_YIELDS[manufacturer],
            baseline_yield=DEFAULT_BASELINE_YIELD[manufacturer],
        )

    @classmethod
    def from_measurements(cls, scope) -> "MicrobenchmarkModel":
        """Build the model from a characterization scope's measurements.

        Mirrors the paper's methodology end to end: characterize MAJX
        on the devices, pick the best row group per width, and feed
        those empirical success rates into the execution-time model
        (section 8.1).  ``scope`` is a
        :class:`~repro.characterization.experiment.CharacterizationScope`.
        """
        from ..characterization.fleet import baseline_yield, best_group_yields

        return cls(
            yields=best_group_yields(scope),
            baseline_yield=baseline_yield(scope),
        )

    @property
    def max_x(self) -> int:
        """Widest usable MAJ on this device."""
        return max(self.yields)

    def _time_ns(
        self,
        counts: Mapping[int, int],
        yields: Mapping[int, float],
        op_latency_ns: float,
    ) -> float:
        total = 0.0
        for width, ops in counts.items():
            if width not in yields:
                raise ConfigurationError(f"no yield provided for MAJ{width}")
            total += ops * op_latency_ns / yields[width]
        return total * self.elements

    def baseline_time_ns(self, benchmark: str) -> float:
        """MAJ3 @ 4-row-activation state-of-the-art execution time."""
        counts = MICROBENCHMARKS[benchmark][3]
        return self._time_ns(
            counts, {3: self.baseline_yield}, self.baseline_op_latency_ns
        )

    def time_ns(self, benchmark: str, x: int) -> float:
        """Execution time using gates up to MAJ_x at 32-row activation."""
        if benchmark not in MICROBENCHMARKS:
            raise ConfigurationError(f"unknown microbenchmark {benchmark!r}")
        if x not in MICROBENCHMARKS[benchmark]:
            raise ConfigurationError(f"no construction for MAJ{x}")
        if x > self.max_x:
            raise ConfigurationError(
                f"device supports MAJ{self.max_x} at most, asked for MAJ{x}"
            )
        return self._time_ns(
            MICROBENCHMARKS[benchmark][x], self.yields, self.op_latency_ns
        )

    def speedup(self, benchmark: str, x: int) -> float:
        """Speedup of the MAJ_x implementation over the baseline."""
        return self.baseline_time_ns(benchmark) / self.time_ns(benchmark, x)

    def all_speedups(
        self, x_values: Optional[Sequence[int]] = None
    ) -> Dict[str, Dict[int, float]]:
        """Speedups per benchmark per MAJ width (Fig 16 data)."""
        if x_values is None:
            x_values = [x for x in (5, 7, 9) if x <= self.max_x]
        return {
            benchmark: {x: self.speedup(benchmark, x) for x in x_values}
            for benchmark in MICROBENCHMARKS
        }


def figure16_speedups(
    model_h: MicrobenchmarkModel = None,
    model_m: MicrobenchmarkModel = None,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Fig 16 data for both manufacturers: mfr -> benchmark -> X -> speedup."""
    model_h = model_h or MicrobenchmarkModel.for_manufacturer("H")
    model_m = model_m or MicrobenchmarkModel.for_manufacturer("M")
    return {"H": model_h.all_speedups(), "M": model_m.all_speedups()}
