"""Bank-level parallelism for PUD operations.

A module has 16 independent banks sharing one command bus; while one
bank waits out t1/t2, the bus can feed another bank's APA.  This
module schedules the same PUD operation across several banks into a
single interleaved command program, subject to the real constraints:
one command per 1.5 ns bus tick, and each bank's APA needs its ACT,
PRE, and second ACT at exact per-bank offsets.

Tight-timing MAJ APAs (t1 = 1 tick, t2 = 2 ticks) leave almost no
slack, so only a couple of banks can interleave; Multi-RowCopy APAs
(t1 = 24 ticks) leave plenty, and a whole module's worth of banks can
run near-concurrently -- the scheduler discovers this from the slot
algebra rather than assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..bender.program import CommandProgram, program_from_absolute
from ..bender.testbench import TestBench
from ..core.rowgroups import RowGroup
from ..dram.commands import CommandKind
from ..errors import ExperimentError
from ..units import COMMAND_GRANULARITY_NS


@dataclass(frozen=True)
class BankOperation:
    """One APA to schedule: a row group on a bank with its timings."""

    bank: int
    group: RowGroup
    t1_ticks: int
    t2_ticks: int

    def __post_init__(self) -> None:
        if self.t1_ticks < 1 or self.t2_ticks < 1:
            raise ExperimentError("APA tick counts must be >= 1")


@dataclass(frozen=True)
class InterleavedSchedule:
    """A packed multi-bank schedule."""

    program: CommandProgram
    start_ticks: Dict[int, int]
    makespan_ticks: int
    serial_ticks: int

    @property
    def speedup(self) -> float:
        """Bus-time saving over running the operations back to back."""
        return self.serial_ticks / self.makespan_ticks


def schedule_interleaved(
    operations: Sequence[BankOperation],
    subarray_rows: int,
    recovery_ticks: int = 33,
) -> InterleavedSchedule:
    """Greedy slot assignment of several banks' APAs onto the bus.

    Each operation claims three bus ticks (ACT, PRE, ACT) at fixed
    relative offsets plus a trailing per-bank recovery PRE; starts are
    chosen greedily as the earliest tick where none of the operation's
    slots collide with already-claimed ticks.
    """
    if not operations:
        raise ExperimentError("nothing to schedule")
    banks = [op.bank for op in operations]
    if len(set(banks)) != len(banks):
        raise ExperimentError("one operation per bank (banks share state)")

    occupied: Set[int] = set()
    commands: List[Tuple[float, CommandKind, int, int]] = []
    starts: Dict[int, int] = {}
    makespan = 0
    serial = 0
    for op in operations:
        offsets = (
            0,
            op.t1_ticks,
            op.t1_ticks + op.t2_ticks,
            op.t1_ticks + op.t2_ticks + recovery_ticks,
        )
        serial += offsets[-1] + 1
        start = 0
        while any((start + offset) in occupied for offset in offsets):
            start += 1
        for offset in offsets:
            occupied.add(start + offset)
        starts[op.bank] = start
        rf, rs = op.group.global_pair(subarray_rows)
        tick = COMMAND_GRANULARITY_NS
        commands.extend(
            [
                (start * tick, CommandKind.ACT, op.bank, rf),
                ((start + offsets[1]) * tick, CommandKind.PRE, op.bank, None),
                ((start + offsets[2]) * tick, CommandKind.ACT, op.bank, rs),
                ((start + offsets[3]) * tick, CommandKind.PRE, op.bank, None),
            ]
        )
        makespan = max(makespan, start + offsets[-1] + 1)
    return InterleavedSchedule(
        program=program_from_absolute(commands),
        start_ticks=starts,
        makespan_ticks=makespan,
        serial_ticks=serial,
    )


def parallel_multi_row_copy(
    bench: TestBench,
    groups_by_bank: Dict[int, RowGroup],
    t1_ticks: int = 24,
    t2_ticks: int = 2,
) -> InterleavedSchedule:
    """Run Multi-RowCopy on several banks in one interleaved program.

    Sources must be initialized by the caller (as in the section 3.4
    methodology); returns the executed schedule for latency analysis.
    """
    operations = [
        BankOperation(bank=bank, group=group, t1_ticks=t1_ticks, t2_ticks=t2_ticks)
        for bank, group in sorted(groups_by_bank.items())
    ]
    schedule = schedule_interleaved(
        operations, bench.module.profile.subarray_rows
    )
    bench.run(schedule.program)
    return schedule
