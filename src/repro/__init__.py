"""SiMRA-DRAM reproduction.

A simulation-backed reproduction of "Simultaneous Many-Row Activation
in Off-the-Shelf DRAM Chips: Experimental Characterization and
Analysis" (Yuksel et al., DSN 2024).

Layers, bottom-up:

- :mod:`repro.dram` -- the simulated silicon: cells, banks, the
  hierarchical row decoder behind many-row activation, vendor
  profiles, timing, reliability, and power models.
- :mod:`repro.bender` -- the DRAM-Bender-style testing rig: command
  programs, scheduler, FPGA replayer, thermal control, VPP supply.
- :mod:`repro.core` -- the PUD operations the paper characterizes:
  simultaneous many-row activation, MAJX with input replication,
  Multi-RowCopy, RowClone, Frac, subarray mapping.
- :mod:`repro.characterization` -- the section 4-6 experiment
  harnesses (Figs 3-12).
- :mod:`repro.spice` -- circuit-level Monte-Carlo analysis (Fig 15).
- :mod:`repro.casestudies` -- majority-based computation and
  cold-boot content destruction (Figs 16-17), plus a functional
  in-DRAM bit-serial ALU.

Quickstart::

    from repro import SimulationConfig, TestBench, TESTED_MODULES
    from repro.core import sample_groups, simultaneous_activation_test

    bench = TestBench.for_spec(TESTED_MODULES[0],
                               config=SimulationConfig.quick())
    group = sample_groups(0, 512, 32, 1, "demo")[0]
    result = simultaneous_activation_test(bench, bank=0, group=group)
    print(result.semantic, result.success_fraction)
"""

from .config import DEFAULT_CONFIG, SimulationConfig
from .errors import (
    AddressError,
    ConfigurationError,
    ExperimentError,
    InfrastructureError,
    ProgramTransferError,
    ProtocolError,
    ReadbackCorruptionError,
    ResultCorruptionError,
    SimraError,
    ThermalExcursionError,
    TimingViolationError,
    TransientInfrastructureError,
    UnsupportedOperationError,
    VppBrownoutError,
)
from .bender.testbench import TestBench
from .dram.module import Module, build_module, build_tested_fleet
from .dram.vendor import TESTED_MODULES

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "SimulationConfig",
    "SimraError",
    "ConfigurationError",
    "AddressError",
    "TimingViolationError",
    "ProtocolError",
    "UnsupportedOperationError",
    "InfrastructureError",
    "TransientInfrastructureError",
    "ProgramTransferError",
    "ReadbackCorruptionError",
    "ThermalExcursionError",
    "VppBrownoutError",
    "ExperimentError",
    "ResultCorruptionError",
    "TestBench",
    "Module",
    "build_module",
    "build_tested_fleet",
    "TESTED_MODULES",
    "__version__",
]
