"""Command-line interface.

``simra-dram`` exposes the reproduction's main entry points without
writing Python::

    simra-dram info                     # Table 1 catalog
    simra-dram activation --rows 32     # section 4 quick characterization
    simra-dram majority --x 5           # section 5
    simra-dram rowcopy --destinations 31
    simra-dram power                    # Fig 5
    simra-dram spice                    # Fig 15
    simra-dram coldboot                 # Fig 17
    simra-dram speedups                 # Fig 16
    simra-dram trng --bits 4096         # extension: random numbers
    simra-dram decoder --rf 0 --rs 7    # decoder algebra lookup
    simra-dram campaign --resume        # checkpointed figure sweep
    simra-dram campaign --fleet 4       # figures across 4 worker processes
    simra-dram worker --connect H:P     # fleet worker serving a dispatcher
    simra-dram audit --results-dir d    # integrity + recompute audit
    simra-dram repair --results-dir d   # quarantine damage, patch manifest
    simra-dram stats --results-dir d    # engine metrics of a campaign
    simra-dram serve --results-dir d    # HTTP query API over stored results
    simra-dram migrate --results-dir d --out d3   # re-save as columnar v3
    simra-dram bench                    # executor benchmark sweep
    simra-dram bench --campaign         # + sequential-vs-pipelined campaign
    simra-dram cache stats              # trial-cache inventory
    simra-dram cache clear              # drop every cached outcome

Every command accepts ``--columns/--groups/--trials/--seed`` scale
knobs where relevant; measurement commands additionally take
``--executor {serial,parallel,batched,fused,fused-parallel}`` +
``--jobs N`` to pick the trial-engine execution strategy,
``--cache``/``--cache-dir`` to reuse bit-identical trial outcomes
across runs, and ``--stats`` to print the engine's per-layer
counters afterwards.

Exit codes: 0 success; 1 experiment failures, audit FAIL, or damage
found by a dry-run repair; 2 usage/configuration error (including a
store locked by another live campaign); 3 campaign interrupted by
SIGTERM/SIGINT -- completed work is checkpointed and ``campaign
--resume`` continues it.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
from pathlib import Path
from typing import Iterator, Optional, Sequence

from .characterization.experiment import CharacterizationScope, OperatingPoint
from .characterization.report import (
    format_distribution_table,
    format_scalar_table,
    format_series_table,
)
from .config import SimulationConfig
from .dram.vendor import TESTED_MODULES, catalog_summary

EXIT_OK = 0
EXIT_FAILURES = 1
EXIT_USAGE = 2
EXIT_INTERRUPTED = 3
"""A campaign stopped by SIGTERM/SIGINT: resumable, not failed."""


@contextlib.contextmanager
def _graceful_signals() -> Iterator[None]:
    """Translate SIGTERM into KeyboardInterrupt for the block.

    The campaign treats KeyboardInterrupt as a graceful stop (drain the
    checkpoint, close the pool, report a resumable partial result), so
    a supervisor's SIGTERM gets the same choreography as Ctrl-C instead
    of an abrupt unwind.  No-op where signal handlers cannot be
    installed (non-main thread, platforms without SIGTERM).
    """

    def _interrupt(signum, frame):
        raise KeyboardInterrupt

    previous = None
    installed = False
    try:
        previous = signal.signal(signal.SIGTERM, _interrupt)
        installed = True
    except (ValueError, OSError, AttributeError):
        pass
    try:
        yield
    finally:
        if installed:
            signal.signal(signal.SIGTERM, previous)


def _jobs_value(text: str) -> Optional[int]:
    """``--jobs`` parser: an explicit count, or ``auto``.

    ``auto`` resolves to the *usable* CPU count (cgroup/affinity
    aware via ``os.process_cpu_count`` where available), so container
    CI with a 2-CPU quota on a 64-core host gets 2 workers, not 64.
    """
    if text.strip().lower() == "auto":
        from .engine import available_cpu_count

        return available_cpu_count()
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}"
        )


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--columns", type=int, default=512,
                        help="simulated bitlines per row (default 512)")
    parser.add_argument("--groups", type=int, default=3,
                        help="row groups per size per site (default 3)")
    parser.add_argument("--trials", type=int, default=6,
                        help="trials per group (default 6)")
    parser.add_argument("--seed", type=int, default=2024,
                        help="simulation seed (default 2024)")
    parser.add_argument("--executor",
                        choices=("serial", "parallel", "batched", "fused",
                                 "fused-parallel"),
                        default="serial",
                        help="trial-engine execution strategy (default serial)")
    parser.add_argument("--jobs", type=_jobs_value, default=None,
                        help="worker processes for --executor parallel "
                             "(an integer, or 'auto' for the usable "
                             "cgroup-aware CPU count)")
    parser.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="serve bit-identical trial outcomes from the "
                             "on-disk trial cache and store fresh ones")
    parser.add_argument("--cache-dir", default=".simra-cache",
                        help="trial-cache directory (default .simra-cache)")
    parser.add_argument("--stats", action="store_true",
                        help="print trial-engine per-layer counters afterwards")


def _cache_from(args: argparse.Namespace, require_origin: Optional[str] = None):
    from .engine import TrialCache

    if not getattr(args, "cache", False):
        return None
    return TrialCache(
        getattr(args, "cache_dir", ".simra-cache"),
        require_origin=require_origin,
    )


def _executor_from(args: argparse.Namespace):
    from .engine import make_executor

    return make_executor(
        getattr(args, "executor", "serial"),
        jobs=getattr(args, "jobs", None),
        cache=_cache_from(args),
    )


def _print_stats(args: argparse.Namespace, executor) -> None:
    if getattr(args, "stats", False):
        print()
        print(executor.metrics.render())


def _scope_from(args: argparse.Namespace) -> CharacterizationScope:
    config = SimulationConfig(seed=args.seed, columns_per_row=args.columns)
    return CharacterizationScope.build(
        config=config,
        specs=TESTED_MODULES,
        modules_per_spec=1,
        groups_per_size=args.groups,
        trials=args.trials,
    )


def _cmd_info(args: argparse.Namespace) -> int:
    rows = catalog_summary()
    print(f"{'Mfr':<4} {'#Mod':>5} {'#Chips':>7} {'Die':>4} {'Density':>8} "
          f"{'Org':>5} {'Subarray':>9}")
    for row in rows:
        print(f"{row['manufacturer']:<4} {row['modules']:>5} "
              f"{row['chips']:>7} {row['die_rev']:>4} {row['density']:>8} "
              f"{row['organization']:>5} {row['subarray_rows']:>9}")
    total = sum(r["modules"] for r in rows), sum(r["chips"] for r in rows)
    print(f"total: {total[0]} modules / {total[1]} chips (paper Table 1)")
    return 0


def _cmd_activation(args: argparse.Namespace) -> int:
    from .characterization.activation import activation_success_distribution

    scope = _scope_from(args)
    executor = _executor_from(args)
    point = OperatingPoint(t1_ns=args.t1, t2_ns=args.t2)
    with executor:
        rows = {
            f"{n}-row": activation_success_distribution(
                scope, n, point, executor
            )
            for n in args.rows
        }
    print(format_distribution_table(
        f"Many-row activation success (%) at t1={args.t1} t2={args.t2}", rows
    ))
    _print_stats(args, executor)
    return 0


def _cmd_majority(args: argparse.Namespace) -> int:
    from .characterization.majority import MAJX_POINT, majx_success_distribution

    scope = _scope_from(args)
    executor = _executor_from(args)
    rows = {}
    with executor:
        for x in args.x:
            for n in args.rows:
                if n < x:
                    continue
                rows[f"MAJ{x}@{n}-row"] = majx_success_distribution(
                    scope, x, n, MAJX_POINT, executor
                )
    print(format_distribution_table("MAJX success (%), best timings", rows))
    _print_stats(args, executor)
    return 0


def _cmd_rowcopy(args: argparse.Namespace) -> int:
    from .characterization.rowcopy import COPY_POINT, multi_row_copy_distribution

    scope = _scope_from(args)
    executor = _executor_from(args)
    with executor:
        rows = {
            f"->{m} rows": multi_row_copy_distribution(
                scope, m, COPY_POINT, executor
            )
            for m in args.destinations
        }
    print(format_distribution_table("Multi-RowCopy success (%)", rows))
    _print_stats(args, executor)
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from .dram.power import PowerModel

    model = PowerModel()
    print(format_scalar_table(
        "Average operation power (Fig 5)", model.figure5_series(), unit="mW"
    ))
    print(f"\n32-row activation headroom below REF: "
          f"{model.headroom_vs_ref(32):.2%} (paper: 21.19%)")
    return 0


def _cmd_spice(args: argparse.Namespace) -> int:
    from .spice.majority_sim import (
        PROCESS_VARIATIONS,
        figure15a_deviation,
        figure15b_success,
    )

    deviations = figure15a_deviation(n_sets=args.sets)
    table = {
        f"N={n}": {v: deviations[(n, v)].mean for v in PROCESS_VARIATIONS}
        for n in (1, 4, 8, 16, 32)
    }
    print(format_series_table(
        "Fig 15a: mean bitline deviation (mV) vs process variation",
        table, column_order=PROCESS_VARIATIONS, as_percent=False,
    ))
    success = figure15b_success(n_sets=args.sets, iterations=4)
    table = {
        f"N={n}": {v: success[(n, v)] for v in PROCESS_VARIATIONS}
        for n in (4, 8, 16, 32)
    }
    print()
    print(format_series_table(
        "Fig 15b: MAJ3 success vs process variation (%)",
        table, column_order=PROCESS_VARIATIONS,
    ))
    return 0


def _cmd_coldboot(args: argparse.Namespace) -> int:
    from .casestudies.coldboot import figure17_speedups

    print(format_scalar_table(
        "Destruction speedup over RowClone-based (Fig 17)",
        figure17_speedups(), unit="x",
    ))
    return 0


def _cmd_speedups(args: argparse.Namespace) -> int:
    from .casestudies.perfmodel import figure16_speedups

    for mfr, per_bench in figure16_speedups().items():
        table = {
            name: {f"MAJ{x}": value for x, value in by_x.items()}
            for name, by_x in per_bench.items()
        }
        columns = ["MAJ5", "MAJ7"] + (["MAJ9"] if mfr == "H" else [])
        print(format_series_table(
            f"Fig 16 (Mfr. {mfr}): speedup over the MAJ3 baseline (x)",
            table, column_order=columns, as_percent=False,
        ))
        print()
    return 0


def _cmd_trng(args: argparse.Namespace) -> int:
    from .bender.testbench import TestBench
    from .core.trng import (
        TrngGenerator,
        longest_run,
        monobit_fraction,
        serial_correlation,
    )

    config = SimulationConfig(seed=args.seed, columns_per_row=args.columns)
    bench = TestBench.for_spec(TESTED_MODULES[0], config=config)
    generator = TrngGenerator(bench, group_size=args.group_size)
    bits = generator.generate(args.bits)
    stats = generator.last_stats
    print(f"generated {args.bits} bits with {stats.apa_operations} APAs "
          f"({args.group_size}-row activation)")
    print(f"  monobit fraction : {monobit_fraction(bits):.4f}")
    print(f"  longest run      : {longest_run(bits)}")
    print(f"  serial correlation: {serial_correlation(bits):+.4f}")
    if args.hex:
        import numpy as np

        print(np.packbits(bits).tobytes().hex())
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .engine.fleet import run_worker
    from .errors import ExperimentError

    try:
        run_worker(args.connect, executor_name=args.executor, jobs=args.jobs)
    except (ExperimentError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    return EXIT_OK


def _cmd_campaign_fleet(args: argparse.Namespace) -> int:
    from .characterization.store import ResultStore
    from .engine.fleet import LocalFleet, fleet_scope, run_fleet_campaign
    from .errors import ExperimentError

    if args.resume or args.chaos or args.supervise:
        print(
            "error: --fleet does not combine with --resume/--chaos/"
            "--supervise; run those through the single-host campaign",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.fleet_chips:
        config = SimulationConfig(seed=args.seed, columns_per_row=args.columns)
        scope = fleet_scope(
            args.fleet_chips,
            config=config,
            groups_per_size=args.groups,
            trials=args.trials,
        )
    else:
        scope = _scope_from(args)
    store = ResultStore(Path(args.results_dir))
    try:
        with LocalFleet(
            workers=args.fleet,
            executor_name=args.executor,
            jobs=args.jobs,
        ) as fleet:
            dispatcher = fleet.dispatcher()
            result = run_fleet_campaign(
                scope, args.experiments, dispatcher, store=store
            )
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(
        f"Fleet campaign over {len(scope.benches)} modules across "
        f"{args.fleet} worker(s) -> {store.directory}/"
    )
    for name in result.completed:
        print(f"  {name}: done")
    for name, error in sorted(result.failures.items()):
        print(f"  {name}: FAILED ({error})")
    if getattr(args, "stats", False) and result.engine_stats:
        from .engine import render_stats_dict

        print()
        print(render_stats_dict(result.engine_stats))
    return EXIT_OK if result.succeeded else EXIT_FAILURES


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .characterization.campaign import Campaign, RetryPolicy
    from .characterization.store import ResultStore
    from .chaos import ChaosConfig
    from .errors import ExperimentError
    from .health import BreakerPolicy, HealthTracker

    if args.fleet:
        if args.adaptive:
            print("error: --adaptive does not compose with --fleet; "
                  "run the adaptive campaign on a single host",
                  file=sys.stderr)
            return EXIT_USAGE
        return _cmd_campaign_fleet(args)
    if args.adaptive and args.supervise:
        print("error: --adaptive does not compose with --supervise",
              file=sys.stderr)
        return EXIT_USAGE

    scope = _scope_from(args)
    store = ResultStore(Path(args.results_dir))
    chaos = None
    if args.chaos:
        chaos = ChaosConfig.light(
            seed=args.chaos_seed,
            rate=args.chaos_rate,
            max_faults_per_kind=args.chaos_max_faults,
        )
    executor = _executor_from(args)
    health = None
    if args.supervise:
        health = HealthTracker(
            BreakerPolicy(failure_threshold=args.breaker_threshold)
        )
    adaptive = None
    if args.adaptive:
        from .engine import AdaptiveConfig

        try:
            adaptive = AdaptiveConfig(
                ci_target=args.ci_target,
                round_trials=args.round_trials,
                max_trials=args.max_trials,
                seed=args.seed,
            )
        except ExperimentError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
    campaign = Campaign(
        scope,
        store=store,
        retry=RetryPolicy(max_attempts=args.retries, base_delay_s=args.backoff_s),
        time_budget_s=args.time_budget_s,
        chaos=chaos,
        executor=executor,
        health=health,
        pipeline=args.pipeline,
        adaptive=adaptive,
    )
    try:
        with executor, _graceful_signals():
            result = campaign.run(
                args.experiments,
                resume=args.resume,
                retry_failed=args.retry_failed,
            )
    except ExperimentError as exc:
        # Includes StoreLockedError: another live campaign owns the
        # store; a second writer would interleave manifest updates.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(campaign.render(result))
    print(f"\nCampaign over {len(scope.benches)} modules "
          f"-> {result.stored_at}/")
    for line in result.summary_lines():
        print(line)
    if chaos is not None:
        print(f"chaos faults injected: {result.chaos_faults_injected}")
    if result.health is not None:
        quarantined = result.health.get("quarantined") or []
        print(
            f"fleet health: {len(quarantined)} module(s) quarantined, "
            f"coverage {result.health.get('coverage', 1.0):.0%}, "
            f"{result.health.get('breaker_trips', 0)} breaker trip(s)"
        )
        for serial in quarantined:
            print(f"  quarantined: {serial}")
    _print_stats(args, executor)
    if result.interrupted:
        return EXIT_INTERRUPTED
    return EXIT_OK if result.succeeded else EXIT_FAILURES


def _cmd_audit(args: argparse.Namespace) -> int:
    from .characterization.store import ResultStore
    from .errors import ExperimentError
    from .health import audit_store

    store = ResultStore(Path(args.results_dir))
    # Audits only ever consume cache entries the serial reference
    # itself produced; anything else would certify an executor
    # against its own stored output.
    cache = _cache_from(args, require_origin="serial")
    try:
        report = audit_store(
            store, sample=args.sample, seed=args.seed, cache=cache
        )
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"audit of {store.directory}/")
    for line in report.summary_lines():
        print(line)
    store.save(
        "audit-report",
        report.as_dict(),
        notes="result-integrity audit report",
    )
    return 0 if report.passed else 1


def _cmd_repair(args: argparse.Namespace) -> int:
    from .characterization.repair import repair_store
    from .characterization.store import ResultStore
    from .errors import ExperimentError

    store = ResultStore(Path(args.results_dir))
    try:
        report = repair_store(
            store, delete=args.delete, dry_run=args.dry_run
        )
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(f"repair of {store.directory}/")
    for line in report.summary_lines():
        print(line)
    if args.dry_run and report.damage_found:
        return EXIT_FAILURES
    return EXIT_OK


def _cmd_besttiming(args: argparse.Namespace) -> int:
    from .characterization.timing_search import (
        best_activation_timing,
        best_copy_timing,
        best_majx_timing,
    )

    scope = _scope_from(args)
    executor = _executor_from(args)
    searches = {
        "activation": lambda: best_activation_timing(scope, executor=executor),
        "majx": lambda: best_majx_timing(scope, x=args.x, executor=executor),
        "copy": lambda: best_copy_timing(scope, executor=executor),
    }
    with executor:
        result = searches[args.operation]()
    print(f"best {args.operation} timing: t1={result.best_t1_ns}ns, "
          f"t2={result.best_t2_ns}ns (mean success {result.best_mean:.2%})")
    print("full grid (best to worst):")
    for (t1, t2), mean in result.ranked():
        print(f"  t1={t1:>5.1f}  t2={t2:>4.1f}  ->  {mean:7.2%}")
    _print_stats(args, executor)
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    from .bender.selftest import run_self_test
    from .bender.testbench import TestBench

    config = SimulationConfig(seed=args.seed, columns_per_row=args.columns)
    failures = 0
    for spec in TESTED_MODULES:
        bench = TestBench.for_spec(spec, config=config)
        report = run_self_test(bench)
        status = "PASS" if report.passed else "FAIL"
        print(f"{spec.module_identifier:<24} {status} "
              f"({report.checks_run} checks)")
        for failure in report.failures:
            print(f"    failed: {failure}")
            failures += 1
    return 1 if failures else 0


def _cmd_decoder(args: argparse.Namespace) -> int:
    from .dram.row_decoder import activation_set, field_layout_for_subarray_rows

    layout = field_layout_for_subarray_rows(args.subarray_rows)
    rows = activation_set(args.rf, args.rs, layout, args.subarray_rows)
    print(f"ACT {args.rf} -> PRE -> ACT {args.rs} "
          f"({args.subarray_rows}-row subarray):")
    print(f"  {len(rows)} rows simultaneously activated: {sorted(rows)}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .characterization.reader import ResultReader
    from .engine import render_stats_dict
    from .errors import ExperimentError

    # Stats never writes: read through the lock-free reader, so it
    # works while a live campaign holds the store's writer lock.
    store = ResultReader(Path(args.results_dir))
    try:
        payload = store.load("engine-stats")
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("hint: run `simra-dram campaign --executor ...` first",
              file=sys.stderr)
        return 2
    if store.has("audit-report"):
        audit = store.load("audit-report")
        payload = dict(payload)
        payload["audit_mismatches"] = audit.get("mismatches", 0)
    print(render_stats_dict(payload))
    if store.has("audit-report"):
        verdict = "PASS" if audit.get("passed") else "FAIL"
        print(
            f"last audit: {verdict} "
            f"({audit.get('artifacts_checked', 0)} artifacts checked, "
            f"{audit.get('figures_recomputed', 0)} figures recomputed, "
            f"{audit.get('mismatches', 0)} mismatches)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .characterization.reader import ResultReader
    from .errors import ConfigurationError
    from .health.breaker import BreakerPolicy
    from .service import HotFigureCache, ResultServer, ResultService
    from .service.resilience import ResiliencePolicy

    directory = Path(args.results_dir)
    if not directory.is_dir():
        print(f"error: no result store at {directory}/", file=sys.stderr)
        print("hint: run `simra-dram campaign` first", file=sys.stderr)
        return EXIT_USAGE
    try:
        policy = ResiliencePolicy(
            max_concurrent_requests=args.max_concurrent_requests,
            max_connections=args.max_connections,
            request_timeout_s=args.request_timeout,
            drain_timeout_s=args.drain_timeout,
            read_workers=args.read_workers,
            breaker=BreakerPolicy(
                failure_threshold=args.breaker_threshold,
                cooldown_probes=args.breaker_cooldown,
            ),
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    reader = ResultReader(directory)
    chaos_rates = {
        "read_delay_rate": args.chaos_read_delay_rate,
        "read_error_rate": args.chaos_read_error_rate,
        "read_digest_mismatch_rate": args.chaos_digest_mismatch_rate,
    }
    if any(rate > 0 for rate in chaos_rates.values()):
        from .chaos import ChaosConfig, ChaosEngine, ChaoticReader

        try:
            chaos = ChaosConfig(
                seed=args.chaos_seed,
                read_delay_s=args.chaos_read_delay_s,
                max_faults_per_kind=args.chaos_max_faults,
                **chaos_rates,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        reader = ChaoticReader(reader, ChaosEngine(chaos))
        print(
            f"chaos: reader-path fault injection armed (seed {chaos.seed})",
            flush=True,
        )
    service = ResultService(
        reader, cache=HotFigureCache(reader, capacity=args.cache_size)
    )
    server = ResultServer(
        service, host=args.host, port=args.port, policy=policy
    )
    outcome = {"interrupted": False, "clean": True}

    async def _run() -> None:
        await server.start()
        host, port = server.address
        # The smoke/benchmark harnesses parse this line for the bound
        # port, so keep its shape stable (and flush through pipes).
        print(
            f"serving {len(reader.names())} stored result(s) from "
            f"{directory}/ on http://{host}:{port}",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        drain_requested = loop.create_future()

        def _request_drain(signame: str) -> None:
            if not drain_requested.done():
                drain_requested.set_result(signame)

        installed = []
        for signame in ("SIGTERM", "SIGINT"):
            signum = getattr(signal, signame, None)
            if signum is None:
                continue
            try:
                loop.add_signal_handler(signum, _request_drain, signame)
            except (ValueError, OSError, RuntimeError, NotImplementedError):
                continue
            installed.append(signum)
        serve_task = asyncio.ensure_future(server.serve_forever())
        try:
            await asyncio.wait(
                {serve_task, drain_requested},
                return_when=asyncio.FIRST_COMPLETED,
            )
            if drain_requested.done():
                outcome["interrupted"] = True
                print(
                    f"\n{drain_requested.result()}: draining (budget "
                    f"{server.policy.drain_timeout_s:g}s) ...",
                    flush=True,
                )
                outcome["clean"] = await server.drain()
                serve_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await serve_task
        finally:
            for signum in installed:
                with contextlib.suppress(
                    ValueError, OSError, RuntimeError, NotImplementedError
                ):
                    loop.remove_signal_handler(signum)
            await server.stop()

    try:
        with _graceful_signals():
            asyncio.run(_run())
    except KeyboardInterrupt:
        # add_signal_handler was unavailable (non-main thread, exotic
        # platform), so the _graceful_signals fallback turned SIGTERM
        # into this.  The loop is already unwound -- no drain
        # choreography -- but the stop is still a resumable interrupt.
        outcome["interrupted"] = True
    if outcome["interrupted"]:
        if not outcome["clean"]:
            print(
                "drain budget exceeded: cancelled in-flight request(s)",
                file=sys.stderr,
            )
            return EXIT_FAILURES
        print("server stopped: drain complete", flush=True)
        return EXIT_INTERRUPTED
    return EXIT_OK


def _cmd_cache(args: argparse.Namespace) -> int:
    from .engine import TrialCache

    cache = TrialCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached trial outcome(s) from "
              f"{args.cache_dir}/")
        return 0
    stats = cache.stats()
    print(f"trial cache at {args.cache_dir}/")
    print(f"  entries     : {stats['entries']}")
    print(f"  disk bytes  : {stats['disk_bytes']}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .engine.benchmark import (
        run_campaign_benchmark,
        run_engine_benchmark,
        write_benchmark_json,
    )

    report = run_engine_benchmark(
        columns=args.columns,
        groups_per_size=args.groups,
        trials=args.trials,
        seed=args.seed,
        executors=args.executors,
        jobs=args.jobs,
        scaling_jobs=tuple(args.scaling_jobs),
    )
    if args.campaign:
        report.campaign = run_campaign_benchmark(
            columns=args.columns,
            groups_per_size=args.groups,
            trials=args.campaign_trials,
            seed=args.seed,
            jobs=args.jobs,
        )
        report.speedup["campaign"] = report.campaign["speedup"]
    path = write_benchmark_json(report, Path(args.output))
    for line in report.summary_lines():
        print(line)
    print(f"wrote {path}")
    if report.campaign is not None and not report.campaign["identical"]:
        return 1
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    from .characterization.store import ResultStore

    source = ResultStore(Path(args.results_dir))
    target = ResultStore(Path(args.out), columnar=args.columnar)
    failures = 0
    migrated = 0
    for name in source.names():
        status = source.verify(name)
        if status in ("corrupt", "mismatch"):
            print(f"skipping {name!r}: integrity status {status}",
                  file=sys.stderr)
            failures += 1
            continue
        meta = source.metadata(name)
        target.save(
            name,
            source.load(name),
            config=meta.get("config"),
            notes=meta.get("notes") or "",
            quality=meta.get("quality"),
        )
        to_version = target.metadata(name).get("format_version")
        print(f"migrated {name!r}: "
              f"v{meta.get('format_version')} -> v{to_version}")
        migrated += 1
    manifest = source.load_manifest()
    if manifest is not None:
        target.save_manifest(manifest)
        print("copied campaign manifest")
    print(f"{migrated} result(s) migrated to {target.directory}/, "
          f"{failures} skipped")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="simra-dram",
        description="SiMRA-DRAM reproduction (DSN 2024) command line",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("info", help="tested-chip catalog (Table 1)")
    sub.set_defaults(handler=_cmd_info)

    sub = subparsers.add_parser("activation", help="section 4 characterization")
    _add_scale_arguments(sub)
    sub.add_argument("--rows", type=int, nargs="+", default=[2, 4, 8, 16, 32])
    sub.add_argument("--t1", type=float, default=3.0)
    sub.add_argument("--t2", type=float, default=3.0)
    sub.set_defaults(handler=_cmd_activation)

    sub = subparsers.add_parser("majority", help="section 5 characterization")
    _add_scale_arguments(sub)
    sub.add_argument("--x", type=int, nargs="+", default=[3, 5, 7, 9])
    sub.add_argument("--rows", type=int, nargs="+", default=[32])
    sub.set_defaults(handler=_cmd_majority)

    sub = subparsers.add_parser("rowcopy", help="section 6 characterization")
    _add_scale_arguments(sub)
    sub.add_argument(
        "--destinations", type=int, nargs="+", default=[1, 3, 7, 15, 31]
    )
    sub.set_defaults(handler=_cmd_rowcopy)

    sub = subparsers.add_parser("power", help="Fig 5 power model")
    sub.set_defaults(handler=_cmd_power)

    sub = subparsers.add_parser("spice", help="Fig 15 circuit Monte-Carlo")
    sub.add_argument("--sets", type=int, default=500)
    sub.set_defaults(handler=_cmd_spice)

    sub = subparsers.add_parser("coldboot", help="Fig 17 content destruction")
    sub.set_defaults(handler=_cmd_coldboot)

    sub = subparsers.add_parser("speedups", help="Fig 16 microbenchmarks")
    sub.set_defaults(handler=_cmd_speedups)

    sub = subparsers.add_parser("trng", help="random numbers from APA ties")
    sub.add_argument("--bits", type=int, default=4096)
    sub.add_argument("--group-size", type=int, default=32)
    sub.add_argument("--columns", type=int, default=1024)
    sub.add_argument("--seed", type=int, default=2024)
    sub.add_argument("--hex", action="store_true",
                     help="print the bits as hex")
    sub.set_defaults(handler=_cmd_trng)

    sub = subparsers.add_parser(
        "campaign",
        help="failure-isolated multi-figure sweep with checkpoint/resume",
    )
    _add_scale_arguments(sub)
    sub.add_argument(
        "--experiments", nargs="+", default=["fig3", "fig6", "fig10"],
        help="figure ids to run (default: fig3 fig6 fig10)",
    )
    sub.add_argument("--results-dir", default="campaign_results",
                     help="ResultStore directory (default campaign_results)")
    sub.add_argument("--resume", action="store_true",
                     help="skip figures the store manifest records as done")
    sub.add_argument("--retries", type=int, default=3,
                     help="max attempts per experiment on transient faults")
    sub.add_argument("--backoff-s", type=float, default=0.05,
                     help="base exponential-backoff delay in seconds")
    sub.add_argument("--time-budget-s", type=float, default=None,
                     help="per-experiment wall-clock retry budget")
    sub.add_argument("--chaos", action="store_true",
                     help="inject seeded transient rig faults (soak test)")
    sub.add_argument("--chaos-rate", type=float, default=0.05,
                     help="per-opportunity fault rate for every kind")
    sub.add_argument("--chaos-seed", type=int, default=7,
                     help="chaos schedule seed")
    sub.add_argument("--chaos-max-faults", type=int, default=4,
                     help="cap on injected faults per kind")
    sub.add_argument("--supervise", action="store_true",
                     help="probe benches and quarantine unhealthy modules "
                          "via per-module circuit breakers")
    sub.add_argument("--breaker-threshold", type=int, default=3,
                     help="consecutive probe failures that trip a module's "
                          "breaker (with --supervise)")
    sub.add_argument("--retry-failed", action="store_true",
                     help="on --resume, retry figures recorded as failed "
                          "for a non-transient cause")
    sub.add_argument("--pipeline", action=argparse.BooleanOptionalAction,
                     default=None,
                     help="force (--pipeline) or disable (--no-pipeline) "
                          "pipelined cross-experiment scheduling; the "
                          "default engages it automatically for "
                          "multi-figure runs on a pipelining executor")
    sub.add_argument("--fleet", type=int, default=None, metavar="N",
                     help="distribute whole figures across N localhost "
                          "worker processes speaking the fleet socket "
                          "protocol (breakers, straggler re-issue, and "
                          "worker-death recovery included; artifacts stay "
                          "byte-equal to a single-host run)")
    sub.add_argument("--fleet-chips", type=int, default=None, metavar="N",
                     help="with --fleet: characterize N sampled "
                          "vendor-profile chips instead of the paper's "
                          "one-module-per-spec catalog scope")
    sub.add_argument("--adaptive", action="store_true",
                     help="run the corner matrix through the adaptive "
                          "planner: cells stop at the target CI "
                          "half-width and freed trials steer to the "
                          "high-variance cells")
    sub.add_argument("--ci-target", type=float, default=0.02, metavar="W",
                     help="with --adaptive: bootstrap-CI half-width at "
                          "which a cell stops sampling (default 0.02)")
    sub.add_argument("--round-trials", type=int, default=4, metavar="N",
                     help="with --adaptive: base trials per cell per "
                          "round, and the per-cell floor (default 4)")
    sub.add_argument("--max-trials", type=int, default=32, metavar="M",
                     help="with --adaptive: per-task trial ceiling per "
                          "cell -- the fixed-budget baseline the "
                          "savings are measured against (default 32)")
    sub.set_defaults(handler=_cmd_campaign)

    sub = subparsers.add_parser(
        "worker",
        help="serve campaign figures to a fleet dispatcher over the "
             "length-prefixed columnar socket protocol",
    )
    sub.add_argument("--connect", required=True, metavar="HOST:PORT",
                     help="dispatcher address to dial into")
    sub.add_argument("--executor",
                     choices=("serial", "parallel", "batched", "fused",
                              "fused-parallel"),
                     default="serial",
                     help="per-figure execution strategy (default serial)")
    sub.add_argument("--jobs", type=_jobs_value, default=None,
                     help="worker processes for parallel executors "
                          "(an integer, or 'auto' for the usable "
                          "cgroup-aware CPU count)")
    sub.set_defaults(handler=_cmd_worker)

    sub = subparsers.add_parser(
        "audit",
        help="verify stored-result checksums and recompute a sample "
             "against the serial reference executor",
    )
    sub.add_argument("--results-dir", default="campaign_results",
                     help="ResultStore directory (default campaign_results)")
    sub.add_argument("--sample", type=int, default=2,
                     help="completed figures to recompute (default 2)")
    sub.add_argument("--seed", type=int, default=0,
                     help="seed for the deterministic sample choice")
    sub.add_argument("--cache", action=argparse.BooleanOptionalAction,
                     default=False,
                     help="reuse serial-origin trial-cache entries for the "
                          "recompute sample")
    sub.add_argument("--cache-dir", default=".simra-cache",
                     help="trial-cache directory (default .simra-cache)")
    sub.set_defaults(handler=_cmd_audit)

    sub = subparsers.add_parser(
        "repair",
        help="scan a result store for crash/rot damage, quarantine or "
             "delete bad artifacts, and patch the manifest so "
             "`campaign --resume` re-runs them",
    )
    sub.add_argument("--results-dir", default="campaign_results",
                     help="ResultStore directory (default campaign_results)")
    sub.add_argument("--delete", action="store_true",
                     help="delete damaged files instead of moving them "
                          "into the store's quarantine/ subdirectory")
    sub.add_argument("--dry-run", action="store_true",
                     help="report what would be repaired without touching "
                          "the store (exit 1 when damage is found)")
    sub.set_defaults(handler=_cmd_repair)

    sub = subparsers.add_parser(
        "besttiming", help="search the issueable (t1, t2) grid"
    )
    _add_scale_arguments(sub)
    sub.add_argument(
        "--operation",
        choices=("activation", "majx", "copy"),
        default="majx",
    )
    sub.add_argument("--x", type=int, default=3, help="MAJ width for majx")
    sub.set_defaults(handler=_cmd_besttiming)

    sub = subparsers.add_parser("selftest", help="rig diagnostics per spec")
    sub.add_argument("--columns", type=int, default=512)
    sub.add_argument("--seed", type=int, default=2024)
    sub.set_defaults(handler=_cmd_selftest)

    sub = subparsers.add_parser(
        "stats", help="render a stored campaign's trial-engine metrics"
    )
    sub.add_argument("--results-dir", default="campaign_results",
                     help="ResultStore directory (default campaign_results)")
    sub.set_defaults(handler=_cmd_stats)

    sub = subparsers.add_parser(
        "serve",
        help="serve stored results over an asyncio HTTP query API "
             "(lock-free reads; safe beside a live campaign)",
    )
    sub.add_argument("--results-dir", default="campaign_results",
                     help="ResultStore directory (default campaign_results)")
    sub.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    sub.add_argument("--port", type=int, default=8774,
                     help="bind port; 0 picks a free one (default 8774)")
    sub.add_argument("--cache-size", type=int, default=32,
                     help="hot-figure cache capacity (default 32)")
    sub.add_argument("--max-concurrent-requests", type=int, default=64,
                     help="admission budget: store-backed requests in "
                          "flight before shedding with 503 (default 64)")
    sub.add_argument("--max-connections", type=int, default=4096,
                     help="open-socket budget before new connections are "
                          "shed with 503 (default 4096)")
    sub.add_argument("--request-timeout", type=float, default=5.0,
                     help="per-request store-read deadline in seconds; "
                          "past it the client gets 504 (default 5.0)")
    sub.add_argument("--drain-timeout", type=float, default=10.0,
                     help="graceful-drain budget in seconds on "
                          "SIGTERM/SIGINT (default 10.0)")
    sub.add_argument("--read-workers", type=int, default=8,
                     help="store-read thread-pool size (default 8)")
    sub.add_argument("--breaker-threshold", type=int, default=5,
                     help="consecutive store-read faults that open the "
                          "circuit breaker (default 5)")
    sub.add_argument("--breaker-cooldown", type=int, default=10,
                     help="breaker consultations skipped while open "
                          "before a half-open probe (default 10)")
    sub.add_argument("--chaos-read-delay-rate", type=float, default=0.0,
                     help="chaos: rate of store reads that stall "
                          "(default 0 = off)")
    sub.add_argument("--chaos-read-delay-s", type=float, default=0.25,
                     help="chaos: how long an injected slow read stalls "
                          "(default 0.25s)")
    sub.add_argument("--chaos-read-error-rate", type=float, default=0.0,
                     help="chaos: rate of store reads that raise a "
                          "transient I/O error (default 0 = off)")
    sub.add_argument("--chaos-digest-mismatch-rate", type=float,
                     default=0.0,
                     help="chaos: rate of store reads that fail digest "
                          "verification (default 0 = off)")
    sub.add_argument("--chaos-max-faults", type=int, default=None,
                     help="chaos: cap on injected faults per kind "
                          "(default unlimited)")
    sub.add_argument("--chaos-seed", type=int, default=7,
                     help="chaos: fault-schedule seed (default 7)")
    sub.set_defaults(handler=_cmd_serve)

    sub = subparsers.add_parser(
        "bench", help="time a figure sweep on every executor"
    )
    sub.add_argument("--columns", type=int, default=256)
    sub.add_argument("--groups", type=int, default=2)
    sub.add_argument("--trials", type=int, default=32)
    sub.add_argument("--seed", type=int, default=2024)
    sub.add_argument("--jobs", type=int, default=None,
                     help="worker processes for the parallel executors")
    sub.add_argument(
        "--executors", nargs="+",
        default=["serial", "parallel", "batched", "fused", "fused-parallel"],
        choices=("serial", "parallel", "batched", "fused", "fused-parallel"),
    )
    sub.add_argument("--scaling-jobs", type=int, nargs="*", default=[1, 2, 4],
                     help="worker counts for the parallel worker-scaling "
                          "curve (empty to skip)")
    sub.add_argument("--campaign", action="store_true",
                     help="also time a multi-figure campaign sequentially "
                          "vs pipelined through the persistent worker pool")
    sub.add_argument("--campaign-trials", type=int, default=16,
                     help="trials per test for the campaign benchmark")
    sub.add_argument("--output", default="BENCH_engine.json",
                     help="where to write the benchmark JSON")
    sub.set_defaults(handler=_cmd_bench)

    sub = subparsers.add_parser(
        "migrate",
        help="re-save a result store in the columnar v3 artifact format",
    )
    sub.add_argument("--results-dir", default="campaign_results",
                     help="source ResultStore directory")
    sub.add_argument("--out", required=True,
                     help="target ResultStore directory")
    sub.add_argument("--columnar", action=argparse.BooleanOptionalAction,
                     default=True,
                     help="write columnar v3 documents (--no-columnar "
                          "re-saves as plain v2 instead)")
    sub.set_defaults(handler=_cmd_migrate)

    sub = subparsers.add_parser(
        "cache", help="inspect or clear the on-disk trial cache"
    )
    sub.add_argument("action", choices=("stats", "clear"))
    sub.add_argument("--cache-dir", default=".simra-cache",
                     help="trial-cache directory (default .simra-cache)")
    sub.set_defaults(handler=_cmd_cache)

    sub = subparsers.add_parser("decoder", help="activation-set lookup")
    sub.add_argument("--rf", type=int, required=True)
    sub.add_argument("--rs", type=int, required=True)
    sub.add_argument("--subarray-rows", type=int, default=512)
    sub.set_defaults(handler=_cmd_decoder)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
