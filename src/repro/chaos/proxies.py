"""Chaotic stand-ins for the bender rig components.

Each proxy wraps one real component (keeping all of its state -- the
scheduler clock, the thermal plant, the programmed VPP level) and
interposes only on the operations a real rig can transiently fail:
program replay, readback, thermal settling, and voltage programming.
An injected fault both perturbs the simulated rig the way the real
failure would (off-target temperature, sagged rail) *and* raises the
matching :class:`~repro.errors.TransientInfrastructureError`, so a
retrying caller that re-applies the environment recovers exactly the
fault-free behaviour.
"""

from __future__ import annotations

import errno
import threading
import time
from typing import Dict, List, Sequence

import numpy as np

from .. import rng
from ..errors import (
    ChecksumMismatchError,
    PersistentBenchError,
    ProgramTransferError,
    ReadbackCorruptionError,
    ThermalExcursionError,
    VppBrownoutError,
)
from .engine import ChaosEngine, FaultKind


class _ChaoticProxy:
    """Delegating wrapper: unknown attributes fall through."""

    def __init__(self, wrapped, engine: ChaosEngine):
        self._wrapped = wrapped
        self._engine = engine

    def __getattr__(self, name):
        return getattr(self._wrapped, name)

    @property
    def wrapped(self):
        """The real component underneath."""
        return self._wrapped


class ChaoticBender(_ChaoticProxy):
    """FPGA replayer with transfer faults on both directions.

    Besides the rate-keyed transient faults, a bench listed in
    ``ChaosConfig.bench_failure_serials`` fails *persistently*: every
    replay raises :class:`~repro.errors.PersistentBenchError` (a
    non-transient error the campaign does not retry -- the health
    layer's quarantine path is the only way past it).
    """

    def execute(self, program):
        """Replay one program, unless the link drops it."""
        serial = self._wrapped.module.serial
        if self._engine.bench_should_fail(serial):
            raise PersistentBenchError(
                f"bench for module {serial!r} is persistently failing; "
                "every replay errors until the rig is repaired"
            )
        if self._engine.should_fire(FaultKind.PROGRAM_DROP):
            raise ProgramTransferError(
                "command program dropped before FPGA replay "
                f"({len(program)} commands lost; device untouched)"
            )
        result = self._wrapped.execute(program)
        if self._engine.should_fire(FaultKind.READBACK_CORRUPTION):
            raise ReadbackCorruptionError(
                "execution-result upload failed the host integrity check "
                f"({len(result.reads)} RD payloads discarded)"
            )
        return result

    def execute_all(self, programs) -> List:
        """Replay several programs back to back (each can fault)."""
        return [self.execute(program) for program in programs]


class ChaoticHost(_ChaoticProxy):
    """Host helpers whose readbacks can arrive corrupted."""

    def __init__(self, wrapped, engine: ChaosEngine, bender: ChaoticBender):
        super().__init__(wrapped, engine)
        self._chaotic_bender = bender

    def run(self, program):
        """Replay one program through the chaotic bender."""
        return self._chaotic_bender.execute(program)

    def read_rows(self, bank: int, rows: Sequence[int]) -> Dict[int, np.ndarray]:
        """Read rows back; a corrupted transfer is detected and raised."""
        data = self._wrapped.read_rows(bank, rows)
        if self._engine.should_fire(FaultKind.READBACK_CORRUPTION):
            flipped = self._corrupt(bank, data)
            raise ReadbackCorruptionError(
                f"readback of {len(data)} rows failed the host integrity "
                f"check ({flipped} bits flipped in transfer; cells intact)"
            )
        return data

    def mismatch_fraction(
        self, bank: int, rows: Sequence[int], expected: np.ndarray
    ) -> float:
        """As the real host, but reading through the chaotic path."""
        readback = self.read_rows(bank, rows)
        expected = np.asarray(expected, dtype=np.uint8)
        fractions = [float(np.mean(bits != expected)) for bits in readback.values()]
        return float(np.mean(fractions)) if fractions else 0.0

    def _corrupt(self, bank: int, data: Dict[int, np.ndarray]) -> int:
        """Flip seeded bits in the in-flight copies (never the cells)."""
        flipped = 0
        budget = self._engine.config.corrupted_bits
        generator = rng.generator(
            "chaos-corrupt", self._engine.config.seed, bank, *sorted(data)
        )
        for bits in data.values():
            if flipped >= budget or bits.size == 0:
                break
            column = int(generator.integers(0, bits.size))
            bits[column] ^= 1
            flipped += 1
        return flipped


class ChaoticThermal(_ChaoticProxy):
    """Temperature controller whose chamber can drift off-setpoint."""

    def settle(self) -> float:
        """Settle to the setpoint, unless the chamber wanders."""
        if self._engine.should_fire(FaultKind.THERMAL_EXCURSION):
            target = self._wrapped.target_c
            excursion = target + self._engine.config.thermal_excursion_c
            # The plant is genuinely off-target until the next settle.
            self._wrapped._current_c = excursion  # noqa: SLF001
            self._wrapped._module.temperature_c = excursion  # noqa: SLF001
            raise ThermalExcursionError(
                f"chamber drifted to {excursion:.1f} C while settling "
                f"toward {target:.1f} C"
            )
        return self._wrapped.settle()


class ChaoticSupply(_ChaoticProxy):
    """VPP bench supply whose rail can brown out mid-programming."""

    def set_voltage(self, volts: float) -> float:
        """Program the rail, unless it sags."""
        if self._engine.should_fire(FaultKind.VPP_BROWNOUT):
            sag = self._engine.config.vpp_brownout_volts
            # The module sees the sagged rail until reprogrammed.
            self._wrapped._module.vpp = sag  # noqa: SLF001
            raise VppBrownoutError(
                f"VPP rail sagged to {sag:.2f} V while programming "
                f"{volts:.2f} V"
            )
        return self._wrapped.set_voltage(volts)


class _ReaderFaultMixin:
    """Shared reader-path fault injection (rate-keyed, seeded).

    Three fault kinds cover how a disk read goes wrong in practice:
    it *stalls* (:attr:`~repro.chaos.engine.FaultKind.READ_DELAY` --
    the request-deadline proof load), it *errors transiently*
    (:attr:`~repro.chaos.engine.FaultKind.READ_ERROR`, an
    ``OSError(EIO)``), or it *lies* (:attr:`~repro.chaos.engine.
    FaultKind.READ_DIGEST_MISMATCH`, a
    :class:`~repro.errors.ChecksumMismatchError` as if the bytes no
    longer matched their recorded checksum).  The engine consultation
    is serialized under a lock because the HTTP service's read pool
    loads from several threads at once; fault *counts* stay exact and
    capped even though cross-thread ordering is scheduling-dependent.
    """

    _engine: ChaosEngine

    def _init_read_faults(self) -> None:
        self._read_fault_lock = threading.Lock()

    def _inject_read_faults(self, name: str) -> None:
        with self._read_fault_lock:
            delay = self._engine.should_fire(FaultKind.READ_DELAY)
            error = self._engine.should_fire(FaultKind.READ_ERROR)
            mismatch = self._engine.should_fire(
                FaultKind.READ_DIGEST_MISMATCH
            )
        if delay:
            # The stall happens whether or not the read then fails --
            # real disks are slow first and wrong second.
            time.sleep(self._engine.config.read_delay_s)
        if error:
            raise OSError(
                errno.EIO,
                f"transient I/O error (injected) reading {name!r}",
            )
        if mismatch:
            raise ChecksumMismatchError(
                f"stored result {name!r} failed digest verification "
                "(injected): content no longer matches its recorded "
                "checksum"
            )


class ChaoticReader(_ReaderFaultMixin, _ChaoticProxy):
    """Result reader whose disk reads can stall, error, or lie.

    Wraps a :class:`~repro.characterization.reader.ResultReader` (all
    other read APIs -- digests, metadata, verify, manifest -- fall
    through untouched) and injects the reader-path faults into
    ``load``, the call that actually pulls payload bytes off disk.
    This is what ``simra-dram serve --chaos-read-*`` installs into a
    live server, so the admission/deadline/breaker machinery is
    exercised against real sockets.
    """

    def __init__(self, wrapped, engine: ChaosEngine):
        super().__init__(wrapped, engine)
        self._init_read_faults()

    def load(self, name: str, verify: bool = True):
        """Load one stored payload, unless the disk misbehaves."""
        self._inject_read_faults(name)
        return self._wrapped.load(name, verify=verify)


class ChaoticStore(_ReaderFaultMixin, _ChaoticProxy):
    """Result store whose writes can fail or rot the way real disks do.

    Four target-keyed storage faults, each once per named artifact:

    - ``result_corruption_names``: the save reports success, then one
      seeded byte of the file is damaged (silent bit rot) -- caught by
      checksum verification on the next load or by ``simra-dram
      audit``.
    - ``store_enospc_names``: the save raises ``OSError(ENOSPC)`` and
      leaves a stale ``.tmp`` file behind, as a writer that ran out of
      space mid-write would.
    - ``store_torn_write_names``: the save reports success but the JSON
      document is truncated at a seeded midpoint (a torn write that
      slipped past the rename).
    - ``store_partial_sidecar_names``: a columnar artifact loses its
      ``.columns.npz`` sidecar; a plain artifact gains a bogus orphan
      sidecar instead.

    Loads additionally take the rate-keyed reader-path faults
    (:class:`_ReaderFaultMixin`), so resume/audit paths that read
    through the store see the same slow/faulted disk a chaotic
    service does.
    """

    def __init__(self, wrapped, engine: ChaosEngine):
        super().__init__(wrapped, engine)
        self._init_read_faults()

    def load(self, name, verify: bool = True):
        """Load through the real store, unless the disk misbehaves."""
        self._inject_read_faults(name)
        return self._wrapped.load(name, verify=verify)

    def save(self, name, data, config=None, notes="", quality=None, columnar=None):
        """Persist through the real store, injecting any staged fault."""
        if self._engine.store_should_fault("enospc", name):
            stale = (
                self._wrapped.directory
                / f".{name}.json.chaos-enospc.tmp"
            )
            stale.write_text('{"format_version": 2, "data": {"trunc')
            raise OSError(
                errno.ENOSPC, f"no space left on device (injected) saving {name!r}"
            )
        path = self._wrapped.save(
            name,
            data,
            config=config,
            notes=notes,
            quality=quality,
            columnar=columnar,
        )
        if self._engine.store_should_fault("result-corruption", name):
            raw = bytearray(path.read_bytes())
            if raw:
                generator = rng.generator(
                    "chaos-store", self._engine.config.seed, name
                )
                position = int(generator.integers(0, len(raw)))
                raw[position] ^= 0x20
                path.write_bytes(bytes(raw))
        if self._engine.store_should_fault("torn-write", name):
            raw = path.read_bytes()
            if len(raw) > 2:
                generator = rng.generator(
                    "chaos-store-torn", self._engine.config.seed, name
                )
                cut = int(generator.integers(1, len(raw) - 1))
                path.write_bytes(raw[:cut])
        if self._engine.store_should_fault("partial-sidecar", name):
            sidecar = self._wrapped.directory / f"{name}.columns.npz"
            if sidecar.exists():
                sidecar.unlink()
            else:
                sidecar.write_bytes(b"not an npz archive")
        return path
