"""Seeded fault-decision engine.

The paper's data comes from multi-hour campaigns on a real rig where
transient infrastructure faults (dropped FPGA transfers, flaky
readbacks, thermal excursions, supply brownouts) are a fact of life.
:class:`ChaosEngine` decides *when* those faults fire: every decision
is a deterministic function of the chaos seed, the fault kind, and
how many times that kind has been consulted, so a chaotic campaign is
bit-for-bit reproducible -- the property every chaos test in this
repository relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

from .. import rng
from ..errors import ConfigurationError


class FaultKind(Enum):
    """The transient fault classes the harness can inject."""

    PROGRAM_DROP = "program-drop"
    """Command program lost on the way to the FPGA (never replayed)."""
    READBACK_CORRUPTION = "readback-corruption"
    """Readback transfer fails the host-side integrity check."""
    THERMAL_EXCURSION = "thermal-excursion"
    """Thermal chamber drifts off the setpoint instead of settling."""
    VPP_BROWNOUT = "vpp-brownout"
    """VPP rail sags while being programmed."""
    READ_DELAY = "read-delay"
    """A stored-result read stalls (a congested or failing disk)."""
    READ_ERROR = "read-error"
    """A stored-result read fails with a transient ``OSError(EIO)``."""
    READ_DIGEST_MISMATCH = "read-digest-mismatch"
    """A stored-result read fails its digest verification (bytes on
    disk no longer match the recorded checksum) -- transiently, the
    way a flaky controller or racing rewrite looks to a reader."""


@dataclass(frozen=True)
class ChaosConfig:
    """Which faults to inject, how often, and with what magnitude.

    Rates are per *opportunity* (one program replay, one settle, one
    voltage programming).  ``max_faults_per_kind`` caps how many times
    each kind fires over the harness's lifetime; a finite cap plus a
    retry policy whose attempt count exceeds it guarantees a campaign
    eventually converges despite the chaos.
    """

    seed: int = 7
    program_drop_rate: float = 0.0
    readback_corruption_rate: float = 0.0
    thermal_excursion_rate: float = 0.0
    vpp_brownout_rate: float = 0.0
    read_delay_rate: float = 0.0
    """Reader-path fault: rate of stored-result reads that stall for
    ``read_delay_s`` before completing (slow-disk proof load for the
    service's request deadlines)."""
    read_error_rate: float = 0.0
    """Reader-path fault: rate of stored-result reads that raise a
    transient ``OSError(EIO)``."""
    read_digest_mismatch_rate: float = 0.0
    """Reader-path fault: rate of stored-result reads that raise
    :class:`~repro.errors.ChecksumMismatchError` -- the proof load for
    the service's store-read circuit breaker."""
    read_delay_s: float = 0.25
    """How long an injected slow read stalls (seconds)."""
    max_faults_per_kind: Optional[int] = None
    thermal_excursion_c: float = 7.5
    """How far off the setpoint an excursion leaves the module (C)."""
    vpp_brownout_volts: float = 2.0
    """Where the rail sags to during a brownout."""
    corrupted_bits: int = 4
    """How many bits a readback corruption flips (before detection)."""
    bench_failure_serials: Tuple[str, ...] = ()
    """Modules whose benches fail *persistently*: every program replay
    raises :class:`~repro.errors.PersistentBenchError` (after
    ``bench_failure_after`` clean replays).  Target-keyed rather than
    rate-keyed so quarantine paths are exercised deterministically."""
    bench_failure_after: int = 0
    """Clean program replays a doomed bench performs before dying."""
    worker_kill_serials: Tuple[str, ...] = ()
    """Modules whose shard kills its pool worker (``os._exit``) the
    first time a parallel executor dispatches it -- the worker-death
    recovery proof load."""
    result_corruption_names: Tuple[str, ...] = ()
    """Stored-artifact names whose on-disk bytes get silently damaged
    once, right after the save -- the integrity-audit proof load."""
    store_enospc_names: Tuple[str, ...] = ()
    """Artifact names whose save fails once with ``OSError(ENOSPC)``,
    leaving a stale ``.tmp`` behind -- the disk-full proof load for
    ``simra-dram repair`` and the orphan scan."""
    store_torn_write_names: Tuple[str, ...] = ()
    """Artifact names whose saved JSON document is truncated once at a
    seeded midpoint right after the save -- simulates a torn write that
    slipped past the rename (e.g. a dropped page on power loss)."""
    store_partial_sidecar_names: Tuple[str, ...] = ()
    """Artifact names whose ``.columns.npz`` sidecar is deleted once
    after the save (columnar artifacts), or that gain a bogus orphan
    sidecar (plain artifacts) -- the sidecar-damage proof load."""

    def __post_init__(self) -> None:
        if self.read_delay_s < 0:
            raise ConfigurationError("read_delay_s must be non-negative")
        for name in (
            "program_drop_rate",
            "readback_corruption_rate",
            "thermal_excursion_rate",
            "vpp_brownout_rate",
            "read_delay_rate",
            "read_error_rate",
            "read_digest_mismatch_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        if self.max_faults_per_kind is not None and self.max_faults_per_kind < 0:
            raise ConfigurationError("max_faults_per_kind must be non-negative")
        if self.thermal_excursion_c <= 0:
            raise ConfigurationError("thermal_excursion_c must be positive")
        if self.corrupted_bits < 1:
            raise ConfigurationError("corrupted_bits must be at least 1")
        if self.seed < 0:
            raise ConfigurationError("seed must be non-negative")
        if self.bench_failure_after < 0:
            raise ConfigurationError("bench_failure_after must be non-negative")
        for name in (
            "bench_failure_serials",
            "worker_kill_serials",
            "result_corruption_names",
            "store_enospc_names",
            "store_torn_write_names",
            "store_partial_sidecar_names",
        ):
            # Accept any iterable of strings but store hashable tuples
            # (the config is frozen and shipped to pool workers).
            object.__setattr__(self, name, tuple(getattr(self, name)))

    def rate_for(self, kind: FaultKind) -> float:
        """The configured rate of one fault kind."""
        return {
            FaultKind.PROGRAM_DROP: self.program_drop_rate,
            FaultKind.READBACK_CORRUPTION: self.readback_corruption_rate,
            FaultKind.THERMAL_EXCURSION: self.thermal_excursion_rate,
            FaultKind.VPP_BROWNOUT: self.vpp_brownout_rate,
            FaultKind.READ_DELAY: self.read_delay_rate,
            FaultKind.READ_ERROR: self.read_error_rate,
            FaultKind.READ_DIGEST_MISMATCH: self.read_digest_mismatch_rate,
        }[kind]

    @classmethod
    def burst(cls, seed: int = 7) -> "ChaosConfig":
        """Every fault kind fires on its first opportunity, exactly once.

        The strongest deterministic proof load: each infrastructure
        path fails once, so any executor that survives it demonstrably
        retries every fault class.
        """
        return cls(
            seed=seed,
            program_drop_rate=1.0,
            readback_corruption_rate=1.0,
            thermal_excursion_rate=1.0,
            vpp_brownout_rate=1.0,
            read_delay_rate=1.0,
            read_error_rate=1.0,
            read_digest_mismatch_rate=1.0,
            read_delay_s=0.01,
            max_faults_per_kind=1,
        )

    @classmethod
    def light(
        cls, seed: int = 7, rate: float = 0.05, max_faults_per_kind: int = 8
    ) -> "ChaosConfig":
        """A soak-test profile: occasional faults in every path."""
        return cls(
            seed=seed,
            program_drop_rate=rate,
            readback_corruption_rate=rate,
            thermal_excursion_rate=rate,
            vpp_brownout_rate=rate,
            read_delay_rate=rate,
            read_error_rate=rate,
            read_digest_mismatch_rate=rate,
            read_delay_s=0.01,
            max_faults_per_kind=max_faults_per_kind,
        )


@dataclass
class ChaosStats:
    """How many faults each kind was offered and actually injected."""

    opportunities: Dict[str, int] = field(default_factory=dict)
    injected: Dict[str, int] = field(default_factory=dict)

    @property
    def total_injected(self) -> int:
        """Faults injected across all kinds."""
        return sum(self.injected.values())


class ChaosEngine:
    """Deterministic, capped fault scheduling for one harness."""

    def __init__(self, config: ChaosConfig):
        self._config = config
        self._opportunities: Dict[FaultKind, int] = {k: 0 for k in FaultKind}
        self._injected: Dict[FaultKind, int] = {k: 0 for k in FaultKind}
        self._bench_replays: Dict[str, int] = {}
        self._corrupted_names: set = set()
        self._extra_injected: Dict[str, int] = {}

    @property
    def config(self) -> ChaosConfig:
        """The fault profile in force."""
        return self._config

    def should_fire(self, kind: FaultKind) -> bool:
        """Decide (deterministically) whether this opportunity faults."""
        index = self._opportunities[kind]
        self._opportunities[kind] += 1
        rate = self._config.rate_for(kind)
        if rate <= 0.0:
            return False
        cap = self._config.max_faults_per_kind
        if cap is not None and self._injected[kind] >= cap:
            return False
        draw = rng.generator("chaos", self._config.seed, kind.value, index).random()
        if draw < rate:
            self._injected[kind] += 1
            return True
        return False

    def bench_should_fail(self, serial: str) -> bool:
        """Whether this replay on this bench fails *persistently*.

        Target-keyed, not rate-keyed: benches listed in
        ``bench_failure_serials`` fail every replay once they have
        performed ``bench_failure_after`` clean ones.
        """
        if serial not in self._config.bench_failure_serials:
            return False
        count = self._bench_replays.get(serial, 0)
        self._bench_replays[serial] = count + 1
        if count < self._config.bench_failure_after:
            return False
        self._extra_injected["bench-failure"] = (
            self._extra_injected.get("bench-failure", 0) + 1
        )
        return True

    def store_should_corrupt(self, name: str) -> bool:
        """Whether this just-saved artifact gets damaged (once per name)."""
        return self.store_should_fault("result-corruption", name)

    _STORE_FAULT_FIELDS = {
        "result-corruption": "result_corruption_names",
        "enospc": "store_enospc_names",
        "torn-write": "store_torn_write_names",
        "partial-sidecar": "store_partial_sidecar_names",
    }

    def store_should_fault(self, fault: str, name: str) -> bool:
        """Whether a storage fault of this kind hits this artifact.

        Target-keyed and once-per-(kind, name): each listed artifact
        takes each configured storage fault exactly once, so repair and
        resume tests are deterministic without any rate tuning.
        """
        targets = getattr(self._config, self._STORE_FAULT_FIELDS[fault])
        if name not in targets:
            return False
        key = (fault, name)
        if key in self._corrupted_names:
            return False
        self._corrupted_names.add(key)
        counter = fault if fault == "result-corruption" else f"store-{fault}"
        self._extra_injected[counter] = self._extra_injected.get(counter, 0) + 1
        return True

    @property
    def stats(self) -> ChaosStats:
        """Snapshot of opportunity and injection counts per kind."""
        injected = {
            kind.value: count for kind, count in self._injected.items()
        }
        injected.update(self._extra_injected)
        return ChaosStats(
            opportunities={
                kind.value: count for kind, count in self._opportunities.items()
            },
            injected=injected,
        )
