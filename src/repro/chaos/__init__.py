"""Chaos engineering for the simulated bender infrastructure.

Real SiMRA characterization campaigns run for hours on a rig whose
infrastructure -- FPGA link, thermal chamber, bench supply -- fails
transiently now and then (PULSAR and PuDHammer both treat operating
through unreliability as the central engineering problem).  This
package injects those faults *deterministically* into the simulated
rig so the campaign executor's retry/resume guarantees can be proven
by tests rather than asserted:

- :class:`ChaosConfig` / :class:`ChaosEngine` -- seeded, capped fault
  scheduling per fault kind (:class:`FaultKind`).
- :mod:`repro.chaos.proxies` -- drop-in chaotic wrappers for the
  bender, host, thermal controller, and VPP supply.
- :class:`ChaosHarness` -- installs/uninstalls the wrappers on live
  :class:`~repro.bender.testbench.TestBench` instances.

Injected faults surface as
:class:`~repro.errors.TransientInfrastructureError` subclasses, the
branch of the error hierarchy the campaign executor retries.
"""

from .engine import ChaosConfig, ChaosEngine, ChaosStats, FaultKind
from .harness import ChaosHarness
from .proxies import (
    ChaoticBender,
    ChaoticHost,
    ChaoticReader,
    ChaoticStore,
    ChaoticSupply,
    ChaoticThermal,
)

__all__ = [
    "ChaosConfig",
    "ChaosEngine",
    "ChaosStats",
    "FaultKind",
    "ChaosHarness",
    "ChaoticBender",
    "ChaoticHost",
    "ChaoticReader",
    "ChaoticStore",
    "ChaoticSupply",
    "ChaoticThermal",
]
