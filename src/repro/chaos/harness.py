"""Installing chaos onto assembled test benches.

:class:`ChaosHarness` swaps a :class:`~repro.bender.testbench.TestBench`'s
four rig components for their chaotic proxies (sharing one seeded
engine across every wrapped bench) and restores the originals on
uninstall.  Because the proxies wrap the live components rather than
rebuilding them, no rig state (scheduler clock, thermal plant, VPP
level) is lost by going chaotic mid-session.

Usage::

    harness = ChaosHarness(ChaosConfig.light(seed=11))
    with harness.installed(scope.benches):
        campaign.run(...)
    print(harness.engine.stats.total_injected, "faults injected")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, List, Tuple

from .engine import ChaosConfig, ChaosEngine
from .proxies import ChaoticBender, ChaoticHost, ChaoticSupply, ChaoticThermal


class ChaosHarness:
    """Wraps benches with fault-injecting proxies; reversible."""

    def __init__(self, config: ChaosConfig):
        self._engine = ChaosEngine(config)
        self._originals: List[Tuple[object, Dict[str, object]]] = []

    @property
    def engine(self) -> ChaosEngine:
        """The shared fault-decision engine."""
        return self._engine

    @property
    def config(self) -> ChaosConfig:
        """The fault profile in force."""
        return self._engine.config

    @property
    def installed_benches(self) -> int:
        """How many benches currently carry chaotic proxies."""
        return len(self._originals)

    def install(self, bench) -> None:
        """Swap one bench's rig components for chaotic proxies."""
        if any(existing is bench for existing, _ in self._originals):
            return  # already chaotic; keep the original components saved
        originals = {
            "_bender": bench._bender,  # noqa: SLF001
            "_host": bench._host,  # noqa: SLF001
            "_thermal": bench._thermal,  # noqa: SLF001
            "_supply": bench._supply,  # noqa: SLF001
        }
        bender = ChaoticBender(originals["_bender"], self._engine)
        bench._bender = bender  # noqa: SLF001
        bench._host = ChaoticHost(  # noqa: SLF001
            originals["_host"], self._engine, bender
        )
        bench._thermal = ChaoticThermal(  # noqa: SLF001
            originals["_thermal"], self._engine
        )
        bench._supply = ChaoticSupply(  # noqa: SLF001
            originals["_supply"], self._engine
        )
        self._originals.append((bench, originals))

    def install_all(self, benches: Iterable) -> None:
        """Install onto every bench (e.g. a scope's whole fleet)."""
        for bench in benches:
            self.install(bench)

    def uninstall(self) -> None:
        """Restore every wrapped bench's original components."""
        for bench, originals in self._originals:
            for attribute, component in originals.items():
                setattr(bench, attribute, component)
        self._originals.clear()

    @contextmanager
    def installed(self, benches: Iterable):
        """Context manager: chaos inside the block, clean rig after."""
        self.install_all(benches)
        try:
            yield self
        finally:
            self.uninstall()
