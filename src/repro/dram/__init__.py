"""DRAM device model.

This package implements the simulated silicon: the cell arrays, the
bank state machine, the hierarchical row decoder whose predecoder
latches give rise to simultaneous many-row activation (paper section
7.1), the JEDEC DDR4 timing set, per-vendor device profiles matching
Table 1/2 of the paper, the calibrated reliability model, and the
power model used for Fig 5.
"""

from .address import BankAddress, RowAddress, decompose_row, compose_row
from .cell import CellArray, LEVEL_ZERO, LEVEL_HALF, LEVEL_ONE
from .commands import Command, CommandKind, act, pre, rd, wr, ref, nop
from .timing import TimingParameters, DDR4_TIMINGS
from .row_decoder import (
    PredecoderField,
    LocalWordlineDecoder,
    GlobalWordlineDecoder,
    HierarchicalRowDecoder,
    activation_set,
    activation_count,
    field_layout_for_subarray_rows,
)
from .vendor import (
    DieRevision,
    VendorProfile,
    ModuleSpec,
    MFR_H,
    MFR_M,
    MFR_S,
    PROFILE_H_M_DIE,
    PROFILE_H_A_DIE,
    PROFILE_M_E_DIE,
    PROFILE_M_B_DIE,
    PROFILE_SAMSUNG,
    TESTED_MODULES,
    modules_for_manufacturer,
)
from .behavior import ReliabilityModel, OperationClass
from .bank import Bank, BankState
from .chip import Chip
from .module import Module, build_module, build_tested_fleet
from .power import PowerModel, OperationPower
from .retention import RetentionModel
from .energy import EnergyAccountant, EnergyBudget, budget_from_power_model
from .refresh import RefreshScheduler, HiddenRefreshResult, hidden_refresh
from .faults import FaultInjector, StuckFault

__all__ = [
    "BankAddress",
    "RowAddress",
    "decompose_row",
    "compose_row",
    "CellArray",
    "LEVEL_ZERO",
    "LEVEL_HALF",
    "LEVEL_ONE",
    "Command",
    "CommandKind",
    "act",
    "pre",
    "rd",
    "wr",
    "ref",
    "nop",
    "TimingParameters",
    "DDR4_TIMINGS",
    "PredecoderField",
    "LocalWordlineDecoder",
    "GlobalWordlineDecoder",
    "HierarchicalRowDecoder",
    "activation_set",
    "activation_count",
    "field_layout_for_subarray_rows",
    "DieRevision",
    "VendorProfile",
    "ModuleSpec",
    "MFR_H",
    "MFR_M",
    "MFR_S",
    "PROFILE_H_M_DIE",
    "PROFILE_H_A_DIE",
    "PROFILE_M_E_DIE",
    "PROFILE_M_B_DIE",
    "PROFILE_SAMSUNG",
    "TESTED_MODULES",
    "modules_for_manufacturer",
    "ReliabilityModel",
    "OperationClass",
    "Bank",
    "BankState",
    "Chip",
    "Module",
    "build_module",
    "build_tested_fleet",
    "PowerModel",
    "OperationPower",
    "RetentionModel",
    "EnergyAccountant",
    "EnergyBudget",
    "budget_from_power_model",
    "RefreshScheduler",
    "HiddenRefreshResult",
    "hidden_refresh",
    "FaultInjector",
    "StuckFault",
]
