"""DRAM module (DIMM) model.

A module bundles the banks, the chips that form its rank, the vendor
profile, and the per-module reliability personality.  The testbench
(:mod:`repro.bender.testbench`) sets the module's operating
temperature and wordline voltage, which propagate to every bank.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import DEFAULT_CONFIG, SimulationConfig
from ..errors import AddressError
from .bank import Bank
from .behavior import ReliabilityModel
from .chip import Chip
from .timing import DDR4_TIMINGS, TimingParameters
from .vendor import ModuleSpec, TESTED_MODULES, VendorProfile


class Module:
    """One simulated DIMM."""

    def __init__(
        self,
        serial: str,
        profile: VendorProfile,
        config: SimulationConfig = DEFAULT_CONFIG,
        timings: TimingParameters = DDR4_TIMINGS,
        spec: Optional[ModuleSpec] = None,
    ):
        self._serial = serial
        self._profile = profile
        self._config = config
        self._timings = timings
        self._spec = spec
        self._reliability = ReliabilityModel(config, profile, serial)
        self._banks: Dict[int, Bank] = {}
        self._temperature_c = 50.0
        self._vpp = 2.5
        width = int(profile.die.organization[1:])
        n_chips = 64 // width
        self._chips = tuple(
            Chip(
                serial=f"{serial}-c{i}",
                profile=profile,
                position=i,
                data_width=width,
            )
            for i in range(n_chips)
        )

    @property
    def serial(self) -> str:
        """Module serial identifier."""
        return self._serial

    @property
    def profile(self) -> VendorProfile:
        """The vendor profile of this module's chips."""
        return self._profile

    @property
    def config(self) -> SimulationConfig:
        """Simulation configuration in force."""
        return self._config

    @property
    def timings(self) -> TimingParameters:
        """Nominal timing parameters."""
        return self._timings

    @property
    def spec(self) -> Optional[ModuleSpec]:
        """Catalog entry this module instantiates (may be None)."""
        return self._spec

    @property
    def reliability(self) -> ReliabilityModel:
        """This module's calibrated reliability model."""
        return self._reliability

    @property
    def chips(self) -> tuple:
        """The chips forming this module's rank."""
        return self._chips

    @property
    def n_banks(self) -> int:
        """Banks per module."""
        return self._profile.banks

    def bank(self, index: int) -> Bank:
        """Lazily constructed bank."""
        if not 0 <= index < self._profile.banks:
            raise AddressError(
                f"bank {index} outside module of {self._profile.banks} banks"
            )
        if index not in self._banks:
            bank = Bank(
                index,
                self._profile,
                self._config,
                self._reliability,
                self._timings,
                self._serial,
            )
            bank.temperature_c = self._temperature_c
            bank.vpp = self._vpp
            self._banks[index] = bank
        return self._banks[index]

    @property
    def temperature_c(self) -> float:
        """Current chip temperature (C)."""
        return self._temperature_c

    @temperature_c.setter
    def temperature_c(self, value: float) -> None:
        self._temperature_c = float(value)
        for bank in self._banks.values():
            bank.temperature_c = self._temperature_c

    @property
    def vpp(self) -> float:
        """Current wordline voltage (V)."""
        return self._vpp

    @vpp.setter
    def vpp(self, value: float) -> None:
        self._vpp = float(value)
        for bank in self._banks.values():
            bank.vpp = self._vpp

    def power_cycle(
        self,
        off_seconds: float,
        temp_c: Optional[float] = None,
        retention=None,
    ) -> int:
        """Cut power for ``off_seconds`` and return the cells that decayed.

        Charged cells leak toward ground while unpowered (the
        remanence behind cold-boot attacks, section 8.2); how many
        survive depends on the off time and the chip temperature.
        Neutral (VDD/2) cells sit closer to the leak target and are
        treated as lost immediately.  All banks precharge (the power
        loss collapses any active wordlines).
        """
        from .cell import LEVEL_HALF, LEVEL_ONE, LEVEL_ZERO
        from .retention import RetentionModel

        model = retention or RetentionModel(seed=self._config.seed)
        temperature = self._temperature_c if temp_c is None else temp_c
        decayed_cells = 0
        for bank in self._banks.values():
            bank.settle()
            for subarray in bank._subarrays.values():  # noqa: SLF001
                cells = subarray.cells
                for row in range(cells.rows):
                    levels = cells.read_levels(row)
                    charged = levels == LEVEL_ONE
                    neutral = levels == LEVEL_HALF
                    if not charged.any() and not neutral.any():
                        continue
                    mask = model.decay_mask(
                        cells.columns,
                        off_seconds,
                        temperature,
                        tag=f"{self._serial}/{bank.index}/{subarray.index}/{row}",
                    )
                    lost = (charged & mask) | neutral
                    if lost.any():
                        levels = levels.copy()
                        levels[lost] = LEVEL_ZERO
                        cells.write_levels(row, levels)
                        decayed_cells += int(lost.sum())
        return decayed_cells


def build_module(
    spec: ModuleSpec,
    instance: int = 0,
    config: SimulationConfig = DEFAULT_CONFIG,
    timings: TimingParameters = DDR4_TIMINGS,
) -> Module:
    """Instantiate one module of a catalog spec."""
    serial = f"{spec.module_identifier}#{instance}"
    return Module(serial, spec.profile, config=config, timings=timings, spec=spec)


def build_tested_fleet(
    config: SimulationConfig = DEFAULT_CONFIG,
    modules_per_spec: Optional[int] = None,
) -> List[Module]:
    """Instantiate the paper's tested-module fleet (Table 1/2).

    ``modules_per_spec`` caps how many instances of each catalog entry
    to build (None = the paper's full counts: 7 + 5 + 4 + 2 = 18).
    """
    fleet: List[Module] = []
    for spec in TESTED_MODULES:
        count = spec.n_modules if modules_per_spec is None else min(
            spec.n_modules, modules_per_spec
        )
        for instance in range(count):
            fleet.append(build_module(spec, instance, config=config))
    return fleet
